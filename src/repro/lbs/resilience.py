"""Resilience policies for the LBS simulation: retries, breaker, degradation.

Under the fault model of :mod:`repro.lbs.faults`, a mobile user that
gives up on the first failed geo-query loses its whole release stream.
This module provides the standard production countermeasures, all
deterministic under a :class:`~repro.core.clock.SimulatedClock`:

* :class:`RetryPolicy` — capped exponential backoff with seeded jitter
  and a per-release deadline budget;
* :class:`CircuitBreaker` — trips open after consecutive GSP failures so
  a down provider is not hammered, half-opens after a reset window;
* the graceful-degradation ladder lives in
  :meth:`repro.lbs.entities.MobileUser.release_at`: retry → serve the
  last-known-good cached vector → skip the release.  Its outcomes are
  tallied per user in :class:`UserSessionStats` and surfaced in the
  :class:`~repro.lbs.simulation.SessionReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clock import Clock
from repro.core.errors import CircuitOpenError, ConfigError

__all__ = ["RetryPolicy", "CircuitBreaker", "ResilienceConfig", "UserSessionStats"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Capped exponential backoff with seeded jitter and a deadline budget.

    Attempt ``i`` (0-based) failing sleeps
    ``min(base_delay_s * 2**i, max_delay_s) * (1 + jitter * u)`` with
    ``u ~ U[0, 1)`` drawn from the caller's seeded generator, then
    retries — unless attempts are exhausted or sleeping would bust the
    per-release ``deadline_s`` budget.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.1
    max_delay_s: float = 2.0
    jitter: float = 0.1
    deadline_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ConfigError(
                f"need 0 <= base_delay_s <= max_delay_s, got "
                f"{self.base_delay_s}/{self.max_delay_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline_s <= 0:
            raise ConfigError(f"deadline_s must be positive, got {self.deadline_s}")

    def backoff_delay(self, attempt: int, rng: np.random.Generator) -> float:
        """The sleep before retrying after failed attempt *attempt* (0-based)."""
        if attempt < 0:
            raise ConfigError(f"attempt must be non-negative, got {attempt}")
        delay = min(self.base_delay_s * (2.0**attempt), self.max_delay_s)
        return delay * (1.0 + self.jitter * float(rng.random()))


class CircuitBreaker:
    """A three-state (closed/open/half-open) breaker guarding the GSP.

    ``failure_threshold`` consecutive failures trip it open; after
    ``reset_timeout_s`` of clock time up to ``half_open_max_probes``
    probe calls are let through (half-open) — a success closes the
    breaker, a failure re-opens it and restarts the window.  All timing
    goes through the injected :class:`~repro.core.clock.Clock`, so
    breaker behaviour is exactly reproducible in simulation.
    """

    def __init__(
        self,
        clock: Clock,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        half_open_max_probes: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ConfigError(
                f"reset_timeout_s must be positive, got {reset_timeout_s}"
            )
        if half_open_max_probes < 1:
            raise ConfigError(
                f"half_open_max_probes must be >= 1, got {half_open_max_probes}"
            )
        self._clock = clock
        self._failure_threshold = failure_threshold
        self._reset_timeout_s = reset_timeout_s
        self._half_open_max_probes = half_open_max_probes
        self._half_open_probes = 0
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.n_opens = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (time-aware)."""
        self._maybe_half_open()
        return self._state

    def snapshot(self) -> dict[str, "str | int | float"]:
        """Inspectable breaker state for status endpoints and telemetry.

        Returns a plain JSON-friendly dict rather than internals, so the
        serve layer's ``/status`` response and the shed ladder can
        surface the breaker without reaching into private attributes.
        """
        self._maybe_half_open()
        return {
            "state": self._state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self._failure_threshold,
            "reset_timeout_s": self._reset_timeout_s,
            "opened_at": self._opened_at,
            "n_opens": self.n_opens,
            "half_open_max_probes": self._half_open_max_probes,
            "half_open_probes_used": self._half_open_probes,
        }

    def _maybe_half_open(self) -> None:
        if (
            self._state == "open"
            and self._clock.now() - self._opened_at >= self._reset_timeout_s
        ):
            self._state = "half_open"
            self._half_open_probes = 0

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In the half-open state each ``True`` consumes one of the
        ``half_open_max_probes`` probe slots; further calls are refused
        until a probe resolves via :meth:`record_success` /
        :meth:`record_failure`.
        """
        self._maybe_half_open()
        if self._state == "half_open":
            if self._half_open_probes >= self._half_open_max_probes:
                return False
            self._half_open_probes += 1
            return True
        return self._state != "open"

    def guard(self) -> None:
        """Raise :class:`CircuitOpenError` instead of returning False."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit open since t={self._opened_at:.3f} s "
                f"({self._consecutive_failures} consecutive failures)"
            )

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._half_open_probes = 0
        self._state = "closed"

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        self._maybe_half_open()
        if self._state == "half_open" or (
            self._consecutive_failures >= self._failure_threshold
            and self._state == "closed"
        ):
            self._trip()

    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self._clock.now()
        self._half_open_probes = 0
        self.n_opens += 1


@dataclass(frozen=True, slots=True)
class ResilienceConfig:
    """Bundle of the per-deployment resilience knobs.

    One config describes a rollout; :meth:`build_breaker` instantiates
    the (stateful, per-simulation) breaker against a clock.
    """

    retry: RetryPolicy = RetryPolicy()
    breaker_failure_threshold: int = 5
    breaker_reset_timeout_s: float = 30.0
    breaker_half_open_probes: int = 1

    def build_breaker(self, clock: Clock) -> CircuitBreaker:
        return CircuitBreaker(
            clock,
            failure_threshold=self.breaker_failure_threshold,
            reset_timeout_s=self.breaker_reset_timeout_s,
            half_open_max_probes=self.breaker_half_open_probes,
        )


@dataclass
class UserSessionStats:
    """Per-user tally of the degradation ladder's outcomes."""

    n_attempted: int = 0
    n_released: int = 0
    n_degraded: int = 0
    n_skipped: int = 0
    n_retries: int = 0
    n_short_circuits: int = 0

    def add(self, other: "UserSessionStats") -> None:
        """Accumulate *other* into this tally (for fleet-wide sums)."""
        self.n_attempted += other.n_attempted
        self.n_released += other.n_released
        self.n_degraded += other.n_degraded
        self.n_skipped += other.n_skipped
        self.n_retries += other.n_retries
        self.n_short_circuits += other.n_short_circuits
