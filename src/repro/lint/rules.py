"""The rule catalog: each PL rule encodes one invariant the paper's
guarantees (or the repo's bit-identity contracts) depend on.

Every rule is a class with an ``id``, a one-line ``summary``, a
``rationale`` tied to the guarantee it protects (rendered by
``poiagg check --list-rules`` and docs/static-analysis.md), and a
``check(ctx)`` method yielding :class:`~repro.lint.engine.Violation`
objects.  Rules see one file at a time through a
:class:`~repro.lint.engine.FileContext`; cross-file reasoning is out of
scope by design — everything here must stay fast enough to run on every
commit.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import FileContext, Violation

__all__ = [
    "ANALYSES",
    "ANALYSIS_FAMILIES",
    "DataflowRule",
    "Rule",
    "RULES",
    "rule_by_id",
]


class Rule:
    """Base class: subclasses set the metadata and implement ``check``."""

    id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            message=message,
        )


#: numpy.random constructors that are fine to call (they build seedable
#: generator objects rather than consuming hidden global state).
_GENERATOR_CTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class UnseededRandomness(Rule):
    """PL001 — every random draw must come from an explicit seeded Generator."""

    id = "PL001"
    name = "unseeded-randomness"
    summary = "no unseeded or global-state randomness outside tests"
    rationale = (
        "The paper's attacks, defenses, and the Gaussian/planar-Laplace "
        "mechanisms are only reproducible under seed discipline: every "
        "stochastic component threads an explicit numpy Generator derived "
        "from the experiment seed (repro.core.rng). The stdlib random "
        "module, legacy np.random.* module functions, and default_rng() "
        "without a seed all draw from hidden or OS state and silently "
        "break run-to-run and resume bit-identity."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.is_test:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target is None:
                continue
            if target == "random" or target.startswith("random."):
                yield self.violation(
                    ctx,
                    node,
                    f"stdlib `{target}` draws from hidden global state; "
                    "thread a seeded np.random.Generator "
                    "(repro.core.rng.derive_rng) instead",
                )
            elif target.startswith("numpy.random."):
                fn = target.rsplit(".", 1)[1]
                if fn not in _GENERATOR_CTORS:
                    yield self.violation(
                        ctx,
                        node,
                        f"legacy `numpy.random.{fn}` consumes the global "
                        "numpy stream; call the method on an explicit "
                        "seeded Generator instead",
                    )
                elif fn == "default_rng":
                    unseeded = (not node.args and not node.keywords) or (
                        len(node.args) == 1 and _is_none(node.args[0])
                    )
                    if unseeded:
                        yield self.violation(
                            ctx,
                            node,
                            "default_rng() without a seed draws OS entropy; "
                            "pass a seed or derive via repro.core.rng",
                        )
                    elif ctx.is_library and ctx.module != "repro.core.rng":
                        yield self.violation(
                            ctx,
                            node,
                            "library code constructs default_rng directly; "
                            "derive generators via repro.core.rng "
                            "(as_generator / derive_rng / spawn_rngs) so "
                            "every stream descends from the experiment seed",
                        )


#: DP mechanism entry points whose invocation spends privacy budget.
_MECHANISMS = {
    "repro.dp.mechanisms.gaussian_mechanism",
    "repro.dp.mechanisms.laplace_mechanism",
    "repro.dp.gaussian_mechanism",
    "repro.dp.laplace_mechanism",
    "repro.dp.planar_laplace.PlanarLaplace",
    "repro.dp.PlanarLaplace",
}


class AccountantBypass(Rule):
    """PL002 — DP mechanisms are reachable only through defense-layer classes."""

    id = "PL002"
    name = "accountant-bypass"
    summary = "DP mechanism calls must stay inside the accountant-guarded defense layer"
    rationale = (
        "Theorem 4's (epsilon, delta) claim holds under sequential "
        "composition tracked by repro.dp.accountant.PrivacyAccountant; "
        "BudgetedDefense guards the defense-layer release path with "
        "accountant.spend. A mechanism invoked from attacks/, experiments/, "
        "or examples/ bypasses the ledger, so the composed guarantee "
        "silently stops holding (Primault et al. catalogue exactly this "
        "failure mode in deployed location-privacy pipelines)."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.is_test or ctx.module.startswith("repro.dp"):
            return
        in_defense = ctx.module.startswith("repro.defense")
        yield from self._scan(ctx, ctx.tree, in_defense=in_defense, in_class=False)

    def _scan(
        self, ctx: FileContext, node: ast.AST, *, in_defense: bool, in_class: bool
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            entering_class = in_class or isinstance(child, ast.ClassDef)
            if isinstance(child, ast.Call):
                target = ctx.imports.resolve(child.func)
                if target in _MECHANISMS:
                    if not in_defense:
                        yield self.violation(
                            ctx,
                            child,
                            f"`{target.rsplit('.', 1)[1]}` invoked outside the "
                            "defense layer; route the release through a "
                            "repro.defense mechanism so PrivacyAccountant.spend "
                            "sees it",
                        )
                    elif not in_class:
                        yield self.violation(
                            ctx,
                            child,
                            "raw mechanism call in defense module scope; keep "
                            "mechanism invocations inside Defense classes so "
                            "the BudgetedDefense/accountant wrapper can guard "
                            "the release path",
                        )
            yield from self._scan(
                ctx, child, in_defense=in_defense, in_class=entering_class
            )


#: Methods producing int32 frequency matrices under the bit-identity contract.
_FREQ_PRODUCERS = {"anchor_freqs", "freq_batch"}

#: astype targets that keep (or deliberately leave) the int32 contract.
_SAFE_DTYPES = {"float", "int32", "float32", "float64", "single", "double", "bool_"}


def _dtype_label(node: ast.expr) -> str | None:
    """The spelled dtype of an ``astype`` argument, lowercased, or None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.lower()
    if isinstance(node, ast.Name):
        return node.id.lower()
    if isinstance(node, ast.Attribute):
        return node.attr.lower()
    return None


def _is_square(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Pow)
        and isinstance(node.right, ast.Constant)
        and node.right.value == 2
    )


def _is_sum_of_squares(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Add)
        and _is_square(node.left)
        and _is_square(node.right)
    )


class FreqDtypeDiscipline(Rule):
    """PL003 — int32 Freq matrices and np.hypot distance comparisons."""

    id = "PL003"
    name = "freq-dtype-discipline"
    summary = "no widening casts on Freq matrices, no `**2` distance comparisons"
    rationale = (
        "The batch Freq engine's bit-identity guarantee (batch == scalar, "
        "asserted by the property suite) rests on int32 anchor/frequency "
        "matrices and on comparing distances with np.hypot exactly as the "
        "scalar path does. A widening astype(int64) doubles the matrix "
        "footprint and desynchronises overflow behaviour; a dx**2 + dy**2 "
        "comparison rounds differently from np.hypot in the last ulp, "
        "which is enough to flip a boundary anchor in or out of a disk."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.is_test:
            return
        freq_names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                value = node.value
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr in _FREQ_PRODUCERS
                ):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            freq_names.add(tgt.id)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_astype(ctx, node, freq_names)
                yield from self._check_sqrt(ctx, node)
            elif isinstance(node, ast.Compare):
                for side in [node.left, *node.comparators]:
                    if _is_sum_of_squares(side):
                        yield self.violation(
                            ctx,
                            node,
                            "distance compared as a sum of squares; use "
                            "np.hypot(dx, dy) so batch and scalar paths "
                            "round identically",
                        )
                        break

    def _check_astype(
        self, ctx: FileContext, node: ast.Call, freq_names: set[str]
    ) -> Iterator[Violation]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "astype" and node.args):
            return
        receiver = func.value
        from_freq = (isinstance(receiver, ast.Name) and receiver.id in freq_names) or (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Attribute)
            and receiver.func.attr in _FREQ_PRODUCERS
        )
        if not from_freq:
            return
        dtype = _dtype_label(node.args[0])
        if dtype is not None and dtype not in _SAFE_DTYPES:
            yield self.violation(
                ctx,
                node,
                f"Freq matrix cast to `{dtype}`; the batch engine's "
                "bit-identity contract is int32 (cast to float explicitly "
                "only where the math needs it)",
            )

    def _check_sqrt(self, ctx: FileContext, node: ast.Call) -> Iterator[Violation]:
        target = ctx.imports.resolve(node.func)
        if target in {"numpy.sqrt", "math.sqrt"} and node.args:
            if _is_sum_of_squares(node.args[0]):
                yield self.violation(
                    ctx,
                    node,
                    "sqrt(dx**2 + dy**2) rounds differently from np.hypot; "
                    "use np.hypot for distances under the bit-identity "
                    "contract",
                )


#: Call shapes that hand a function to another process.
_SUBMIT_ATTRS = {"submit", "map", "apply_async", "imap", "imap_unordered"}
_SINK_FUNCS = {
    "repro.experiments.parallel.run_sharded",
    "repro.experiments.supervisor.supervise_shards",
}


class NonPicklableShardWorker(Rule):
    """PL004 — shard workers must be module-level, closure-free functions."""

    id = "PL004"
    name = "shard-worker-picklable"
    summary = "workers handed to pools/supervisors must be module-level functions"
    rationale = (
        "Crash isolation re-executes a shard on a fresh worker process: the "
        "supervisor pickles the entry point, SIGKILLs hung workers, and "
        "replays retried shards from scratch. Lambdas and nested functions "
        "either fail to pickle or smuggle closure state that a replacement "
        "process cannot reconstruct, so a retry would diverge from the "
        "original attempt and void shard-level resume bit-identity."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.is_test:
            return
        yield from self._scan(ctx, ctx.tree, nested_defs=set())

    def _scan(
        self, ctx: FileContext, node: ast.AST, nested_defs: set[str]
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            child_nested = nested_defs
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Defs nested inside this function are non-module-level.
                child_nested = nested_defs | {
                    stmt.name
                    for stmt in ast.walk(child)
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt is not child
                }
            if isinstance(child, ast.Call):
                yield from self._check_sink(ctx, child, nested_defs)
            yield from self._scan(ctx, child, child_nested)

    def _check_sink(
        self, ctx: FileContext, node: ast.Call, nested_defs: set[str]
    ) -> Iterator[Violation]:
        func = node.func
        is_sink = (
            isinstance(func, ast.Attribute) and func.attr in _SUBMIT_ATTRS
        ) or ctx.imports.resolve(func) in _SINK_FUNCS
        if not is_sink:
            return
        candidates = list(node.args) + [kw.value for kw in node.keywords]
        for arg in candidates:
            # functools.partial is transparent: check what it wraps.
            if isinstance(arg, ast.Call) and ctx.imports.resolve(arg.func) in {
                "functools.partial"
            }:
                candidates.extend(arg.args)
                continue
            if isinstance(arg, ast.Lambda):
                yield self.violation(
                    ctx,
                    node,
                    "lambda passed to a process pool/supervisor; shard "
                    "workers must be module-level functions (picklable and "
                    "re-executable on a fresh process)",
                )
            elif isinstance(arg, ast.Name) and arg.id in nested_defs:
                yield self.violation(
                    ctx,
                    node,
                    f"worker `{arg.id}` is defined inside a function; move "
                    "it to module level so crash retries can re-import and "
                    "re-execute it",
                )


_WALL_CLOCK = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.date.today": "date.today()",
    "os.urandom": "os.urandom()",
    "uuid.uuid4": "uuid.uuid4()",
    "secrets.token_bytes": "secrets.token_bytes()",
    "secrets.token_hex": "secrets.token_hex()",
    "secrets.randbits": "secrets.randbits()",
}


class WallClockInExperimentPath(Rule):
    """PL005 — no wall-clock or ambient entropy in checkpointed library code."""

    id = "PL005"
    name = "wall-clock-entropy"
    summary = "library code must not read wall-clock time or ambient entropy"
    rationale = (
        "Checkpoint resume promises bit-identical rows to an uninterrupted "
        "run; any value derived from time.time(), datetime.now(), or OS "
        "entropy differs between the original attempt and the resumed one. "
        "Timing belongs to the Clock abstraction (repro.core.clock) or to "
        "the runner/supervisor provenance layer, which records telemetry "
        "outside the checkpointed payload and carries an explicit per-file "
        "suppression saying so."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.is_library or ctx.module == "repro.core.clock":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target in _WALL_CLOCK:
                yield self.violation(
                    ctx,
                    node,
                    f"{_WALL_CLOCK[target]} in library code breaks resume "
                    "bit-identity; take a Clock (repro.core.clock) or an "
                    "explicit timestamp parameter",
                )


_SHIMMED_ATTACKS = {
    "repro.attacks.region.RegionAttack": "RegionAttack",
    "repro.attacks.RegionAttack": "RegionAttack",
    "repro.attacks.fine_grained.FineGrainedAttack": "FineGrainedAttack",
    "repro.attacks.FineGrainedAttack": "FineGrainedAttack",
}


class DeprecatedPositionalShim(Rule):
    """PL006 — no legacy `run(freq_vector, radius)` calls in first-party code."""

    id = "PL006"
    name = "deprecated-attack-shim"
    summary = "call attacks with a Release, not the positional (freq, radius) shim"
    rationale = (
        "The v1 Attack API takes a frozen Release (frequency vector + "
        "radius + optional ground truth); the positional (freq_vector, "
        "radius) spelling was removed with its deprecation shim and now "
        "raises TypeError at runtime. Linting catches the stale spelling "
        "before it ships, and keeps first-party code on the Release path "
        "that carries the metadata (true_location, timestamp) evaluation "
        "and tracking rely on."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.is_test:
            return
        attack_vars: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                ctor = ctx.imports.resolve(node.value.func)
                cls = _SHIMMED_ATTACKS.get(ctor or "")
                if cls is not None:
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            attack_vars[tgt.id] = cls
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr != "run":
                continue
            receiver = node.func.value
            cls: str | None = None
            if isinstance(receiver, ast.Name):
                cls = attack_vars.get(receiver.id)
            elif isinstance(receiver, ast.Call):
                cls = _SHIMMED_ATTACKS.get(ctx.imports.resolve(receiver.func) or "")
            if cls is None:
                continue
            legacy = len(node.args) >= 2 or any(
                kw.arg == "radius" for kw in node.keywords
            )
            if legacy:
                yield self.violation(
                    ctx,
                    node,
                    f"{cls}.run(freq_vector, radius) is the removed "
                    "pre-v1 positional spelling; pass repro.attacks."
                    "Release(freq_vector, radius) instead",
                )


#: Role keywords marking a write as crash-safety-critical: files other
#: code resumes from or trusts (caches, checkpoints, quarantine sidecars).
_ROLE_KEYWORDS = ("cache", "checkpoint", "quarantine")

#: Path methods that replace a file's content wholesale.
_WRITE_ATTRS = {"write_text", "write_bytes"}

#: Modes that (re)write content.  Append is deliberately out of scope:
#: append-only event logs are incremental by design and cannot be
#: committed by rename.
_WRITE_MODES = ("w", "x")


class NonAtomicRoleWrite(Rule):
    """PL007 — cache/checkpoint/quarantine writes must be atomic."""

    id = "PL007"
    name = "atomic-role-write"
    summary = "cache/checkpoint/quarantine files must be written via temp-file + rename"
    rationale = (
        "Crash-safe resume and the dataset cache's integrity guarantee "
        "both rest on readers never observing a torn file: checkpoints "
        "are trusted on re-run, cache entries are checksummed, quarantine "
        "sidecars account for diverted records. A direct write_text/open "
        "to such a file can be interrupted half-written and then be "
        "consumed as truth. Route these writes through "
        "repro.ingest.atomic (atomic_writer / atomic_write_text / "
        "atomic_write_bytes) or pair them with os.replace in the same "
        "function, as runner.write_checkpoint does."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        # The atomic helpers themselves necessarily open temp files.
        if ctx.is_test or ctx.module == "repro.ingest.atomic":
            return
        yield from self._scan(ctx, ctx.tree, fn_names=(), commits=False)

    def _scan(
        self, ctx: FileContext, node: ast.AST, fn_names: tuple[str, ...], commits: bool
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            child_names, child_commits = fn_names, commits
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_names = fn_names + (child.name,)
                child_commits = commits or self._commits(ctx, child)
            elif isinstance(child, ast.Call):
                yield from self._check_write(ctx, child, fn_names, commits)
            yield from self._scan(ctx, child, child_names, child_commits)

    def _commits(self, ctx: FileContext, fn: ast.AST) -> bool:
        """Does *fn* rename into place or delegate to an atomic helper?"""
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target == "os.replace":
                return True
            if target is not None:
                name = target.rsplit(".", 1)[-1]
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            else:
                continue
            if name == "atomic_writer" or name.startswith("atomic_write"):
                return True
        return False

    def _check_write(
        self,
        ctx: FileContext,
        node: ast.Call,
        fn_names: tuple[str, ...],
        commits: bool,
    ) -> Iterator[Violation]:
        target = self._write_target(node)
        if target is None or commits:
            return
        scope = " ".join(fn_names).lower()
        spelled = ast.unparse(target).lower()
        matched = [kw for kw in _ROLE_KEYWORDS if kw in scope or kw in spelled]
        if not matched:
            return
        yield self.violation(
            ctx,
            node,
            f"direct write to a {matched[0]}-role file; a crash here leaves "
            "a torn file that resume/integrity checks will trust — write "
            "via repro.ingest.atomic or os.replace a temp file into place",
        )

    def _write_target(self, node: ast.Call) -> "ast.expr | None":
        """The path expression a call writes to, or None for non-writes."""
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _WRITE_ATTRS:
            return func.value
        mode: "str | None" = None
        if isinstance(func, ast.Name) and func.id == "open":
            mode = self._mode_of(node, mode_pos=1)
            receiver = node.args[0] if node.args else None
        elif isinstance(func, ast.Attribute) and func.attr == "open":
            mode = self._mode_of(node, mode_pos=0)
            receiver = func.value
        else:
            return None
        if mode is None or not any(flag in mode for flag in _WRITE_MODES):
            return None
        return receiver

    @staticmethod
    def _mode_of(node: ast.Call, mode_pos: int) -> "str | None":
        mode_arg: "ast.expr | None" = None
        if len(node.args) > mode_pos:
            mode_arg = node.args[mode_pos]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode_arg = kw.value
        if mode_arg is None:
            return "r"  # open() default: a read, not a write
        if isinstance(mode_arg, ast.Constant) and isinstance(mode_arg.value, str):
            return mode_arg.value
        return None  # dynamic mode: cannot prove a write


#: Method names that block forever when called without arguments
#: (queue.Queue.get, Event/Condition.wait, Thread.join, socket/pipe recv).
#: Calls with positional arguments are out of scope: ``d.get(key)`` and
#: ``sep.join(parts)`` are not blocking calls, and a positional deadline
#: (``q.get(True, 0.1)``) is already bounded.
_BLOCKING_ATTRS = ("get", "wait", "join", "recv", "sleep")


class UnboundedServeBlocking(Rule):
    """PL008 — serve-path blocking calls must carry a timeout."""

    id = "PL008"
    name = "unbounded-serve-blocking"
    summary = "serve handlers/dispatchers must not block without a timeout"
    rationale = (
        "The serve layer's liveness guarantees — shutdown always "
        "completes, the shed ladder can always intervene, a hung worker "
        "is indistinguishable from a crashed one only until its deadline "
        "— all assume no thread ever parks forever. A bare queue.get(), "
        "Event.wait(), Thread.join(), or recv() waits unconditionally: "
        "one such call in a handler or dispatcher loop turns a transient "
        "stall into a permanent one that no deadline, retry, or drain "
        "can reach. Every blocking call in repro.serve must pass a "
        "timeout (the idle poll interval is the conventional bound)."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.is_test or not ctx.module.startswith("repro.serve"):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in _BLOCKING_ATTRS:
                continue
            if node.args:
                continue  # a positional arg means keyed lookup or a bound
            if any(kw.arg == "timeout" for kw in node.keywords):
                continue
            yield self.violation(
                ctx,
                node,
                f".{node.func.attr}() without a timeout can block this "
                "serve thread forever; pass timeout=... so shutdown, "
                "deadlines, and the shed ladder can intervene",
            )


#: The dotted names a direct SharedMemory construction resolves to.
_SHM_CTORS = {
    "multiprocessing.shared_memory.SharedMemory",
    "shared_memory.SharedMemory",
}

#: The one module allowed to create and unlink shared segments.
_SHM_OWNER_MODULE = "repro.poi.shared"


class UnmanagedSharedMemory(Rule):
    """PL009 — shared segments live and die inside repro.poi.shared."""

    id = "PL009"
    name = "unmanaged-shared-memory"
    summary = "shared-memory segments must be owned by repro.poi.shared's context managers"
    rationale = (
        "The shared-city lifecycle has exactly one owner: the "
        "share_city/share_cities context manager creates each segment "
        "and is the only code that ever unlinks it, so a SIGKILLed "
        "worker can neither leak nor destroy a segment other processes "
        "still map. A stray SharedMemory(...) constructor, .unlink() "
        "call, or /dev/shm delete anywhere else reintroduces the races "
        "the contract closes: double-unlink, attacher-unregisters-owner, "
        "and orphaned segments that outlive the run. Create segments "
        "with share_city/share_cities and attach with attach_city; "
        "never touch the segment files directly."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.is_test or ctx.module == _SHM_OWNER_MODULE:
            return
        shm_vars: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if ctx.imports.resolve(node.value.func) in _SHM_CTORS:
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            shm_vars.add(tgt.id)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.imports.resolve(node.func) in _SHM_CTORS:
                yield self.violation(
                    ctx,
                    node,
                    "direct SharedMemory(...) bypasses the owning context "
                    "manager; create segments with share_city/share_cities "
                    "and attach with attach_city",
                )
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr == "unlink":
                receiver = node.func.value
                owned = (
                    isinstance(receiver, ast.Name) and receiver.id in shm_vars
                ) or (
                    isinstance(receiver, ast.Call)
                    and ctx.imports.resolve(receiver.func) in _SHM_CTORS
                )
                if owned:
                    yield self.violation(
                        ctx,
                        node,
                        ".unlink() on a shared segment outside "
                        "repro.poi.shared; only the owning context manager "
                        "may unlink",
                    )
                    continue
            if self._deletes_dev_shm(ctx, node):
                yield self.violation(
                    ctx,
                    node,
                    "deleting files under /dev/shm destroys live shared "
                    "segments; let the owning context manager unlink them",
                )

    @staticmethod
    def _deletes_dev_shm(ctx: FileContext, node: ast.Call) -> bool:
        """os.unlink/os.remove("/dev/shm/...") or Path("/dev/shm/...").unlink().

        Only provable literals are flagged: a dynamic path may be
        anything, and Path.unlink on non-/dev/shm paths is everyday code.
        """
        if ctx.imports.resolve(node.func) in ("os.unlink", "os.remove"):
            scan: ast.AST | None = node.args[0] if node.args else None
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "unlink":
            scan = node.func.value
        else:
            return False
        if scan is None:
            return False
        return any(
            isinstance(part, ast.Constant)
            and isinstance(part.value, str)
            and part.value.startswith("/dev/shm")
            for part in ast.walk(scan)
        )


#: numpy allocation constructors whose shape arguments PL010 inspects.
_ALLOC_FNS = {"numpy.zeros", "numpy.empty", "numpy.ones", "numpy.full"}

#: Names that key a dimension on the enrolled-client population.
_CLIENT_COUNT_NAMES = {"n_clients", "n_users", "n_enrolled", "enrolled"}


class ClientKeyedAllocation(Rule):
    """PL010 — federated accumulators are config-bounded, never client-bounded."""

    id = "PL010"
    name = "client-keyed-allocation"
    summary = "repro.federated allocations must not scale with client count"
    rationale = (
        "The federated backend's memory contract is that aggregate-side "
        "working memory is bounded by the *config* — the grid, the type "
        "vocabulary, and chunk_clients — and never by the enrolled "
        "population, so a 10^6-client round fits the same memory_budget "
        "as a 10^3-client one (asserted by the bench's peak-RSS check). "
        "One np.zeros((n_clients, ...)) materializes per-client state, "
        "silently reintroduces the O(users x types) blow-up the "
        "streaming merger exists to avoid, and only fails in production "
        "at population scale. Fold contributions through the chunked "
        "streaming path instead."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.is_test or not ctx.module.startswith("repro.federated"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.imports.resolve(node.func) not in _ALLOC_FNS:
                continue
            shape = node.args[0] if node.args else None
            if shape is None:
                shape = next(
                    (kw.value for kw in node.keywords if kw.arg == "shape"), None
                )
            if shape is None:
                continue
            culprit = self._client_keyed(shape)
            if culprit is not None:
                yield self.violation(
                    ctx,
                    node,
                    f"allocation shaped on the client population ({culprit}) "
                    "breaks the memory-budget contract; accumulators must be "
                    "bounded by the grid/vocabulary and contributions folded "
                    "in chunk_clients-sized chunks",
                )

    @staticmethod
    def _client_keyed(shape: ast.expr) -> "str | None":
        """The client-count expression a shape depends on, if any."""
        for part in ast.walk(shape):
            if isinstance(part, ast.Name) and part.id in _CLIENT_COUNT_NAMES:
                return part.id
            if isinstance(part, ast.Attribute) and part.attr in _CLIENT_COUNT_NAMES:
                return part.attr
            if (
                isinstance(part, ast.Call)
                and isinstance(part.func, ast.Name)
                and part.func.id == "len"
                and part.args
            ):
                for sub in ast.walk(part.args[0]):
                    name = None
                    if isinstance(sub, ast.Name):
                        name = sub.id
                    elif isinstance(sub, ast.Attribute):
                        name = sub.attr
                    if name is not None and "client" in name:
                        return f"len({name})"
        return None


#: The os-level durable-I/O primitives that bypass the injectable VFS.
_VFS_PRIMITIVES = ("os.open", "os.write", "os.fsync", "os.replace")


class UnroutedDurableIO(Rule):
    """PL015 — durable I/O primitives must route through repro.core.vfs."""

    id = "PL015"
    name = "vfs-routing"
    summary = "os.open/os.write/os.fsync/os.replace must route through repro.core.vfs"
    rationale = (
        "Every durability claim in this repo is only as tested as the "
        "fault layer can see: the disk-fault plans, crash-point sweeps, "
        "and chaos suites all inject through repro.core.vfs, so a writer "
        "calling os.open/os.write/os.fsync/os.replace directly is "
        "invisible to them — its commit steps are never enumerated, its "
        "ENOSPC path never exercised, and a green sweep proves nothing "
        "about it. Route durable I/O through get_vfs() (or the "
        "repro.ingest.atomic helpers, which already do); only "
        "repro.core.vfs itself may touch the primitives."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        # The VFS is the sanctioned owner of the primitives.
        if ctx.is_test or ctx.module == "repro.core.vfs":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve(node.func)
            if target not in _VFS_PRIMITIVES:
                continue
            short = target.rsplit(".", 1)[-1]
            yield self.violation(
                ctx,
                node,
                f"direct {target} is invisible to the injectable fault "
                f"layer — crash sweeps and disk-chaos plans cannot reach "
                f"it; call get_vfs().{short}(...) (repro.core.vfs) or a "
                "repro.ingest.atomic helper instead",
            )


class DataflowRule(Rule):
    """Base for the project-wide analyses (PL011–PL014).

    These rules need the whole-project call graph, so their logic lives
    in :mod:`repro.lint.dataflow` / :mod:`repro.lint.taint` and runs
    only when ``poiagg check --analysis`` requests the family.  The
    per-file ``check`` is a no-op by design: a single file cannot prove
    or refute a cross-module property, and silently half-checking it
    would teach people to trust a green that means nothing.
    """

    family: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())


class PrivacyTaintLeak(DataflowRule):
    """PL011 — raw aggregates must not reach a release sink unsanitized."""

    id = "PL011"
    name = "privacy-taint-leak"
    family = "taint"
    summary = "no source→sink dataflow path without a defense sanitizer (--analysis taint)"
    rationale = (
        "The paper's defense contract is structural: every value derived "
        "from a raw per-user frequency aggregate (POIDatabase.freq*/"
        "anchor_freqs, federated contribution batches) must pass through "
        "a defense mechanism before it crosses a release boundary — HTTP "
        "response bodies, journals/WALs, checkpoints, artifacts, job "
        "results. Membership-inference (Pyrgelis et al.) and "
        "reconstruction attacks (Buchholz et al.) exploit exactly the "
        "paths where that fails. The taint pass tracks source→sink flows "
        "across module boundaries via call-graph summaries; scalar "
        "aggregations (len, comparisons) deliberately kill taint."
    )


class SkippableSpend(DataflowRule):
    """PL012 — accountant spends must not be skippable on exception edges."""

    id = "PL012"
    name = "skippable-spend"
    family = "taint"
    summary = "no swallowed exception may skip a spend while the release proceeds (--analysis taint)"
    rationale = (
        "The (epsilon, delta) ledger is only sound if a refused or failed "
        "spend stops the release. A try/except that swallows the "
        "accountant's exception and falls through to the mechanism call "
        "releases unmetered exactly when the budget ran out — the worst "
        "possible time. The pass flags handlers that neither re-raise "
        "nor divert control while a sanitizer call or value return "
        "follows the try block."
    )


class LockDiscipline(DataflowRule):
    """PL013 — no blocking under a lock; no lock-order cycles."""

    id = "PL013"
    name = "lock-discipline"
    family = "locks"
    summary = "no blocking while holding a lock, no lock-order cycles (--analysis locks)"
    rationale = (
        "The serve layer's degrade-never-hang guarantee and the "
        "federated supervisor's drain deadlines assume no thread parks "
        "while holding a lock other threads need: the shed ladder, "
        "status endpoint, and shutdown path all contend for the same "
        "handful of locks. The pass tracks which locks are held at every "
        "call site, follows call edges to transitively-blocking work "
        "(unbounded get/wait/join, sleeps, fsync), flags same-lock "
        "reacquisition (threading.Lock self-deadlocks), and reports "
        "cycles in the acquired-while-holding graph. Subsumes PL008's "
        "per-line heuristic with path sensitivity."
    )


class CommitProtocol(DataflowRule):
    """PL014 — durable writers must follow the commit orderings."""

    id = "PL014"
    name = "commit-protocol"
    family = "commit"
    summary = "fsync-before-rename, payload-first/manifest-last, durable WAL appends (--analysis commit)"
    rationale = (
        "Crash safety here is an *ordering* property, not a "
        "call-presence one (PL007 checks presence): os.replace without "
        "a prior fsync publishes a file whose bytes can still vanish; "
        "a manifest written before its payload vouches for data that is "
        "not there; a WAL append that is never fsync'd can acknowledge "
        "a spend that power loss erases; a write to the temp path after "
        "its rename corrupts the committed file. The pass orders each "
        "function's write/flush/fsync/replace events, crediting "
        "delegated fsyncs (repro.ingest.atomic) through the call graph."
    )


RULES: tuple[Rule, ...] = (
    UnseededRandomness(),
    AccountantBypass(),
    FreqDtypeDiscipline(),
    NonPicklableShardWorker(),
    WallClockInExperimentPath(),
    DeprecatedPositionalShim(),
    NonAtomicRoleWrite(),
    UnboundedServeBlocking(),
    UnmanagedSharedMemory(),
    ClientKeyedAllocation(),
    UnroutedDurableIO(),
    PrivacyTaintLeak(),
    SkippableSpend(),
    LockDiscipline(),
    CommitProtocol(),
)

#: The project-wide analyses, keyed by family for ``--analysis``.
ANALYSES: tuple[DataflowRule, ...] = tuple(
    rule for rule in RULES if isinstance(rule, DataflowRule)
)

ANALYSIS_FAMILIES: tuple[str, ...] = ("taint", "locks", "commit")


def rule_by_id(rule_id: str) -> Rule:
    for rule in RULES:
        if rule.id == rule_id.upper():
            return rule
    raise KeyError(rule_id)
