"""Tests for the continuous tracking attack."""

import numpy as np
import pytest

from repro.attacks.base import Release
from repro.attacks.region import RegionAttack
from repro.attacks.tracker import ContinuousTracker, TimedRelease
from repro.core.errors import AttackError
from repro.core.rng import derive_rng
from repro.datasets.tdrive import TaxiFleetConfig, synthesize_taxi_trajectories


@pytest.fixture(scope="module")
def trace_releases(request):
    from repro.poi.cities import small_city

    city = small_city(seed=7)
    db = city.database
    radius = 600.0
    config = TaxiFleetConfig(
        n_taxis=12, trips_per_taxi=4, speed_max_mps=15.0, gps_noise_m=5.0
    )
    trajectories = synthesize_taxi_trajectories(db, config, derive_rng(1, "trk"))
    traces = []
    for traj in trajectories:
        releases = [
            TimedRelease(db.freq(p.location, radius), p.timestamp) for p in traj.points
        ]
        traces.append((traj, releases))
    return city, db, radius, traces


class TestContinuousTracker:
    def test_validation(self, db):
        with pytest.raises(AttackError):
            ContinuousTracker(db, max_speed_mps=0.0)
        tracker = ContinuousTracker(db)
        with pytest.raises(AttackError):
            tracker.track([], 500.0)

    def test_rejects_unordered_releases(self, db):
        tracker = ContinuousTracker(db)
        releases = [
            TimedRelease(np.zeros(db.n_types, dtype=int), 10.0),
            TimedRelease(np.zeros(db.n_types, dtype=int), 5.0),
        ]
        with pytest.raises(AttackError, match="time-ordered"):
            tracker.track(releases, 500.0)

    def test_no_false_negative_chain(self, trace_releases):
        """With a sound speed bound, every unique step is correct."""
        _, db, radius, traces = trace_releases
        tracker = ContinuousTracker(db, max_speed_mps=30.0)
        checked = 0
        for traj, releases in traces:
            result = tracker.track(releases, radius)
            for step in result.unique_steps:
                anchor = result.candidate_at(step)
                true_loc = traj.points[step].location
                dist = db.location_of(anchor).distance_to(true_loc)
                assert dist <= radius + 1e-6
                checked += 1
        assert checked > 0

    def test_tracking_beats_independent_attacks(self, trace_releases):
        """Filtering across steps yields at least as many unique steps."""
        _, db, radius, traces = trace_releases
        tracker = ContinuousTracker(db, max_speed_mps=30.0)
        attack = RegionAttack(db)
        total_tracked = total_indep = 0
        n_steps = 0
        for traj, releases in traces:
            result = tracker.track(releases, radius)
            total_tracked += len(result.unique_steps)
            for release in releases:
                total_indep += attack.run(
                    Release(np.asarray(release.frequency_vector), radius)
                ).success
            n_steps += len(releases)
        assert total_tracked >= total_indep
        assert result.n_steps == len(releases)

    def test_smoothing_never_hurts(self, trace_releases):
        _, db, radius, traces = trace_releases
        plain = ContinuousTracker(db, max_speed_mps=30.0, smooth=False)
        smoothed = ContinuousTracker(db, max_speed_mps=30.0, smooth=True)
        for traj, releases in traces[:4]:
            a = plain.track(releases, radius)
            b = smoothed.track(releases, radius)
            assert len(b.unique_steps) >= len(a.unique_steps)
            # Smoothed candidate sets are subsets of the forward-only sets.
            for sa, sb in zip(a.candidates_per_step, b.candidates_per_step):
                assert set(sb) <= set(sa)

    def test_unique_rate_bounds(self, trace_releases):
        _, db, radius, traces = trace_releases
        tracker = ContinuousTracker(db)
        _, releases = traces[0]
        result = tracker.track(releases, radius)
        assert 0.0 <= result.unique_rate <= 1.0

    def test_huge_speed_bound_degenerates_to_independent(self, trace_releases):
        """An uninformative bound (~infinite speed) prunes nothing."""
        _, db, radius, traces = trace_releases
        tracker = ContinuousTracker(db, max_speed_mps=1e9, smooth=False)
        attack = RegionAttack(db)
        _, releases = traces[0]
        result = tracker.track(releases, radius)
        for release, cands in zip(releases, result.candidates_per_step):
            _, raw = attack.candidate_set(np.asarray(release.frequency_vector), radius)
            assert set(cands) == set(raw.tolist())
