"""Tests for the shared experiment helpers."""

import numpy as np

from repro.experiments.common import KM, RADII_M, freq_matrix, targets_for
from repro.experiments.scale import ExperimentScale


MICRO = ExperimentScale(
    name="ci",
    n_targets=10,
    n_train=50,
    n_validation=20,
    n_area_samples=1_000,
    n_taxis=10,
    n_users=8,
    seed=3,
)


class TestConstants:
    def test_paper_radii(self):
        assert RADII_M == (500.0, 1_000.0, 2_000.0, 4_000.0)
        assert KM == 1_000.0


class TestTargetsFor:
    def test_returns_scaled_target_count(self):
        city, targets = targets_for("bj_random", 1_000.0, MICRO)
        assert city.name == "beijing"
        assert len(targets) == MICRO.n_targets

    def test_deterministic_per_scale(self):
        _, a = targets_for("bj_random", 1_000.0, MICRO)
        _, b = targets_for("bj_random", 1_000.0, MICRO)
        assert a == b


class TestFreqMatrix:
    def test_shape_and_rows(self):
        city, targets = targets_for("bj_random", 1_000.0, MICRO)
        matrix = freq_matrix(city, targets, 1_000.0)
        assert matrix.shape == (len(targets), city.database.n_types)
        np.testing.assert_array_equal(
            matrix[0], city.database.freq(targets[0], 1_000.0)
        )
