"""Ablation bench: the paper's DP mechanism vs the Laplace-histogram baseline.

Extension beyond the paper: compare its Gaussian-over-cloak release
(Sec. V-B) against the textbook per-bin Laplace histogram at matched
epsilon, on defense (correct re-identification rate) and Top-10 utility.

Expected shape: at strict budgets the naive histogram destroys rare-type
structure *and* the Top-10 ranking (noise scale ~1/eps lands on every
bin), while the paper's mechanism spends its noise where the group
sensitivity is high and keeps more Top-10 utility per unit of residual
risk at the epsilon range the paper studies.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.attacks.base import Release
from repro.attacks.region import RegionAttack
from repro.core.rng import derive_rng
from repro.datasets.targets import sample_targets
from repro.defense.cloaking import UserPopulation
from repro.defense.dp_release import DPReleaseMechanism
from repro.defense.laplace_release import LaplaceHistogramDefense
from repro.defense.utility import top_k_jaccard
from repro.experiments.results import ExperimentResult

_RADIUS = 2_000.0
_EPSILONS = (0.2, 0.5, 1.0, 2.0)


def _evaluate(bench_scale):
    city, targets = sample_targets("bj_tdrive", bench_scale.n_targets, _RADIUS, bench_scale.seed)
    db = city.database
    attack = RegionAttack(db)
    population = UserPopulation.uniform(
        10_000, db.bounds, derive_rng(bench_scale.seed, "dpb-pop")
    )
    originals = [db.freq(t, _RADIUS) for t in targets]

    result = ExperimentResult(
        experiment_id="ablation_dp_baselines",
        title="Paper's DP release vs Laplace histogram (BJ T-drive, r = 2 km)",
        config={"n_targets": len(targets)},
    )
    for epsilon in _EPSILONS:
        for name, defense in (
            ("paper", DPReleaseMechanism(population, k=20, epsilon=epsilon, delta=0.2, beta=0.02)),
            ("laplace", LaplaceHistogramDefense(epsilon=epsilon)),
        ):
            rng = derive_rng(bench_scale.seed, "dpb", name, epsilon)
            n_correct = 0
            jaccards = []
            for target, original in zip(targets, originals):
                released = defense.release(db, target, _RADIUS, rng)
                outcome = attack.run(Release(released, _RADIUS))
                if outcome.success and outcome.locates(target):
                    n_correct += 1
                jaccards.append(top_k_jaccard(original, released))
            result.add_row(
                mechanism=name,
                epsilon=epsilon,
                correct_rate=n_correct / len(targets),
                jaccard=float(np.mean(jaccards)),
            )
    return result


def test_bench_ablation_dp_baselines(benchmark, bench_scale):
    result = run_once(benchmark, lambda: _evaluate(bench_scale))
    print()
    print(result.render())

    paper = {r["epsilon"]: r for r in result.filter(mechanism="paper")}
    laplace = {r["epsilon"]: r for r in result.filter(mechanism="laplace")}
    # Both mechanisms trade utility for privacy along epsilon.
    for rows in (paper, laplace):
        assert rows[2.0]["jaccard"] >= rows[0.2]["jaccard"] - 0.05
    # At the strictest budget both defend strongly.
    assert paper[0.2]["correct_rate"] < 0.2
    assert laplace[0.2]["correct_rate"] < 0.2
