"""Compliant PL015 patterns: durable I/O routed through the injectable
VFS or the atomic helpers built on it, and non-durable os calls that
the rule must leave alone.

Lints as repro.ingest.fixture.
"""

import json
import os

from repro.core.vfs import get_vfs
from repro.ingest.atomic import atomic_write_text


def write_checkpoint(path, payload):
    return atomic_write_text(path, json.dumps(payload))


def append_record(path, record):
    vfs = get_vfs()
    with vfs.open(path, "a") as handle:
        handle.write(json.dumps(record) + "\n")
        vfs.fsync(handle)


def publish(tmp, path):
    get_vfs().replace(tmp, path)


def read_metadata(path):
    # Non-durable os calls stay unflagged: nothing here commits bytes.
    return os.stat(path).st_size if os.path.exists(path) else None


def read_payload(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()
