"""Tests for the Markdown report generator."""

import pytest

from repro.core.errors import ConfigError
from repro.experiments.report import collect_results, render_markdown_report, write_report
from repro.experiments.results import ExperimentResult


@pytest.fixture()
def results_dir(tmp_path):
    for exp_id, value in (("fig4", 0.5), ("fig2", 0.99), ("datasets", 1.0)):
        result = ExperimentResult(exp_id, f"title of {exp_id}", config={"scale": "ci"})
        result.add_row(metric=value, label=exp_id)
        result.save(tmp_path / f"{exp_id}_ci.json")
    return tmp_path


class TestCollectResults:
    def test_loads_all(self, results_dir):
        results = collect_results(results_dir)
        assert len(results) == 3

    def test_preferred_order(self, results_dir):
        ids = [r.experiment_id for r in collect_results(results_dir)]
        assert ids == ["datasets", "fig2", "fig4"]

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ConfigError):
            collect_results(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(ConfigError, match="no experiment results"):
            collect_results(tmp_path)

    def test_garbage_json_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text('{"rows": "not-a-list-of-results"}')
        with pytest.raises(ConfigError):
            collect_results(tmp_path)


class TestRenderAndWrite:
    def test_report_contains_tables_and_titles(self, results_dir):
        text = render_markdown_report(collect_results(results_dir))
        assert "## fig4 — title of fig4" in text
        assert "| metric | label |" in text
        assert "`scale=ci`" in text

    def test_write_report_default_path(self, results_dir):
        path = write_report(results_dir)
        assert path.name == "REPORT.md"
        assert "fig2" in path.read_text()

    def test_write_report_custom_output(self, results_dir, tmp_path):
        out = tmp_path / "custom.md"
        path = write_report(results_dir, out)
        assert path == out and out.exists()

    def test_cli_report_command(self, results_dir, capsys):
        from repro.cli import main

        assert main(["report", str(results_dir)]) == 0
        assert "REPORT.md" in capsys.readouterr().out
