"""Tests for core errors and RNG discipline."""

import numpy as np
import pytest

from repro.core.errors import (
    AttackError,
    ConfigError,
    DatasetError,
    DefenseError,
    GeometryError,
    NotFittedError,
    OptimizationError,
    PrivacyError,
    ReproError,
)
from repro.core.rng import as_generator, derive_rng, spawn_rngs


class TestErrors:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigError,
            GeometryError,
            DatasetError,
            AttackError,
            DefenseError,
            PrivacyError,
            NotFittedError,
            OptimizationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestAsGenerator:
    def test_from_int_is_deterministic(self):
        a = as_generator(42).integers(0, 1_000_000, 5)
        b = as_generator(42).integers(0, 1_000_000, 5)
        np.testing.assert_array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        a = derive_rng(7, "poi", "beijing").random(4)
        b = derive_rng(7, "poi", "beijing").random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_labels_different_streams(self):
        a = derive_rng(7, "poi", "beijing").random(4)
        b = derive_rng(7, "poi", "nyc").random(4)
        assert not np.array_equal(a, b)

    def test_different_seeds_different_streams(self):
        a = derive_rng(7, "x").random(4)
        b = derive_rng(8, "x").random(4)
        assert not np.array_equal(a, b)

    def test_numeric_labels_supported(self):
        derive_rng(1, 2.5, 3, "mixed")  # must not raise


class TestSpawnRngs:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rngs(3, 4)]
        b = [g.random() for g in spawn_rngs(3, 4)]
        assert a == b

    def test_spawn_children_independent(self):
        children = spawn_rngs(3, 2)
        assert children[0].random() != children[1].random()

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_is_empty(self):
        assert spawn_rngs(0, 0) == []
