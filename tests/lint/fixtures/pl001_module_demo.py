"""The old `repro/__init__.py` quickstart demo, kept as a PL001 fixture.

Before the linter existed the package docstring's demo constructed its
generator inline instead of deriving it from `repro.core.rng`; linted as
library code this form is a PL001 violation (library generators must
descend from the experiment seed via as_generator/derive_rng/spawn_rngs).
"""

import numpy as np


def old_quickstart_demo(city, db, RegionAttack):
    target = city.interior(1000.0).sample_point(np.random.default_rng(0))  # PL001
    outcome = RegionAttack(db).run(db.freq(target, 1000.0), 1000.0)
    return outcome
