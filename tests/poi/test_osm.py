"""Tests for the OSM XML importer."""

import numpy as np
import pytest

from repro.core.errors import DatasetError
from repro.poi.osm import load_osm_xml

SAMPLE = """<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6">
  <node id="1" lat="39.9000" lon="116.4000">
    <tag k="amenity" v="pharmacy"/>
  </node>
  <node id="2" lat="39.9010" lon="116.4010">
    <tag k="amenity" v="restaurant"/>
    <tag k="name" v="Dumpling House"/>
  </node>
  <node id="3" lat="39.9020" lon="116.4020">
    <tag k="shop" v="bakery"/>
  </node>
  <node id="4" lat="39.9030" lon="116.4030"/>
  <node id="5" lat="39.9040" lon="116.4040">
    <tag k="highway" v="crossing"/>
  </node>
  <node id="6" lat="39.9050" lon="116.4050">
    <tag k="amenity" v="pharmacy"/>
  </node>
</osm>
"""


@pytest.fixture()
def osm_file(tmp_path):
    path = tmp_path / "extract.osm"
    path.write_text(SAMPLE)
    return path


class TestLoadOsmXml:
    def test_keeps_only_typed_nodes(self, osm_file):
        db = load_osm_xml(osm_file)
        assert len(db) == 4  # nodes 4 and 5 carry no POI tag

    def test_vocabulary_and_counts(self, osm_file):
        db = load_osm_xml(osm_file)
        names = set(db.vocabulary.names)
        assert names == {"amenity:pharmacy", "amenity:restaurant", "shop:bakery"}
        pharmacy = db.vocabulary.id_of("amenity:pharmacy")
        assert db.city_frequency[pharmacy] == 2

    def test_projection_scale(self, osm_file):
        """~0.005 degrees of latitude must project to ~555 m."""
        db = load_osm_xml(osm_file)
        pos = db.positions
        spread = pos[:, 1].max() - pos[:, 1].min()
        assert spread == pytest.approx(556, rel=0.02)

    def test_type_key_priority(self, tmp_path):
        path = tmp_path / "dual.osm"
        path.write_text(
            """<osm><node id="1" lat="0" lon="0">
            <tag k="shop" v="bakery"/><tag k="amenity" v="cafe"/>
            </node></osm>"""
        )
        db = load_osm_xml(path)
        assert db.vocabulary.names == ("amenity:cafe",)

    def test_custom_type_keys(self, osm_file):
        db = load_osm_xml(osm_file, type_keys=("shop",))
        assert len(db) == 1
        assert db.vocabulary.names == ("shop:bakery",)

    def test_attack_pipeline_runs_on_import(self, osm_file):
        from repro.attacks.base import Release
        from repro.attacks.region import RegionAttack

        db = load_osm_xml(osm_file)
        attack = RegionAttack(db)
        center = db.location_of(0)
        outcome = attack.run(Release(db.freq(center, 400.0), 400.0))
        assert outcome.anchor_type is not None

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            load_osm_xml(tmp_path / "nope.osm")

    def test_malformed_xml(self, tmp_path):
        path = tmp_path / "bad.osm"
        path.write_text("<osm><node lat='1'")
        with pytest.raises(DatasetError, match="malformed"):
            load_osm_xml(path)

    def test_no_pois_raises(self, tmp_path):
        path = tmp_path / "empty.osm"
        path.write_text("<osm><node id='1' lat='0' lon='0'/></osm>")
        with pytest.raises(DatasetError, match="no POI nodes"):
            load_osm_xml(path)


class TestEdgeCases:
    """Satellite coverage: damage that must raise typed, element-naming errors."""

    def test_poi_node_missing_lat_names_the_node(self, tmp_path):
        path = tmp_path / "missing-lat.osm"
        path.write_text(
            """<osm><node id="77" lon="116.4"><tag k="amenity" v="cafe"/></node>
            <node id="78" lat="39.9" lon="116.4"><tag k="shop" v="bakery"/></node>
            </osm>"""
        )
        from repro.core.errors import SchemaDriftError

        with pytest.raises(SchemaDriftError, match="node 77.*missing the 'lat'"):
            load_osm_xml(path)

    def test_poi_node_missing_lon_names_the_node(self, tmp_path):
        path = tmp_path / "missing-lon.osm"
        path.write_text(
            '<osm><node id="88" lat="39.9"><tag k="amenity" v="cafe"/></node></osm>'
        )
        from repro.core.errors import SchemaDriftError

        with pytest.raises(SchemaDriftError, match="node 88.*missing the 'lon'"):
            load_osm_xml(path)

    def test_zero_matching_tag_keys_names_the_keys(self, osm_file):
        from repro.core.errors import SchemaDriftError

        with pytest.raises(SchemaDriftError, match="no POI nodes") as err:
            load_osm_xml(osm_file, type_keys=("craft",))
        assert "craft" in str(err.value)

    def test_duplicate_node_ids_name_the_id(self, tmp_path):
        path = tmp_path / "dup.osm"
        path.write_text(
            """<osm>
            <node id="5" lat="39.90" lon="116.40"><tag k="amenity" v="cafe"/></node>
            <node id="5" lat="39.91" lon="116.41"><tag k="amenity" v="bar"/></node>
            </osm>"""
        )
        from repro.core.errors import DuplicateRecordError

        with pytest.raises(DuplicateRecordError, match="duplicate node id 5"):
            load_osm_xml(path)

    def test_exact_duplicate_node_is_droppable_under_repair(self, tmp_path):
        path = tmp_path / "dup-exact.osm"
        path.write_text(
            """<osm>
            <node id="5" lat="39.90" lon="116.40"><tag k="amenity" v="cafe"/></node>
            <node id="5" lat="39.90" lon="116.40"><tag k="amenity" v="cafe"/></node>
            <node id="6" lat="39.91" lon="116.41"><tag k="amenity" v="bar"/></node>
            </osm>"""
        )
        db = load_osm_xml(path, policy="repair")
        assert len(db) == 2

    def test_empty_file_is_truncation(self, tmp_path):
        path = tmp_path / "empty.osm"
        path.write_text("")
        from repro.core.errors import TruncatedInputError

        with pytest.raises(TruncatedInputError, match="empty OSM file"):
            load_osm_xml(path)

    def test_whitespace_only_file_is_truncation(self, tmp_path):
        path = tmp_path / "blank.osm"
        path.write_text("   \n\n  ")
        from repro.core.errors import TruncatedInputError

        with pytest.raises(TruncatedInputError, match="empty OSM file"):
            load_osm_xml(path)
