"""Tests for the T-drive and Foursquare synthesizers."""

import numpy as np
import pytest

from repro.core.errors import DatasetError
from repro.datasets.foursquare import CheckinConfig, checkin_locations, synthesize_checkins
from repro.datasets.tdrive import TaxiFleetConfig, synthesize_taxi_trajectories, taxi_locations
from repro.geo.distance import euclidean


class TestTaxiSynthesis:
    def test_counts(self, db):
        trajs = synthesize_taxi_trajectories(db, TaxiFleetConfig(n_taxis=5), rng=1)
        assert len(trajs) == 5
        assert all(len(t) >= 2 for t in trajs)

    def test_deterministic(self, db):
        a = synthesize_taxi_trajectories(db, TaxiFleetConfig(n_taxis=3), rng=2)
        b = synthesize_taxi_trajectories(db, TaxiFleetConfig(n_taxis=3), rng=2)
        assert [p.location for t in a for p in t.points] == [
            p.location for t in b for p in t.points
        ]

    def test_points_inside_city(self, db):
        trajs = synthesize_taxi_trajectories(db, TaxiFleetConfig(n_taxis=4), rng=3)
        margin = 100.0  # GPS noise can step just past the clipped path
        for t in trajs:
            for p in t.points:
                assert db.bounds.expanded(margin).contains(p.location)

    def test_speeds_are_plausible(self, db):
        config = TaxiFleetConfig(n_taxis=6, gps_noise_m=0.0)
        trajs = synthesize_taxi_trajectories(db, config, rng=4)
        for t in trajs:
            for a, b in zip(t.points, t.points[1:]):
                dt = b.timestamp - a.timestamp
                if dt <= 0:
                    continue
                speed = euclidean(a.location, b.location) / dt
                assert speed <= config.speed_max_mps + 1.0

    def test_invalid_config_raises(self):
        with pytest.raises(DatasetError):
            TaxiFleetConfig(n_taxis=0)
        with pytest.raises(DatasetError):
            TaxiFleetConfig(speed_min_mps=20.0, speed_max_mps=10.0)

    def test_taxi_locations_sampler(self, db):
        locs = taxi_locations(db, 50, TaxiFleetConfig(n_taxis=5), rng=5)
        assert len(locs) == 50


class TestCheckinSynthesis:
    def test_counts(self, db):
        users = synthesize_checkins(db, CheckinConfig(n_users=4, checkins_per_user=10), rng=1)
        assert len(users) == 4
        assert all(len(u) == 10 for u in users)

    def test_checkins_near_pois(self, db):
        config = CheckinConfig(n_users=5, checkins_per_user=20, position_jitter_m=25.0)
        users = synthesize_checkins(db, config, rng=2)
        from repro.geo.kdtree import KDTree

        tree = KDTree(db.positions)
        dists = [
            tree.nearest(p.location)[1] for u in users for p in u.points
        ]
        # Check-ins sit within a few jitter radii of some POI.
        assert np.median(dists) < 4 * config.position_jitter_m

    def test_favourite_revisits(self, db):
        config = CheckinConfig(
            n_users=1,
            checkins_per_user=60,
            favourite_probability=1.0,
            position_jitter_m=0.0,
        )
        users = synthesize_checkins(db, config, rng=3)
        # With jitter off and only favourites, check-ins land on at most
        # favourites_per_user distinct venues.
        venues = {p.location.as_tuple() for p in users[0].points}
        assert len(venues) <= config.favourites_per_user

    def test_deterministic(self, db):
        a = checkin_locations(db, 20, CheckinConfig(n_users=3), rng=7)
        b = checkin_locations(db, 20, CheckinConfig(n_users=3), rng=7)
        assert a == b

    def test_invalid_config_raises(self):
        with pytest.raises(DatasetError):
            CheckinConfig(n_users=0)
        with pytest.raises(DatasetError):
            CheckinConfig(favourite_probability=1.5)
