"""The pytest-collected lint gate: first-party code is clean at HEAD, and
deliberately reintroducing any one invariant violation fails with a rule
ID and file:line (the acceptance contract for `poiagg check`)."""

from pathlib import Path

import pytest

from repro.lint import check_paths
from repro.lint.cli import DEFAULT_CHECK_PATHS

REPO = Path(__file__).parent.parent.parent


def test_first_party_tree_is_clean():
    """`poiagg check src benchmarks examples` exits 0 at HEAD."""
    paths = [REPO / p for p in DEFAULT_CHECK_PATHS]
    assert all(p.is_dir() for p in paths)
    report = check_paths(paths)
    assert report.n_files > 100  # the gate actually covered the tree
    assert report.ok, "\n".join(v.render() for v in report.violations)


def test_first_party_tree_is_clean_under_full_dataflow():
    """`poiagg check --analysis all` exits 0 at HEAD.

    Every latent PL011–PL014 finding has been either fixed or pragma-
    suppressed with a written rationale; a new finding here means a
    fresh leak/deadlock/commit hazard, not a stale baseline.
    """
    paths = [REPO / p for p in DEFAULT_CHECK_PATHS]
    report = check_paths(paths, analysis=("taint", "locks", "commit"))
    assert report.ok, "\n".join(v.render() for v in report.violations)


#: One reintroduction per invariant:
#: (rule, planted source, role path, analysis families to enable).
REGRESSIONS = [
    (
        "PL001",
        "import numpy as np\n\nnoise = np.random.normal(0.0, 1.0, size=8)\n",
        "src/repro/defense/planted.py",
    ),
    (
        "PL002",
        "from repro.dp.mechanisms import gaussian_mechanism\n\n"
        "def leak(freq, rng):\n"
        "    return gaussian_mechanism(freq, 1.0, 0.5, 0.2, rng)\n",
        "src/repro/experiments/planted.py",
    ),
    (
        "PL003",
        "def widen(db, targets, r):\n"
        "    import numpy as np\n"
        "    return db.freq_batch(targets, r).astype(np.int64)\n",
        "src/repro/attacks/planted.py",
    ),
    (
        "PL004",
        "from concurrent.futures import ProcessPoolExecutor\n\n"
        "def fan_out(shards):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return [pool.submit(lambda s: s, s) for s in shards]\n",
        "src/repro/experiments/planted.py",
    ),
    (
        "PL005",
        "import time\n\n"
        "def stamp(row):\n"
        "    row['ts'] = time.time()\n"
        "    return row\n",
        "src/repro/experiments/planted.py",
    ),
    (
        "PL006",
        "from repro.attacks.region import RegionAttack\n\n"
        "def legacy(db, freq, radius):\n"
        "    return RegionAttack(db).run(freq, radius)\n",
        "examples/planted.py",
    ),
    (
        "PL007",
        "import json\n\n"
        "def write_checkpoint(path, payload):\n"
        "    path.write_text(json.dumps(payload))\n",
        "src/repro/experiments/planted.py",
    ),
    (
        "PL008",
        "def worker_loop(jobs):\n"
        "    while True:\n"
        "        job = jobs.get()\n"
        "        job.run()\n",
        "src/repro/serve/planted.py",
    ),
    (
        "PL009",
        "from multiprocessing.shared_memory import SharedMemory\n\n"
        "def cleanup(name):\n"
        "    SharedMemory(name=name, create=False).unlink()\n",
        "src/repro/experiments/planted.py",
    ),
    (
        "PL010",
        "import numpy as np\n\n"
        "def collect_all(config, n_types):\n"
        "    return np.zeros((config.n_clients, n_types))\n",
        "src/repro/federated/planted.py",
    ),
    (
        "PL011",
        "import json\n\n"
        "class Handler:\n"
        "    def __init__(self, database, wfile):\n"
        "        self._db = database\n"
        "        self.wfile = wfile\n\n"
        "    def emit(self, x, y, radius):\n"
        "        row = self._db.freq_batch([[x, y]], radius)\n"
        "        body = {'result': row[0].tolist()}\n"
        "        self.wfile.write(json.dumps(body).encode())\n",
        "src/repro/serve/planted.py",
        ("taint",),
    ),
    (
        "PL012",
        "class Release:\n"
        "    def __init__(self, accountant, defense):\n"
        "        self._accountant = accountant\n"
        "        self._defense = defense\n\n"
        "    def release(self, row, rng):\n"
        "        try:\n"
        "            self._accountant.spend(1.0, 1e-6)\n"
        "        except Exception:\n"
        "            pass\n"
        "        return self._defense.apply(row, rng)\n",
        "src/repro/defense/planted.py",
        ("taint",),
    ),
    (
        "PL013",
        "import queue\n"
        "import threading\n\n"
        "class Worker:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._queue = queue.Queue()\n\n"
        "    def drain(self):\n"
        "        with self._lock:\n"
        "            return self._queue.get()\n",
        "src/repro/serve/planted.py",
        ("locks",),
    ),
    (
        "PL015",
        "import os\n\n"
        "def publish(tmp, path):\n"
        "    os.replace(tmp, path)\n",
        "src/repro/serve/planted.py",
    ),
    (
        "PL014",
        "import json\n"
        "import os\n\n"
        "def write_checkpoint(path, payload):\n"
        "    tmp = path.with_suffix('.tmp')\n"
        "    tmp.write_text(json.dumps(payload))\n"
        "    os.replace(tmp, path)\n",
        "src/repro/ingest/planted.py",
        ("commit",),
    ),
]

#: Pad the syntactic triples so every row is (rule, source, path, analysis).
REGRESSIONS = [row if len(row) == 4 else (*row, ()) for row in REGRESSIONS]


@pytest.mark.parametrize("rule,source,as_path,analysis", REGRESSIONS)
def test_reintroduced_violation_fails_the_gate(
    tmp_path, rule, source, as_path, analysis
):
    planted = tmp_path / as_path
    planted.parent.mkdir(parents=True, exist_ok=True)
    planted.write_text(source)
    report = check_paths([tmp_path], analysis=analysis)
    assert report.exit_code == 1
    assert any(v.rule_id == rule for v in report.violations), (
        rule,
        [v.render() for v in report.violations],
    )
    hit = next(v for v in report.violations if v.rule_id == rule)
    assert hit.path.endswith(as_path.rsplit("/", 1)[1])
    assert hit.line >= 1


def test_every_rule_has_a_regression_case():
    from repro.lint import RULES

    assert {r for r, _, _, _ in REGRESSIONS} == {rule.id for rule in RULES}
