"""Figure 3 — sanitization versus the region attack, and its recovery break.

Three curves per city over the four query ranges: success rate without
protection, with aggressive sanitization (city frequency <= 10), and with
the learning-based recovery applied before attacking.  Paper numbers
(random targets, Beijing): 0.184/0.306/0.440/0.642 undefended, dropping to
0.126/0.153/0.126/0.016 sanitized, and recovered back to almost the
undefended rates.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.attacks.base import Release
from repro.attacks.recovery import SanitizationRecoveryAttack
from repro.attacks.region import RegionAttack
from repro.core.rng import derive_rng
from repro.defense.sanitization import Sanitizer
from repro.experiments.common import RADII_M, freq_matrix, targets_for
from repro.experiments.fig2_recovery_accuracy import auto_max_types
from repro.experiments.results import ExperimentResult
from repro.experiments.scale import SCALES, ExperimentScale

__all__ = ["run_fig3"]

_CITY_DATASET = {"beijing": "bj_random", "nyc": "nyc_random"}


def run_fig3(
    scale: ExperimentScale = SCALES["ci"],
    radii: Sequence[float] = RADII_M,
    city_names: Sequence[str] = ("beijing", "nyc"),
    sanitize_threshold: int = 10,
    max_types: "int | None" = None,
    recovery_model: str = "svc",
) -> ExperimentResult:
    """Evaluate the three Fig. 3 variants on random targets per city."""
    max_types = auto_max_types(scale, max_types)
    result = ExperimentResult(
        experiment_id="fig3",
        title="Performance of sanitization against region re-identification",
        config={
            "scale": scale.name,
            "n_targets": scale.n_targets,
            "threshold": sanitize_threshold,
            "max_types": max_types,
        },
        notes=(
            "Paper reference (Beijing, random): w/o 0.184-0.642 rising with r; "
            "sanitized <= 0.153; recovered back near the undefended curve."
        ),
    )
    for city_name in city_names:
        dataset = _CITY_DATASET[city_name]
        for radius in radii:
            city, targets = targets_for(dataset, radius, scale)
            db = city.database
            attack = RegionAttack(db)
            sanitizer = Sanitizer(db, threshold=sanitize_threshold)
            recovery = SanitizationRecoveryAttack(
                db, sanitizer, limit_types=max_types, model=recovery_model
            )
            recovery.fit(
                radius=radius,
                n_train=scale.n_train,
                n_validation=scale.n_validation,
                rng=derive_rng(scale.seed, "fig3", city_name, radius),
                bounds=city.interior(radius),
            )

            original = freq_matrix(city, targets, radius)
            sanitized = np.stack([sanitizer.sanitize_vector(v) for v in original])
            recovered = recovery.recover_many(sanitized)

            for variant, vectors in (
                ("w/o protection", original),
                ("sanitized", sanitized),
                ("recovered", recovered),
            ):
                n_success = 0
                n_correct = 0
                outcomes = attack.run_batch([Release(v, radius) for v in vectors])
                for target, outcome in zip(targets, outcomes):
                    if outcome.success:
                        n_success += 1
                        region = outcome.region
                        if region is not None and region.disk.contains(target):
                            n_correct += 1
                result.add_row(
                    city=city_name,
                    r_km=radius / 1000.0,
                    variant=variant,
                    success_rate=n_success / len(targets),
                    correct_rate=n_correct / len(targets),
                )
    return result
