"""Figure 7 — search area versus the number of auxiliary anchors.

Fixed r = 2 km, MAX_aux swept over {5, 10, 20, 40} for all four datasets.
Paper means: 1.70→0.60, 2.38→1.35, 1.92→0.26, 2.63→1.07 km2 as the cap
grows from 5 to 40, against the baseline's constant ~12.57 km2 (4 pi),
with diminishing returns past ~20 anchors.
"""

from __future__ import annotations

from collections.abc import Sequence

import math

import numpy as np

from repro.attacks.base import Release
from repro.attacks.fine_grained import FineGrainedAttack
from repro.core.rng import derive_rng
from repro.datasets.targets import DATASET_NAMES
from repro.experiments.common import KM, targets_for
from repro.experiments.results import ExperimentResult
from repro.experiments.scale import SCALES, ExperimentScale

__all__ = ["run_fig7", "DEFAULT_AUX_VALUES"]

DEFAULT_AUX_VALUES = (5, 10, 20, 40)


def run_fig7(
    scale: ExperimentScale = SCALES["ci"],
    datasets: Sequence[str] = DATASET_NAMES,
    aux_values: Sequence[int] = DEFAULT_AUX_VALUES,
    radius: float = 2.0 * KM,
) -> ExperimentResult:
    """Sweep the auxiliary-anchor cap at the paper's fixed r = 2 km."""
    result = ExperimentResult(
        experiment_id="fig7",
        title="Search area vs number of auxiliary anchors (r = 2 km)",
        config={"scale": scale.name, "n_targets": scale.n_targets, "r_km": radius / KM},
        notes=(
            "Paper reference: mean area shrinks from ~1.7-2.6 km2 at 5 anchors "
            "to ~0.3-1.4 km2 at 40; baseline constant 4*pi ~= 12.57 km2."
        ),
    )
    max_aux = max(aux_values)
    for dataset in datasets:
        city, targets = targets_for(dataset, radius, scale)
        attack = FineGrainedAttack(city.database, max_aux=max_aux)
        rng = derive_rng(scale.seed, "fig7", dataset)
        freqs = city.database.freq_batch(targets, radius)
        outcomes = [
            o
            for o in attack.run_batch([Release(f, radius) for f in freqs])
            if o.success
        ]
        for n_aux in aux_values:
            areas = [
                o.search_area_m2(n_aux=n_aux, n_samples=scale.n_area_samples, rng=rng)
                / 1e6
                for o in outcomes
            ]
            result.add_row(
                dataset=dataset,
                n_aux=n_aux,
                n_success=len(areas),
                mean_area_km2=float(np.mean(areas)) if areas else float("nan"),
                baseline_area_km2=math.pi * (radius / KM) ** 2,
            )
    return result
