"""PL007 negative/suppressed cases."""

import json
import os

from repro.ingest.atomic import atomic_write_text, atomic_writer


def write_checkpoint(path, payload) -> None:
    # The sanctioned pattern: temp file committed by rename.
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, path)


def save_cache_entry(path, manifest: str) -> None:
    atomic_write_text(path, manifest)


def divert_records(quarantine_path, rows) -> None:
    with atomic_writer(quarantine_path, "w") as fh:
        fh.writelines(rows)


def read_cache_entry(path) -> str:
    # Reads are out of scope.
    return path.read_text()


def load_cached_payload(path) -> bytes:
    with path.open("rb") as fh:
        return fh.read()


def append_cache_event(log_path, line: str) -> None:
    # Append-only event logs are incremental by design, not rename-committed.
    with log_path.open("a") as fh:
        fh.write(line)


def save_result(path, blob: str) -> None:
    # No cache/checkpoint/quarantine role: plain result output.
    path.write_text(blob)


def justified_direct_write(cache_path, blob: str) -> None:
    cache_path.write_text(blob)  # poiagg: disable=PL007
