"""The release service: admission control in front of the dispatcher.

:class:`ReleaseService` is the transport-agnostic core that the HTTP
edge (:mod:`repro.serve.httpapi`), the CLI, and the tests all drive.
Its admission path decides, synchronously, one of four things about
every submit:

* **rejected** — the bounded queue is full (backpressure).  The caller
  gets a retry-after hint; no job is created and nothing is counted as
  accepted.
* **refused** — the user's budget ledger cannot cover the requested
  defense.  The request *is* accepted (it becomes a job) and refusal is
  its terminal fate, reported with the typed ``BudgetExhausted``
  payload — the HTTP 429 analog.
* **shed** — the load-shedding ladder is on its refuse rung.  Accepted,
  terminally shed, retry-after hinted.
* **queued** — the job enters the micro-batching dispatcher and will
  reach its terminal fate asynchronously.

The admission-time budget check is advisory (it never writes the WAL);
the authoritative charge happens in the dispatcher just before compute,
so a race between two submits for the same user's last epsilon is
settled durably in exactly one place.
"""

from __future__ import annotations

import queue as queue_module
from dataclasses import dataclass
from typing import Any

from repro.core.clock import Clock, SystemClock
from repro.core.errors import ConfigError
from repro.core.rng import derive_rng
from repro.defense.laplace_release import LaplaceHistogramDefense
from repro.defense.sanitization import Sanitizer
from repro.dp.mechanisms import PrivacyParams
from repro.poi.database import POIDatabase
from repro.serve.config import ServeConfig
from repro.serve.dispatcher import DefenseSpec, MicroBatchDispatcher
from repro.serve.faults import ServeFaultInjector, ServeFaultPlan
from repro.serve.jobs import Job, JobStore, ReleaseRequest
from repro.serve.journal import ServeJournal
from repro.serve.ledger import BudgetLedger
from repro.serve.shedding import LoadShedder, ShedLevel

__all__ = ["DefenseSpec", "ReleaseService", "SubmitOutcome", "build_default_specs"]


@dataclass(frozen=True)
class SubmitOutcome:
    """What the admission path decided about one submit."""

    status: str  # "queued" | "rejected" | "refused" | "shed" | "unavailable"
    job: "Job | None" = None
    retry_after_s: "float | None" = None
    payload: "dict[str, Any] | None" = None

    @property
    def accepted(self) -> bool:
        return self.job is not None


def build_default_specs(
    database: POIDatabase, *, epsilon: float = 1.0, sanitize_threshold: int = 10
) -> dict[str, DefenseSpec]:
    """The stock defense menu: raw, sanitize, and laplace.

    ``laplace`` is the only budgeted kind (pure epsilon-DP at *epsilon*
    per release); ``sanitize`` doubles as the ladder's degraded rung.
    """
    sanitizer = Sanitizer(database, threshold=sanitize_threshold)
    laplace = LaplaceHistogramDefense(epsilon=epsilon)
    return {
        "raw": DefenseSpec(kind="raw", mode="raw"),
        "sanitize": DefenseSpec(kind="sanitize", mode="sanitize", defense=sanitizer),
        "laplace": DefenseSpec(
            kind="laplace",
            mode="noise",
            epsilon=laplace.epsilon,
            delta=laplace.delta,
            defense=laplace,
        ),
    }


class ReleaseService:
    """Fault-tolerant online release-and-defense service (ISSUE 6 core)."""

    def __init__(
        self,
        database: POIDatabase,
        budget: PrivacyParams,
        *,
        config: "ServeConfig | None" = None,
        specs: "dict[str, DefenseSpec] | None" = None,
        ledger_dir: "str | None" = None,
        journal_path: "str | None" = None,
        clock: "Clock | None" = None,
        seed: int = 0,
        fault_plan: "ServeFaultPlan | None" = None,
        epsilon: float = 1.0,
    ) -> None:
        self._clock = clock if clock is not None else SystemClock()
        self.config = config if config is not None else ServeConfig()
        # Pin the configured Freq engine mode; the dispatcher's freq_batch
        # calls route through it (auto = radius-tiered banded/pyramid).
        database.set_engine(self.config.engine)
        self.specs = (
            specs
            if specs is not None
            else build_default_specs(database, epsilon=epsilon)
        )
        if "sanitize" not in self.specs:
            raise ConfigError(
                "the spec menu must include 'sanitize' (the ladder's degraded rung)"
            )
        self.ledger = BudgetLedger(
            budget,
            directory=ledger_dir,
            compact_every=self.config.ledger_compact_every,
            segment_max_bytes=self.config.wal_segment_max_bytes,
        )
        self.journal = ServeJournal(
            journal_path, self._clock, max_bytes=self.config.journal_max_bytes
        )
        self.store = JobStore(self._clock)
        self.shedder = LoadShedder(self.config, self._clock)
        self._queue: "queue_module.Queue[Job]" = queue_module.Queue(
            maxsize=self.config.queue_capacity
        )
        injector = (
            ServeFaultInjector(
                fault_plan, derive_rng(seed, "serve-faults"), self._clock
            )
            if fault_plan is not None and fault_plan.any_faults
            else None
        )
        self.injector = injector
        self.dispatcher = MicroBatchDispatcher(
            database=database,
            jobs=self._queue,
            store=self.store,
            ledger=self.ledger,
            shedder=self.shedder,
            specs=self.specs,
            config=self.config,
            clock=self._clock,
            journal=self.journal,
            seed=seed,
            injector=injector,
        )
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise ConfigError("service already started")
        self._started = True
        self.dispatcher.start()
        self.journal.event("started", config=str(self.config))

    def stop(self, *, drain_timeout_s: float = 10.0) -> None:
        """Drain (bounded), shed the stragglers, and release resources."""
        if self._started:
            self.dispatcher.drain(drain_timeout_s)
            self.dispatcher.stop()
            self._started = False
        # Even a never-started service owes every accepted job a fate.
        self.dispatcher.shed_remaining("service shutdown")
        self.journal.event("stopped", fates=self.store.counters.as_dict())
        self.journal.close()
        self.ledger.close()

    def __enter__(self) -> "ReleaseService":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def submit(self, request: ReleaseRequest) -> SubmitOutcome:
        """Admit one request; see the module docstring for the outcomes."""
        if request.defense not in self.specs:
            raise ConfigError(
                f"unknown defense {request.defense!r}; "
                f"expected one of {sorted(self.specs)}"
            )
        level = self.shedder.level(self._queue.qsize())
        if level >= ShedLevel.REFUSE:
            job = self.store.create(request, self.config.deadline_s)
            self.store.finalize(job, "shed", error="load shed at admission")
            self.shedder.count_admission_refusal()
            self.journal.event("shed", job_id=job.job_id, reason="admission ladder")
            return SubmitOutcome(
                status="shed", job=job, retry_after_s=self.config.retry_after_s
            )
        spec = self.specs[request.defense]
        if spec.charged:
            # Disk pressure: the ledger's device refused a WAL append
            # recently, so a charged release cannot be durably accounted.
            # Refuse at admission (503 + Retry-After) instead of queueing
            # work that would fail at the commit point; uncharged
            # defenses keep flowing, and the horizon's expiry lets the
            # next charged batch probe the disk again.
            retry_after = self.dispatcher.disk_pressure_retry_after
            if retry_after is not None:
                self.journal.event(
                    "unavailable", user_id=request.user_id, reason="disk pressure"
                )
                return SubmitOutcome(status="unavailable", retry_after_s=retry_after)
            refusal = self.ledger.would_refuse(
                request.user_id, spec.epsilon, spec.delta
            )
            if refusal is not None:
                job = self.store.create(request, self.config.deadline_s)
                self.store.finalize(job, "refused", error=str(refusal))
                payload = refusal.payload()
                self.journal.event(
                    "refused", job_id=job.job_id, user_id=request.user_id,
                    payload=payload,
                )
                return SubmitOutcome(status="refused", job=job, payload=payload)
        job = self.store.create(request, self.config.deadline_s)
        try:
            self._queue.put_nowait(job)
        except queue_module.Full:
            self.store.discard(job)
            self.journal.event("rejected", user_id=request.user_id, reason="queue full")
            return SubmitOutcome(
                status="rejected", retry_after_s=self.config.retry_after_s
            )
        self.journal.event("queued", job_id=job.job_id, user_id=request.user_id)
        return SubmitOutcome(status="queued", job=job)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def job(self, job_id: str) -> "Job | None":
        return self.store.get(job_id)

    def drain(self, timeout_s: float = 10.0) -> bool:
        return self.dispatcher.drain(timeout_s)

    def status(self) -> dict[str, Any]:
        """The ``/v1/status`` document: fates, ladder, breaker, ledger."""
        depth = self._queue.qsize()
        counts = self.injector.counts.as_dict() if self.injector is not None else None
        return {
            "fates": self.store.counters.as_dict(),
            "ladder": self.shedder.snapshot(depth),
            "ledger": self.ledger.stats(),
            "queue_depth": depth,
            "n_batches": self.dispatcher.n_batches,
            "n_requeues": self.dispatcher.n_requeues,
            "faults": counts,
            "defenses": sorted(self.specs),
        }
