"""Support vector classification trained with SMO.

A from-scratch replacement for scikit-learn's ``SVC`` (the paper's
prediction model for recovering sanitized frequencies, §III-A): a binary
soft-margin SVM solved with Platt's simplified Sequential Minimal
Optimization on a precomputed kernel matrix, plus a one-vs-rest wrapper for
multiclass frequency prediction.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import NotFittedError
from repro.core.rng import RngLike, as_generator
from repro.ml.kernels import gamma_scale, linear_kernel, rbf_kernel

__all__ = ["BinarySVC", "OneVsRestSVC"]


class BinarySVC:
    """Binary soft-margin SVM with an RBF or linear kernel.

    Parameters
    ----------
    C:
        Soft-margin penalty.
    kernel:
        ``"rbf"`` or ``"linear"``.
    gamma:
        RBF width; ``None`` uses the ``1 / (d * Var(X))`` heuristic.
    tol:
        KKT violation tolerance.
    max_passes:
        Number of full passes without any update before stopping.
    max_iter:
        Hard cap on optimization sweeps.
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: "float | None" = None,
        tol: float = 1e-3,
        max_passes: int = 3,
        max_iter: int = 200,
        rng: RngLike = None,
    ) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        if kernel not in ("rbf", "linear"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self._rng = as_generator(rng)
        self._X: "np.ndarray | None" = None
        self._alpha_y: "np.ndarray | None" = None
        self._b = 0.0
        self._gamma_fitted = 1.0

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return linear_kernel(A, B)
        return rbf_kernel(A, B, self._gamma_fitted)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BinarySVC":
        """Train on labels ``y`` in ``{-1, +1}``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if set(np.unique(y)) - {-1.0, 1.0}:
            raise ValueError("labels must be in {-1, +1}")
        n = len(X)
        self._gamma_fitted = self.gamma if self.gamma is not None else gamma_scale(X)
        if len(np.unique(y)) < 2:
            # Degenerate one-class training set: constant decision function.
            self._X = X[:1]
            self._alpha_y = np.zeros(1)
            self._b = float(y[0]) if n else 1.0
            return self

        K = self._kernel_matrix(X, X)
        alpha = np.zeros(n)
        self._b = 0.0
        # Error cache: E_i = f(x_i) - y_i, with f = K @ (alpha * y) + b.
        E = -y.copy()

        def take_step(i: int, j: int) -> bool:
            """Attempt one SMO pair update; True if alphas moved."""
            nonlocal E
            if i == j:
                return False
            Ei, Ej = E[i], E[j]
            ai_old, aj_old = alpha[i], alpha[j]
            if y[i] != y[j]:
                L = max(0.0, aj_old - ai_old)
                H = min(self.C, self.C + aj_old - ai_old)
            else:
                L = max(0.0, ai_old + aj_old - self.C)
                H = min(self.C, ai_old + aj_old)
            if H - L < 1e-12:
                return False
            eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
            if eta >= -1e-12:
                return False
            aj = aj_old - y[j] * (Ei - Ej) / eta
            aj = min(H, max(L, aj))
            if abs(aj - aj_old) < 1e-7:
                return False
            ai = ai_old + y[i] * y[j] * (aj_old - aj)
            b = self._b
            b1 = b - Ei - y[i] * (ai - ai_old) * K[i, i] - y[j] * (aj - aj_old) * K[i, j]
            b2 = b - Ej - y[i] * (ai - ai_old) * K[i, j] - y[j] * (aj - aj_old) * K[j, j]
            if 0 < ai < self.C:
                new_b = b1
            elif 0 < aj < self.C:
                new_b = b2
            else:
                new_b = (b1 + b2) / 2.0
            # Incremental error-cache update.
            E += y[i] * (ai - ai_old) * K[i] + y[j] * (aj - aj_old) * K[j] + (new_b - b)
            alpha[i], alpha[j] = ai, aj
            self._b = new_b
            return True

        passes = 0
        it = 0
        while passes < self.max_passes and it < self.max_iter:
            it += 1
            n_changed = 0
            for i in range(n):
                Ei = E[i]
                violates = (y[i] * Ei < -self.tol and alpha[i] < self.C) or (
                    y[i] * Ei > self.tol and alpha[i] > 0
                )
                if not violates:
                    continue
                # Second-choice heuristic first, then Platt's fallback over
                # random partners until one makes progress.
                j = int(np.argmax(np.abs(E - Ei)))
                if take_step(i, j):
                    n_changed += 1
                    continue
                for j in self._rng.permutation(n)[:50]:
                    if take_step(i, int(j)):
                        n_changed += 1
                        break
            passes = passes + 1 if n_changed == 0 else 0
        b = self._b

        support = alpha > 1e-8
        self._X = X[support]
        self._alpha_y = (alpha * y)[support]
        self._b = float(b)
        return self

    @property
    def n_support(self) -> int:
        """Number of support vectors."""
        if self._alpha_y is None:
            raise NotFittedError("BinarySVC used before fit()")
        return len(self._alpha_y)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margin ``f(x)`` for each row of *X*."""
        if self._X is None or self._alpha_y is None:
            raise NotFittedError("BinarySVC used before fit()")
        X = np.asarray(X, dtype=float)
        if len(self._X) == 0:
            return np.full(len(X), self._b)
        K = self._kernel_matrix(X, self._X)
        return K @ self._alpha_y + self._b

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels in ``{-1, +1}``; ties resolve to +1."""
        return np.where(self.decision_function(X) >= 0.0, 1.0, -1.0)


class OneVsRestSVC:
    """Multiclass SVC via one binary machine per observed class.

    Predicts the class whose binary machine reports the largest decision
    value — the standard one-vs-rest rule.  Classes are arbitrary integers
    (here: candidate frequency values of a sanitized POI type).
    """

    def __init__(self, C: float = 1.0, kernel: str = "rbf", gamma: "float | None" = None, rng: RngLike = None) -> None:
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self._rng = as_generator(rng)
        self.classes_: "np.ndarray | None" = None
        self._machines: list[BinarySVC] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OneVsRestSVC":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        self._machines = []
        for cls in self.classes_:
            machine = BinarySVC(
                C=self.C, kernel=self.kernel, gamma=self.gamma, rng=self._rng
            )
            machine.fit(X, np.where(y == cls, 1.0, -1.0))
            self._machines.append(machine)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise NotFittedError("OneVsRestSVC used before fit()")
        if len(self.classes_) == 1:
            return np.full(len(np.asarray(X)), self.classes_[0])
        scores = np.stack([m.decision_function(X) for m in self._machines], axis=1)
        return self.classes_[np.argmax(scores, axis=1)]
