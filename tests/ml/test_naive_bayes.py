"""Tests for the Gaussian naive Bayes classifier."""

import numpy as np
import pytest

from repro.core.errors import NotFittedError
from repro.ml.metrics import accuracy_score
from repro.ml.naive_bayes import GaussianNaiveBayes


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
    X = np.vstack([rng.normal(c, 1.0, size=(80, 2)) for c in centers])
    y = np.repeat([0, 1, 2], 80)
    return X, y


class TestGaussianNaiveBayes:
    def test_separable_blobs(self, blobs):
        X, y = blobs
        model = GaussianNaiveBayes().fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.95

    def test_generalises(self, blobs):
        X, y = blobs
        perm = np.random.default_rng(1).permutation(len(X))
        X, y = X[perm], y[perm]
        model = GaussianNaiveBayes().fit(X[:180], y[:180])
        assert accuracy_score(y[180:], model.predict(X[180:])) > 0.9

    def test_predict_log_proba_normalised(self, blobs):
        X, y = blobs
        model = GaussianNaiveBayes().fit(X, y)
        log_proba = model.predict_log_proba(X[:10])
        np.testing.assert_allclose(np.exp(log_proba).sum(axis=1), 1.0, atol=1e-9)

    def test_priors_matter_for_ambiguous_points(self):
        rng = np.random.default_rng(2)
        # Identical class-conditional distributions, 9:1 priors.
        X = rng.normal(0, 1, size=(200, 2))
        y = np.array([0] * 180 + [1] * 20)
        model = GaussianNaiveBayes().fit(X, y)
        preds = model.predict(rng.normal(0, 1, size=(100, 2)))
        assert (preds == 0).mean() > 0.9

    def test_constant_feature_does_not_crash(self):
        X = np.column_stack([np.ones(40), np.arange(40.0)])
        y = (np.arange(40) >= 20).astype(int)
        model = GaussianNaiveBayes().fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_single_class(self):
        X = np.random.default_rng(3).normal(size=(10, 2))
        y = np.full(10, 7)
        model = GaussianNaiveBayes().fit(X, y)
        assert (model.predict(X) == 7).all()

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GaussianNaiveBayes().predict(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes(var_smoothing=-1.0)
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit(np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit(np.zeros((0, 2)), np.zeros(0))

    def test_imbalanced_frequency_task(self):
        """The recovery-attack shape: mostly-zero target with co-occurrence."""
        rng = np.random.default_rng(4)
        X = rng.normal(size=(400, 6))
        y = np.where(X[:, 1] > 1.2, 1, 0)
        model = GaussianNaiveBayes().fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9


class TestRecoveryIntegration:
    def test_naive_bayes_recovery_model(self, city, db):
        from repro.attacks.recovery import SanitizationRecoveryAttack
        from repro.core.rng import derive_rng
        from repro.defense.sanitization import Sanitizer

        sanitizer = Sanitizer(db, threshold=10)
        attack = SanitizationRecoveryAttack(db, sanitizer, model="naive_bayes")
        report = attack.fit(
            radius=900.0,
            n_train=200,
            n_validation=60,
            rng=derive_rng(1, "nbfit"),
            bounds=city.interior(900.0),
        )
        assert report.mean_accuracy > 0.8

    def test_unknown_model_rejected(self, db):
        from repro.attacks.recovery import SanitizationRecoveryAttack
        from repro.core.errors import AttackError
        from repro.defense.sanitization import Sanitizer

        with pytest.raises(AttackError):
            SanitizationRecoveryAttack(db, Sanitizer(db, 10), model="forest")
