"""PL001 negative cases: nothing here may be flagged."""

import numpy as np

from repro.core.rng import as_generator, derive_rng


def seeded_generator_methods() -> None:
    rng = derive_rng(42, "fixture")
    rng.normal(0.0, 1.0, size=3)
    rng.integers(0, 10)


def seeded_default_rng_outside_library() -> np.random.Generator:
    # Fixture lints as an example/benchmark role, where a *seeded*
    # default_rng is fine (the library-role rule is stricter).
    return np.random.default_rng(123)


def generator_passthrough(rng: "int | np.random.Generator | None") -> np.random.Generator:
    return as_generator(rng)


def local_variable_named_random() -> int:
    class _Holder:
        def random(self) -> int:
            return 4

    random = _Holder()
    return random.random()  # a local object, not the stdlib module
