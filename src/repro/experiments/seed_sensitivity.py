"""Seed sensitivity — are the conclusions artifacts of one synthetic city?

Every headline number in this reproduction is measured on *generated*
cities, so a fair question is how much the curves move when the generator
seed changes.  This runner regenerates each city under several seeds and
measures the undefended region-attack success rate per radius; the spread
across seeds bounds the generator-induced variance of every other figure
(they all share the same substrate).  The bench asserts the spread stays
small relative to the radius effect the paper is about.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.attacks.metrics import evaluate_region_attack
from repro.core.rng import derive_rng
from repro.experiments.common import RADII_M
from repro.experiments.results import ExperimentResult
from repro.experiments.scale import SCALES, ExperimentScale
from repro.poi.cities import CITY_BUILDERS

__all__ = ["run_seed_sensitivity"]


def run_seed_sensitivity(
    scale: ExperimentScale = SCALES["ci"],
    radii: Sequence[float] = RADII_M,
    city_names: Sequence[str] = ("beijing", "nyc"),
    n_seeds: int = 3,
) -> ExperimentResult:
    """Regenerate each city under *n_seeds* seeds and compare attack rates."""
    result = ExperimentResult(
        experiment_id="seed_sensitivity",
        title="Undefended success rate across generator seeds",
        config={"scale": scale.name, "n_targets": scale.n_targets, "n_seeds": n_seeds},
        notes=(
            "Spread across seeds bounds generator-induced variance; the "
            "radius effect must dominate it for the reproduction's shape "
            "claims to be meaningful."
        ),
    )
    for city_name in city_names:
        for radius in radii:
            rates = []
            for offset in range(n_seeds):
                seed = scale.seed + offset
                city = CITY_BUILDERS[city_name](seed)
                rng = derive_rng(seed, "seed-sens", city_name, radius)
                targets = [
                    city.interior(radius).sample_point(rng)
                    for _ in range(scale.n_targets)
                ]
                evaluation = evaluate_region_attack(city.database, targets, radius)
                rates.append(evaluation.success_rate)
            result.add_row(
                city=city_name,
                r_km=radius / 1000.0,
                mean_success=float(np.mean(rates)),
                std_success=float(np.std(rates)),
                min_success=float(np.min(rates)),
                max_success=float(np.max(rates)),
            )
    return result
