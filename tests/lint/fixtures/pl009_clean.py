"""PL009 fixture: the sanctioned shared-memory lifecycle, and unrelated unlinks."""

import os
from pathlib import Path

from repro.poi.shared import attach_city, share_cities


def sanctioned_lifecycle(cities, handles):
    with share_cities(cities) as owned:
        attached = [attach_city(h) for h in owned]
    return attached, handles


def everyday_file_cleanup(tmp_dir):
    # Path.unlink / os.remove on ordinary paths is out of scope.
    (Path(tmp_dir) / "scratch.json").unlink()
    os.remove(os.path.join(tmp_dir, "scratch.csv"))


def dynamic_path_is_not_provable(path):
    os.unlink(path)
