"""Round supervision: deadlines, dropout tolerance, and atomic commits.

The orchestration layer of the federated backend, modeled on the shard
supervisor of :mod:`repro.experiments.supervisor`.  One round proceeds
chunk by chunk through the client population:

1. every chunk's clients submit (attempt 1); crashed/hung clients are
   *silent* and get up to ``retries`` further attempts,
2. admission fates each submission (accept / clip / reject-malformed /
   refuse-late) and the merger folds the admitted payloads,
3. clients silent through their whole attempt budget are ``dropped_out``,
4. the chunk's contributors' protocol noise-share sum is folded once.

A round then either **commits** — the contributor count met the quorum
*and* the campaign accountant afforded the round's ``(epsilon, delta)``
(:meth:`~repro.dp.accountant.PrivacyAccountant.try_spend`, recorded at
commit time only) — or **aborts** with the budget untouched.  Committed
rounds checkpoint atomically (PL007 temp + ``os.replace`` discipline) so
a SIGKILLed campaign resumes bit-identically: a torn round leaves no
checkpoint, is re-run as a pure function of ``(config, seed, faults)``,
and its budget is spent exactly once.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.core.errors import ConfigError
from repro.core.retention import prune_keep_last
from repro.core.vfs import get_vfs
from repro.dp.accountant import PrivacyAccountant
from repro.dp.mechanisms import PrivacyParams
from repro.federated.admission import AdmissionPipeline, RoundLedger
from repro.federated.clients import ClientPopulation
from repro.federated.config import FederatedConfig
from repro.federated.faults import ClientFaultPlan
from repro.federated.merger import AdaptiveGrid, StreamingMerger
from repro.ingest.atomic import atomic_write_text
from repro.poi.database import POIDatabase

__all__ = [
    "CampaignResult",
    "RoundOutcome",
    "RoundSupervisor",
    "round_checkpoint_path",
    "run_campaign",
]

_CHECKPOINT_DIR = Path(".checkpoints") / "federated"
_JOURNAL_NAME = "journal.jsonl"


def round_checkpoint_path(out: "Path | str", round_id: int) -> Path:
    """Where one committed/aborted round's checkpoint lives."""
    return Path(out) / _CHECKPOINT_DIR / f"round-{round_id:04d}.json"


def journal_path(out: "Path | str") -> Path:
    """The campaign journal (append-only, advisory)."""
    return Path(out) / _CHECKPOINT_DIR / _JOURNAL_NAME


def _fault_fingerprint(plan: "ClientFaultPlan | None") -> str:
    if plan is None:
        return "none"
    state = asdict(plan)
    state["overrides"] = [list(o) for o in plan.overrides]
    return json.dumps(state, sort_keys=True)


@dataclass
class RoundOutcome:
    """What one round did: its ledger, its release, and its cost."""

    round_id: int
    committed: bool
    abort_reason: str
    ledger: RoundLedger
    released: "np.ndarray | None"  # (n_cells, n_types), clamped at 0
    merge_stats: dict
    epsilon_spent: float
    delta_spent: float

    def as_dict(self) -> dict:
        return {
            "round_id": self.round_id,
            "committed": self.committed,
            "abort_reason": self.abort_reason,
            "ledger": self.ledger.as_dict(),
            "released": None if self.released is None else self.released.tolist(),
            "merge_stats": dict(self.merge_stats),
            "epsilon_spent": self.epsilon_spent,
            "delta_spent": self.delta_spent,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "RoundOutcome":
        released = state.get("released")
        return cls(
            round_id=int(state["round_id"]),
            committed=bool(state["committed"]),
            abort_reason=str(state["abort_reason"]),
            ledger=RoundLedger.from_dict(state["ledger"]),
            released=None if released is None else np.asarray(released, dtype=np.float64),
            merge_stats=dict(state["merge_stats"]),
            epsilon_spent=float(state["epsilon_spent"]),
            delta_spent=float(state["delta_spent"]),
        )


class RoundSupervisor:
    """Drive one population through dropout-tolerant aggregation rounds."""

    def __init__(
        self, population: ClientPopulation, accountant: PrivacyAccountant
    ) -> None:
        self._pop = population
        self._accountant = accountant

    @property
    def accountant(self) -> PrivacyAccountant:
        return self._accountant

    def run_round(
        self,
        round_id: int,
        grid: AdaptiveGrid,
        *,
        fault_plan: "ClientFaultPlan | None" = None,
        zero_payload_clients: "frozenset[int] | None" = None,
    ) -> RoundOutcome:
        """Run one round to its single outcome: commit or abort.

        The round spends budget only on the commit path, after the
        quorum check — an aborted round (quorum miss *or* budget
        refusal) leaves the accountant exactly as it found it.
        """
        pop = self._pop
        config = pop.config
        ledger = RoundLedger(round_id=round_id, enrolled=pop.n_clients)
        admission = AdmissionPipeline(config, pop.n_types, grid.n_cells)
        merger = StreamingMerger(grid.n_cells, pop.n_types, config)

        for chunk in range(pop.n_chunks):
            pending: "np.ndarray | None" = None
            contributors: list[np.ndarray] = []
            for attempt in range(1, config.retries + 2):
                if pending is not None and len(pending) == 0:
                    break
                batch, silent = pop.contribution_batch(
                    round_id,
                    chunk,
                    grid,
                    attempt=attempt,
                    only_clients=pending,
                    fault_plan=fault_plan,
                    zero_payload_clients=zero_payload_clients,
                )
                cells, values, admitted_ids = admission.admit_batch(batch, ledger)
                merger.fold(cells, values)
                contributors.append(admitted_ids)
                pending = silent
            if pending is not None:
                for client_id in pending:
                    ledger.record("dropped_out", int(client_id))
            contributor_ids = (
                np.concatenate(contributors) if contributors else np.empty(0, np.int64)
            )
            if len(contributor_ids):
                merger.add_dense(
                    pop.noise_share_sum(round_id, chunk, contributor_ids, grid.n_cells)
                )

        ledger.require_accounted()
        if ledger.contributed < config.quorum_count:
            return RoundOutcome(
                round_id=round_id,
                committed=False,
                abort_reason=(
                    f"quorum not met: {ledger.contributed} contributed < "
                    f"{config.quorum_count} required"
                ),
                ledger=ledger,
                released=None,
                merge_stats=merger.stats.as_dict(),
                epsilon_spent=0.0,
                delta_spent=0.0,
            )
        if not self._accountant.try_spend(
            config.epsilon, config.delta, label=f"federated-round-{round_id}"
        ):
            return RoundOutcome(
                round_id=round_id,
                committed=False,
                abort_reason=(
                    f"budget refused: ({config.epsilon}, {config.delta}) not "
                    f"affordable with epsilon remaining "
                    f"{self._accountant.remaining_epsilon():.4g}"
                ),
                ledger=ledger,
                released=None,
                merge_stats=merger.stats.as_dict(),
                epsilon_spent=0.0,
                delta_spent=0.0,
            )
        # Clamping at zero is data-independent post-processing (Lemma 3):
        # free, and it keeps released rows valid frequency vectors.
        released = np.maximum(merger.totals(), 0.0)
        return RoundOutcome(
            round_id=round_id,
            committed=True,
            abort_reason="",
            ledger=ledger,
            released=released,
            merge_stats=merger.stats.as_dict(),
            epsilon_spent=config.epsilon,
            delta_spent=config.delta,
        )


@dataclass
class CampaignResult:
    """A whole campaign: per-round outcomes plus the final release."""

    seed: int
    rounds: list = field(default_factory=list)
    grid: "AdaptiveGrid | None" = None
    accountant: "PrivacyAccountant | None" = None
    resumed_rounds: int = 0

    @property
    def n_committed(self) -> int:
        return sum(1 for r in self.rounds if r.committed)

    @property
    def n_aborted(self) -> int:
        return len(self.rounds) - self.n_committed

    @property
    def released(self) -> "np.ndarray | None":
        """The latest committed round's released heatmap."""
        for outcome in reversed(self.rounds):
            if outcome.committed:
                return outcome.released
        return None


class _Journal:
    """Append-only campaign event log (advisory, like the shard journal).

    Telemetry degrades, the campaign does not: a disk that refuses the
    journal disables it instead of aborting rounds.
    """

    def __init__(self, path: "Path | None") -> None:
        self._fh = None
        self.disabled_reason: "str | None" = None
        if path is not None:
            vfs = get_vfs()
            try:
                vfs.mkdir(path.parent, parents=True, exist_ok=True)
                self._fh = vfs.open(path, "a")
            except OSError as exc:
                self.disabled_reason = f"journal open refused: {exc}"

    def write(self, event: str, **fields: object) -> None:
        if self._fh is None:
            return
        try:
            self._fh.write(
                json.dumps({"event": event, **fields}, sort_keys=True) + "\n"
            )
        except OSError as exc:
            self.disabled_reason = f"journal write refused: {exc}"
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()


def _checkpoint_matches(
    state: "dict | None", fingerprint: str, seed: int, faults: str, round_id: int
) -> bool:
    if not isinstance(state, dict) or "outcome" not in state:
        return False
    return (
        state.get("fingerprint") == fingerprint
        and state.get("seed") == seed
        and state.get("faults") == faults
        and state.get("round_id") == round_id
    )


def run_campaign(
    database: POIDatabase,
    config: FederatedConfig,
    seed: int,
    *,
    budget: "PrivacyParams | None" = None,
    fault_plan: "ClientFaultPlan | None" = None,
    zero_payload_clients: "frozenset[int] | None" = None,
    out: "Path | str | None" = None,
    resume: bool = False,
    checkpoint_keep_last: "int | None" = None,
) -> CampaignResult:
    """Run ``config.n_rounds`` federated rounds as one campaign.

    The campaign is a pure function of ``(database, config, seed,
    fault_plan)``.  With *out* set, every finished round checkpoints
    atomically under ``<out>/.checkpoints/federated/`` — the outcome,
    the post-round accountant state, and the post-refinement grid — and
    ``resume=True`` restores finished rounds from matching checkpoints
    instead of re-running them.  A round interrupted mid-flight left no
    checkpoint, so a resumed campaign re-runs it identically and its
    budget is spent exactly once: the restored accountant comes from the
    last *finished* round.

    *budget* defaults to exactly ``n_rounds`` rounds' worth, so a
    healthy campaign commits every round; pass a smaller budget to
    exercise the refusal path.

    *checkpoint_keep_last* bounds the round-checkpoint history: after
    each round commits its checkpoint, older ``round-*.json`` files
    beyond the N newest are pruned
    (:func:`repro.core.retention.prune_keep_last`).  Each checkpoint
    carries the *cumulative* accountant and grid state, so resume only
    ever needs the newest one; pruned rounds re-run bit-identically if
    the newest is gone too.  ``None`` keeps everything.
    """
    if checkpoint_keep_last is not None and checkpoint_keep_last < 1:
        raise ConfigError(
            f"checkpoint_keep_last must be >= 1 or None, got {checkpoint_keep_last}"
        )
    if resume and out is None:
        raise ConfigError("resume needs an output directory for checkpoints")
    if budget is None:
        # delta composes additively but is meaningless at or above 1, so a
        # long default campaign caps there; rounds past the cap are refused
        # rather than pretending the guarantee still holds.
        budget = PrivacyParams(
            config.epsilon * config.n_rounds,
            min(config.delta * config.n_rounds, 1.0 - 1e-9),
        )
    accountant = PrivacyAccountant(budget=budget)
    population = ClientPopulation(database, config, seed)
    grid = AdaptiveGrid(database.bounds, config.grid_nx, config.grid_ny)
    fingerprint = config.fingerprint()
    faults = _fault_fingerprint(fault_plan)
    journal = _Journal(journal_path(out) if out is not None else None)
    result = CampaignResult(seed=seed)

    try:
        for round_id in range(config.n_rounds):
            restored = False
            if resume and out is not None:
                path = round_checkpoint_path(out, round_id)
                state = None
                if path.exists():
                    state = json.loads(path.read_text())
                if _checkpoint_matches(state, fingerprint, seed, faults, round_id):
                    assert state is not None
                    outcome = RoundOutcome.from_dict(state["outcome"])
                    accountant = PrivacyAccountant.from_state(state["accountant"])
                    grid = AdaptiveGrid.from_state(state["grid_after"])
                    result.rounds.append(outcome)
                    result.resumed_rounds += 1
                    restored = True
                    journal.write(
                        "round_resumed", round_id=round_id, committed=outcome.committed
                    )
            if restored:
                continue

            supervisor = RoundSupervisor(population, accountant)
            outcome = supervisor.run_round(
                round_id,
                grid,
                fault_plan=fault_plan,
                zero_payload_clients=zero_payload_clients,
            )
            if outcome.committed and outcome.released is not None:
                grid.refine(
                    outcome.released.sum(axis=1), config, population.n_types
                )
            result.rounds.append(outcome)
            journal.write(
                "round_committed" if outcome.committed else "round_aborted",
                round_id=round_id,
                contributed=outcome.ledger.contributed,
                abort_reason=outcome.abort_reason,
            )
            if out is not None:
                atomic_write_text(
                    round_checkpoint_path(out, round_id),
                    json.dumps(
                        {
                            "fingerprint": fingerprint,
                            "seed": seed,
                            "faults": faults,
                            "round_id": round_id,
                            "outcome": outcome.as_dict(),
                            "accountant": accountant.to_state(),
                            "grid_after": grid.to_state(),
                        },
                        sort_keys=True,
                    ),
                )
                if checkpoint_keep_last is not None:
                    pruned = prune_keep_last(
                        Path(out) / _CHECKPOINT_DIR,
                        "round-*.json",
                        checkpoint_keep_last,
                    )
                    if pruned:
                        journal.write(
                            "checkpoints_pruned",
                            round_id=round_id,
                            n_pruned=len(pruned),
                            keep_last=checkpoint_keep_last,
                        )
    finally:
        journal.close()

    result.grid = grid
    result.accountant = accountant
    return result
