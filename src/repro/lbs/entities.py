"""The three parties of the LBS architecture, as simulation entities.

:class:`GeoServiceProvider` owns the POI database and answers range
queries.  :class:`MobileUser` walks a trajectory, queries the GSP, applies
its configured :class:`~repro.defense.base.Defense`, and releases
aggregates.  :class:`POIService` is the LBS application: it consumes
aggregates to serve Top-K type recommendations — and, when instantiated as
honest-but-curious, logs every release for the attack layer.

The simulation is deliberately synchronous and deterministic: it models
the *information flow* of the architecture (who learns what), which is
what the privacy analysis needs, not network timing.  Timing enters only
through the optional resilience machinery (:mod:`repro.lbs.resilience`),
and even there it runs on a simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clock import Clock, SimulatedClock
from repro.core.errors import CircuitOpenError, ConfigError, TransientError
from repro.core.rng import RngLike, as_generator
from repro.datasets.trajectory import Trajectory
from repro.defense.base import Defense, NoDefense
from repro.geo.point import Point
from repro.lbs.messages import AggregateRelease, GeoQuery, GeoResponse
from repro.lbs.resilience import CircuitBreaker, RetryPolicy, UserSessionStats
from repro.poi.database import POIDatabase
from repro.poi.frequency import top_k_types, validate_frequency_vector

__all__ = ["GeoServiceProvider", "MobileUser", "POIService"]


class GeoServiceProvider:
    """The GSP: answers ``Query(l, r)`` over its POI database."""

    def __init__(self, database: POIDatabase) -> None:
        self._db = database
        self.n_queries_served = 0

    @property
    def database(self) -> POIDatabase:
        """The public map (the adversary holds a copy of this too)."""
        return self._db

    def snapshot(self) -> POIDatabase:
        """The map snapshot backing the next query.

        Users resolve their queries against this; the fault-injection
        wrapper overrides it to fail transiently, time out, or serve a
        stale map, which is why it is a method and not an attribute.
        """
        return self._db

    def handle(self, query: GeoQuery) -> GeoResponse:
        """Serve one range query."""
        if query.radius <= 0:
            raise ConfigError(f"query radius must be positive, got {query.radius}")
        indices = self._db.query(query.location, query.radius)
        self.n_queries_served += 1
        return GeoResponse(query=query, poi_indices=tuple(int(i) for i in indices))


class MobileUser:
    """A user that releases (defended) aggregates along its trajectory.

    Without resilience parameters the user is the perfect-world entity of
    the paper: every release succeeds.  With a :class:`RetryPolicy` (and
    optionally a shared :class:`CircuitBreaker`) it applies the
    graceful-degradation ladder on GSP failures:

    1. **retry** with capped exponential backoff inside the per-release
       deadline budget;
    2. **degrade** — re-release the last-known-good vector (stale but
       well-formed; privacy-wise it only repeats information already
       released);
    3. **skip** the release entirely.

    Outcomes are tallied in :attr:`stats`.
    """

    def __init__(
        self,
        user_id: int,
        gsp: GeoServiceProvider,
        defense: "Defense | None" = None,
        rng: RngLike = None,
        retry_policy: "RetryPolicy | None" = None,
        breaker: "CircuitBreaker | None" = None,
        clock: "Clock | None" = None,
    ) -> None:
        self.user_id = user_id
        self._gsp = gsp
        self._defense = defense if defense is not None else NoDefense()
        self._rng = as_generator(rng)
        self._retry_policy = retry_policy
        self._breaker = breaker
        self._clock = clock if clock is not None else SimulatedClock()
        self._last_good: "np.ndarray | None" = None
        self.stats = UserSessionStats()

    @property
    def defense_name(self) -> str:
        return self._defense.name

    def _defended_vector(self, location: Point, radius: float) -> np.ndarray:
        """One query + defense round against the GSP's current snapshot."""
        snapshot = self._gsp.snapshot()
        return self._defense.release(snapshot, location, radius, self._rng)

    def _fetch_vector(self, location: Point, radius: float) -> "np.ndarray | None":
        """Run the degradation ladder; ``None`` means the release is skipped."""
        policy = self._retry_policy
        if policy is None:
            return self._defended_vector(location, radius)
        try:
            if self._breaker is not None:
                self._breaker.guard()
            start = self._clock.now()
            attempt = 0
            while True:
                try:
                    vector = self._defended_vector(location, radius)
                except TransientError:
                    if self._breaker is not None:
                        self._breaker.record_failure()
                        if not self._breaker.allow():
                            break  # the breaker tripped mid-ladder: stop retrying
                    if attempt + 1 >= policy.max_attempts:
                        break
                    delay = policy.backoff_delay(attempt, self._rng)
                    elapsed = self._clock.now() - start
                    if elapsed + delay > policy.deadline_s:
                        break  # sleeping would bust the release's deadline budget
                    self._clock.sleep(delay)
                    self.stats.n_retries += 1
                    attempt += 1
                else:
                    if self._breaker is not None:
                        self._breaker.record_success()
                    self._last_good = vector
                    return vector
        except CircuitOpenError:
            self.stats.n_short_circuits += 1
        # --- degraded path: last-known-good, else skip ---
        if self._last_good is not None:
            self.stats.n_degraded += 1
            return self._last_good
        return None

    def release_at(
        self, location: Point, radius: float, timestamp: float
    ) -> "AggregateRelease | None":
        """One LBS interaction: query the GSP, defend, release.

        The defense abstraction already covers both placement points the
        paper considers — location-level defenses perturb before the GSP
        query, aggregate-level ones perturb the vector afterwards — so the
        user simply delegates to it.  Returns ``None`` when the ladder
        exhausted every fallback and the release is skipped.
        """
        if isinstance(self._clock, SimulatedClock):
            self._clock.advance_to(timestamp)
        self.stats.n_attempted += 1
        vector = self._fetch_vector(location, radius)
        if vector is None:
            self.stats.n_skipped += 1
            return None
        self.stats.n_released += 1
        return AggregateRelease(
            user_id=self.user_id,
            frequency_vector=vector,
            radius=radius,
            timestamp=timestamp,
        )

    def walk(self, trajectory: Trajectory, radius: float) -> list[AggregateRelease]:
        """Release one aggregate per trajectory sample (skips drop out)."""
        releases = (
            self.release_at(point.location, radius, point.timestamp)
            for point in trajectory.points
        )
        return [release for release in releases if release is not None]


@dataclass
class POIService:
    """The LBS application: Top-K recommendations over received aggregates.

    With ``curious=True`` it also keeps the full release log — the
    honest-but-curious adversary of the threat model, which follows the
    protocol but retains everything it sees.  When ``n_types`` is set the
    service additionally enforces the vocabulary width, so malformed
    releases (wrong width, NaN, negative counts) are rejected at ingest
    with :class:`~repro.core.errors.ReleaseValidationError` — and never
    reach the log or a recommendation.
    """

    top_k: int = 10
    curious: bool = False
    n_types: "int | None" = None
    _log: list[AggregateRelease] = field(default_factory=list)

    def recommend(self, release: AggregateRelease) -> frozenset[int]:
        """Serve the Top-K POI types for one (validated) release."""
        vector = validate_frequency_vector(
            release.frequency_vector,
            n_types=self.n_types,
            context=f"release from user {release.user_id}",
        )
        if self.curious:
            self._log.append(release)
        return top_k_types(vector, self.top_k)

    @property
    def observed_releases(self) -> tuple[AggregateRelease, ...]:
        """What the adversary has collected (empty unless curious)."""
        return tuple(self._log)

    def releases_of(self, user_id: int) -> list[AggregateRelease]:
        """The time-ordered release history of one user."""
        mine = [r for r in self._log if r.user_id == user_id]
        return sorted(mine, key=lambda r: r.timestamp)
