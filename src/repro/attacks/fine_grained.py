"""The fine-grained attack — paper §IV-A, Algorithm 1.

Cao et al.'s attack stops at "the target is somewhere in ``Disk(p*, r)``"
(area ``pi r^2``).  The fine-grained attack keeps going: every POI that can
be shown to lie within ``r`` of the target is another *anchor* whose
radius-``r`` disk must contain the target, and intersecting those disks
shrinks the search area dramatically (Fig. 6: under a quarter of ``pi r^2``
in ~80% of cases).

Anchor harvesting (Algorithm 1) works on the superset ``P(p*, 2r)`` of the
target's true POI set ``P(l, r)``:

* For a type ``t`` with ``F(p*, 2r)[t] - F(l, r)[t] = 0``, *every* POI of
  type ``t`` in the superset is in ``P(l, r)`` — a sound, free batch of
  anchors; processing types in ascending difference order takes this fast
  path first.
* Otherwise each POI ``p`` of type ``t`` is kept as an anchor if
  ``Freq(p, 2r)`` dominates ``F(l, r)`` — the same necessary condition the
  baseline uses.  It can admit a false anchor (the condition is not
  sufficient), which the paper accepts; the evaluation tracks how often
  the final region still contains the target.

Harvesting stops after ``max_aux`` anchors; Fig. 7 sweeps that cap.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.attacks.base import AttackOutcome, Release, require_release
from repro.attacks.region import RegionAttack
from repro.core.errors import AttackError
from repro.geo.disk import Disk
from repro.geo.point import Point
from repro.geo.region import DiskIntersection
from repro.poi.database import POIDatabase
from repro.poi.frequency import dominates
from repro.core.rng import RngLike

__all__ = ["FineGrainedAttack", "FineGrainedOutcome"]


@dataclass(frozen=True)
class FineGrainedOutcome:
    """Result of a fine-grained attempt.

    ``anchors`` lists auxiliary anchor POI indices in harvest order, so a
    prefix of length ``n`` reproduces the attack capped at ``MAX_aux = n``.
    """

    base: AttackOutcome
    radius: float
    major_anchor: "int | None"
    anchors: tuple[int, ...]
    _db: POIDatabase

    @property
    def success(self) -> bool:
        """Whether the baseline stage uniquely re-identified the region."""
        return self.base.success

    def region(self, n_aux: "int | None" = None) -> "DiskIntersection | None":
        """The feasible region using the first *n_aux* anchors (all by default)."""
        if not self.success or self.major_anchor is None:
            return None
        use = self.anchors if n_aux is None else self.anchors[:n_aux]
        base_disk = Disk(self._db.location_of(self.major_anchor), self.radius)
        constraints = tuple(Disk(self._db.location_of(a), self.radius) for a in use)
        return DiskIntersection(base_disk, constraints)

    def search_area_m2(self, n_aux: "int | None" = None, n_samples: int = 20_000, rng: RngLike = None) -> float:
        """Monte-Carlo search area in square meters; NaN when unsuccessful."""
        region = self.region(n_aux)
        if region is None:
            return float("nan")
        return region.area(n_samples=n_samples, rng=rng)

    def point_estimate(self, n_samples: int = 20_000, rng: RngLike = None) -> "Point | None":
        """The attacker's best single guess: the feasible region's centroid."""
        region = self.region()
        if region is None:
            return None
        return region.centroid(n_samples=n_samples, rng=rng)

    def contains(self, true_location: Point, n_aux: "int | None" = None) -> bool:
        """Whether the feasible region still contains the target."""
        region = self.region(n_aux)
        return region is not None and region.contains(true_location)


class FineGrainedAttack:
    """Algorithm 1 on top of the baseline region attack."""

    def __init__(
        self,
        database: POIDatabase,
        max_aux: int = 20,
        consistent_anchors: bool = False,
        sound_only: bool = False,
    ) -> None:
        """
        Parameters
        ----------
        database:
            The adversary's public POI map.
        max_aux:
            Anchor cap (``MAX_aux`` in Algorithm 1; the paper uses 20).
        consistent_anchors:
            Extension beyond the paper: additionally require every new
            anchor to lie within ``2r`` of all previously accepted anchors.
            True anchors are all within ``r`` of the target and therefore
            within ``2r`` of each other, so the filter never rejects a true
            anchor on account of other true anchors; it discards many of
            the false anchors the domination check admits, trading a
            slightly larger search area for better containment of the true
            location (see the ablation bench).
        sound_only:
            Extension beyond the paper: harvest only the zero-difference
            fast-path anchors, which are *provably* within ``r`` of the
            target.  The resulting region always contains the target (no
            false anchors at all) at the cost of fewer anchors and hence a
            larger search area.
        """
        if max_aux < 0:
            raise AttackError(f"max_aux must be non-negative, got {max_aux}")
        self._db = database
        self._region_attack = RegionAttack(database)
        self.max_aux = max_aux
        self.consistent_anchors = consistent_anchors
        self.sound_only = sound_only

    def harvest_anchors(
        self, freq_vector: np.ndarray, radius: float, major_anchor: int
    ) -> list[int]:
        """Collect auxiliary anchors around *major_anchor* (Algorithm 1 body)."""
        superset = self._db.query(self._db.location_of(major_anchor), 2 * radius)
        return self._harvest(np.asarray(freq_vector), radius, major_anchor, superset)

    def _harvest(
        self,
        freq_vector: np.ndarray,
        radius: float,
        major_anchor: int,
        superset: np.ndarray,
    ) -> list[int]:
        """Algorithm 1 over a precomputed superset ``P(p*, 2r)``.

        The domination checks for the whole superset are evaluated as one
        broadcast against the anchor frequency matrix; the harvest loop then
        only consults the precomputed mask, preserving the scalar order and
        the ``MAX_aux`` early exit exactly.
        """
        if self.max_aux == 0:
            return []
        db = self._db
        anchor_loc = db.location_of(major_anchor)
        f_superset = db.freq_at_poi(major_anchor, 2 * radius)
        f_diff = f_superset - freq_vector

        superset_types = db.type_ids[superset]
        present = np.unique(superset_types)
        # Ascending difference puts the sound zero-difference fast path first.
        order = present[np.lexsort((present, f_diff[present]))]

        anchors: list[int] = []
        dominated: "np.ndarray | None" = None

        def mutually_consistent(p: int) -> bool:
            if not self.consistent_anchors:
                return True
            loc = db.location_of(p)
            limit = 2 * radius + 1e-9
            return all(
                loc.distance_to(db.location_of(a)) <= limit for a in anchors
            ) and loc.distance_to(anchor_loc) <= limit

        for t in order:
            member_pos = np.flatnonzero(superset_types == t)
            if f_diff[t] == 0:
                for k in member_pos:
                    p = int(superset[k])
                    if p != major_anchor and mutually_consistent(p):
                        anchors.append(p)
                    if len(anchors) >= self.max_aux:
                        return anchors
            elif not self.sound_only:
                if dominated is None:
                    dominated = dominates(
                        db.anchor_freqs(2 * radius, superset), freq_vector
                    )
                for k in member_pos:
                    p = int(superset[k])
                    if p == major_anchor:
                        continue
                    if dominated[k] and mutually_consistent(p):
                        anchors.append(p)
                    if len(anchors) >= self.max_aux:
                        return anchors
        return anchors

    def run(self, release: Release) -> FineGrainedOutcome:
        """Baseline re-identification, then anchor harvesting if unique."""
        rel = require_release(release, caller="FineGrainedAttack.run")
        base = self._region_attack.run(rel)
        return self._finish(rel, base)

    def run_batch(self, releases: Sequence[Release]) -> list[FineGrainedOutcome]:
        """Batched fine-grained attack, bit-identical to the scalar loop.

        The baseline stage runs through :meth:`RegionAttack.run_batch`; the
        successful releases' supersets ``P(p*, 2r)`` are then answered with
        one batched grid query per radius and their anchor rows warmed in
        one vectorized pass before harvesting.
        """
        releases = list(releases)
        bases = self._region_attack.run_batch(releases)
        db = self._db
        wins = [i for i, base in enumerate(bases) if base.success]
        by_radius: dict[float, list[int]] = {}
        for i in wins:
            by_radius.setdefault(float(releases[i].radius), []).append(i)
        supersets: dict[int, np.ndarray] = {}
        for radius, rows in by_radius.items():
            majors = [bases[i].candidates[0] for i in rows]
            xy = db.positions[np.asarray(majors, dtype=np.intp)]
            idx, offsets = db.query_batch(xy, 2 * radius)
            for j, i in enumerate(rows):
                supersets[i] = idx[offsets[j] : offsets[j + 1]]
            needed = np.unique(np.concatenate([idx, np.asarray(majors, dtype=np.intp)]))
            if len(needed):
                db.anchor_freqs(2 * radius, needed)
        return [
            self._finish(rel, base, supersets.get(i))
            for i, (rel, base) in enumerate(zip(releases, bases))
        ]

    def _finish(
        self,
        release: Release,
        base: AttackOutcome,
        superset: "np.ndarray | None" = None,
    ) -> FineGrainedOutcome:
        if not base.success:
            return FineGrainedOutcome(
                base=base, radius=release.radius, major_anchor=None, anchors=(), _db=self._db
            )
        major = base.candidates[0]
        freq_vector = np.asarray(release.frequency_vector)
        if superset is None:
            superset = self._db.query(self._db.location_of(major), 2 * release.radius)
        anchors = self._harvest(freq_vector, release.radius, major, superset)
        return FineGrainedOutcome(
            base=base,
            radius=release.radius,
            major_anchor=major,
            anchors=tuple(anchors),
            _db=self._db,
        )
