"""Budget-ledger unit tests: spending, refusal, and crash-safe restore."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import BudgetExhaustedError, ConfigError, LedgerIntegrityError
from repro.dp.mechanisms import PrivacyParams
from repro.serve.ledger import SNAPSHOT_NAME, WAL_NAME, BudgetLedger


BUDGET = PrivacyParams(3.0, 0.0)


def test_spend_until_refused_is_deterministic():
    ledger = BudgetLedger(BUDGET)
    for _ in range(3):
        ledger.spend("alice", 1.0)
    with pytest.raises(BudgetExhaustedError):
        ledger.spend("alice", 1.0)
    # Refusal is terminal: every later spend is refused too.
    with pytest.raises(BudgetExhaustedError):
        ledger.spend("alice", 0.5)
    assert ledger.remaining("alice")[0] == pytest.approx(0.0)
    assert ledger.n_granted == 3
    assert ledger.n_refused == 2


def test_refusal_payload_is_typed():
    ledger = BudgetLedger(PrivacyParams(1.0, 0.0))
    ledger.spend("bob", 1.0)
    with pytest.raises(BudgetExhaustedError) as excinfo:
        ledger.spend("bob", 1.0)
    payload = excinfo.value.payload()
    assert payload["error"] == "BudgetExhausted"
    assert payload["user_id"] == "bob"
    assert payload["budget_epsilon"] == 1.0
    assert payload["spent_epsilon"] == pytest.approx(1.0)


def test_would_refuse_matches_spend_at_the_boundary():
    """The advisory pre-check and the durable commit agree to the last ulp."""
    ledger = BudgetLedger(PrivacyParams(1.0, 0.0))
    # Ten spends of 0.1 do not sum to exactly 1.0 in floats; whatever
    # spend() decides, would_refuse() must have predicted.
    for _ in range(10):
        assert ledger.would_refuse("carol", 0.1) is None
        ledger.spend("carol", 0.1)
    assert ledger.would_refuse("carol", 0.1) is not None
    with pytest.raises(BudgetExhaustedError):
        ledger.spend("carol", 0.1)


def test_users_are_isolated():
    ledger = BudgetLedger(PrivacyParams(1.0, 0.0))
    ledger.spend("alice", 1.0)
    ledger.spend("bob", 1.0)  # alice's exhaustion does not affect bob
    assert ledger.n_users == 2


def test_spend_batch_composes_within_the_batch():
    ledger = BudgetLedger(PrivacyParams(2.0, 0.0))
    outcomes = ledger.spend_batch(
        [("dave", 1.0, 0.0), ("dave", 1.0, 0.0), ("dave", 1.0, 0.0)]
    )
    assert outcomes[0] is None and outcomes[1] is None
    assert isinstance(outcomes[2], BudgetExhaustedError)


def test_invalid_spends_are_config_errors():
    ledger = BudgetLedger(BUDGET)
    with pytest.raises(ConfigError):
        ledger.spend("eve", 0.0)
    with pytest.raises(ConfigError):
        ledger.spend("eve", 1.0, delta=-0.1)


def test_restart_restores_spent_budget(tmp_path):
    with BudgetLedger(BUDGET, directory=tmp_path) as ledger:
        ledger.spend("alice", 1.0)
        ledger.spend("alice", 1.0)
        ledger.spend("bob", 1.0)
    reborn = BudgetLedger(BUDGET, directory=tmp_path)
    assert reborn.remaining("alice")[0] == pytest.approx(1.0)
    assert reborn.remaining("bob")[0] == pytest.approx(2.0)
    reborn.spend("alice", 1.0)
    with pytest.raises(BudgetExhaustedError):
        reborn.spend("alice", 1.0)


def test_restore_from_wal_only_without_snapshot(tmp_path):
    ledger = BudgetLedger(BUDGET, directory=tmp_path)
    ledger.spend("alice", 1.0)
    # No close(): simulate a hard kill by abandoning the handle.
    (tmp_path / SNAPSHOT_NAME).unlink(missing_ok=True)
    reborn = BudgetLedger(BUDGET, directory=tmp_path)
    assert reborn.remaining("alice")[0] == pytest.approx(2.0)


def test_torn_trailing_wal_line_is_dropped(tmp_path):
    ledger = BudgetLedger(BUDGET, directory=tmp_path)
    ledger.spend("alice", 1.0)
    ledger.spend("alice", 1.0)
    wal = tmp_path / WAL_NAME
    content = wal.read_text(encoding="utf-8")
    # Tear the final append mid-record, as a crash mid-write would.
    wal.write_text(content[:-9], encoding="utf-8")
    reborn = BudgetLedger(BUDGET, directory=tmp_path)
    # The torn spend was never served, so dropping it is the safe call.
    assert reborn.remaining("alice")[0] == pytest.approx(2.0)


def test_torn_tail_is_truncated_before_new_appends(tmp_path):
    """Regression: a torn tail survived restore and the next append
    concatenated onto it, so a *later* restart saw a merged mid-file
    record — either an integrity error or a silently dropped spend."""
    ledger = BudgetLedger(BUDGET, directory=tmp_path)
    ledger.spend("alice", 1.0)
    wal = tmp_path / WAL_NAME
    with open(wal, "a", encoding="utf-8") as fh:
        fh.write('{"seq":2,"user":"al')  # crash mid-append: no newline
    reborn = BudgetLedger(BUDGET, directory=tmp_path)
    assert reborn.remaining("alice")[0] == pytest.approx(2.0)
    reborn.spend("bob", 1.0)
    # Every line in the repaired WAL must be a complete record.
    for line in wal.read_text(encoding="utf-8").splitlines():
        json.loads(line)
    third = BudgetLedger(BUDGET, directory=tmp_path)
    assert third.remaining("alice")[0] == pytest.approx(2.0)
    assert third.remaining("bob")[0] == pytest.approx(2.0)


def test_complete_record_missing_newline_is_a_torn_tail(tmp_path):
    """The fsynced payload always ends in a newline, so a final line
    without one was never acknowledged and must not be replayed (or
    appended onto)."""
    ledger = BudgetLedger(BUDGET, directory=tmp_path)
    ledger.spend("alice", 1.0)
    wal = tmp_path / WAL_NAME
    with open(wal, "a", encoding="utf-8") as fh:
        fh.write('{"seq":2,"user":"alice","eps":1.0,"delta":0.0}')
    reborn = BudgetLedger(BUDGET, directory=tmp_path)
    assert reborn.remaining("alice")[0] == pytest.approx(2.0)
    reborn.spend("alice", 1.0)
    third = BudgetLedger(BUDGET, directory=tmp_path)
    assert third.remaining("alice")[0] == pytest.approx(1.0)


def test_parked_wal_never_nul_pads_a_shrunken_file(tmp_path):
    """Regression: if the active file is *shorter* than the remembered
    offset (compaction's truncate-by-rewrite landed but its reopen
    failed), recovery must resynchronize, not extend the file with NUL
    bytes."""
    ledger = BudgetLedger(BUDGET, directory=tmp_path)
    ledger.spend("alice", 1.0)
    # Park the handle with a stale offset over an emptied file, exactly
    # the state a failed post-compaction reopen leaves behind.
    ledger._wal.close()
    ledger._wal = None
    (tmp_path / WAL_NAME).write_text("", encoding="utf-8")
    ledger.spend("alice", 1.0)
    data = (tmp_path / WAL_NAME).read_bytes()
    assert b"\x00" not in data
    for line in data.decode("utf-8").splitlines():
        json.loads(line)


def test_mid_file_wal_corruption_is_an_integrity_error(tmp_path):
    ledger = BudgetLedger(BUDGET, directory=tmp_path)
    ledger.spend("alice", 1.0)
    ledger.spend("alice", 1.0)
    wal = tmp_path / WAL_NAME
    lines = wal.read_text(encoding="utf-8").splitlines()
    lines[0] = lines[0][:-4] + "!!!"
    wal.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(LedgerIntegrityError):
        BudgetLedger(BUDGET, directory=tmp_path)


def test_compact_then_stale_wal_replays_exactly_once(tmp_path):
    """The crash window between snapshot replace and WAL truncation."""
    ledger = BudgetLedger(BUDGET, directory=tmp_path)
    ledger.spend("alice", 1.0)
    ledger.spend("alice", 1.0)
    stale_wal = (tmp_path / WAL_NAME).read_text(encoding="utf-8")
    ledger.compact()
    # Put the pre-compaction WAL back, as if the truncate never landed.
    (tmp_path / WAL_NAME).write_text(stale_wal, encoding="utf-8")
    reborn = BudgetLedger(BUDGET, directory=tmp_path)
    # Sequence filtering must not double-count the two spends.
    assert reborn.remaining("alice")[0] == pytest.approx(1.0)


def test_compaction_triggers_by_append_count(tmp_path):
    ledger = BudgetLedger(BUDGET, directory=tmp_path, compact_every=2)
    ledger.spend("alice", 0.5)
    ledger.spend("alice", 0.5)
    snapshot = json.loads((tmp_path / SNAPSHOT_NAME).read_text(encoding="utf-8"))
    assert snapshot["seq"] == 2
    assert (tmp_path / WAL_NAME).read_text(encoding="utf-8") == ""


def test_budget_mismatch_refuses_to_restore(tmp_path):
    with BudgetLedger(BUDGET, directory=tmp_path) as ledger:
        ledger.spend("alice", 1.0)
    with pytest.raises(LedgerIntegrityError):
        BudgetLedger(PrivacyParams(99.0, 0.0), directory=tmp_path)


def test_in_memory_ledger_needs_no_directory():
    ledger = BudgetLedger(BUDGET)
    ledger.spend("alice", 1.0)
    ledger.close()  # no-op persistence, must not raise
