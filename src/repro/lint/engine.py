"""Linting engine: file discovery, suppressions, contexts, and output formats.

The engine is rule-agnostic.  It parses each file once, classifies it by
role (library / benchmark / example / test), resolves the import aliases
rules need to recognise ``np.random`` however it was spelled, collects
``# poiagg: disable=RULE`` suppression comments, runs every registered
rule, and renders the surviving violations in one of three formats.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FileContext",
    "ImportMap",
    "LintReport",
    "Violation",
    "apply_baseline",
    "check_file",
    "check_paths",
    "check_source",
    "format_report",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
]

#: Directories never linted, wherever they appear in a path.
_SKIP_DIRS = {".git", "__pycache__", ".checkpoints", "build", "dist", ".venv"}

_SUPPRESS_RE = re.compile(r"#\s*poiagg:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class Suppressions:
    """Parsed ``# poiagg: disable=...`` pragmas for one file."""

    file_rules: frozenset[str]
    line_rules: dict[int, frozenset[str]]

    def active(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_rules or "ALL" in self.file_rules:
            return True
        at_line = self.line_rules.get(line, frozenset())
        return rule_id in at_line or "ALL" in at_line


class ImportMap:
    """What each top-level name in a module refers to.

    Maps aliases to the dotted module they name (``np`` → ``numpy``,
    ``npr`` → ``numpy.random``) and from-imported symbols to their fully
    qualified origin (``default_rng`` → ``numpy.random.default_rng``).
    Rules use :meth:`resolve` to canonicalise a call target regardless of
    the import spelling.
    """

    def __init__(
        self, tree: ast.Module, *, module: str = "", is_package: bool = False
    ) -> None:
        self.modules: dict[str, str] = {}
        self.symbols: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname is None and "." in alias.name:
                        # `import numpy.random` binds `numpy`, but the full
                        # dotted path is reachable through that root.
                        self.modules.setdefault(alias.name.split(".")[0], alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    base = node.module
                else:
                    base = self._relative_base(node, module, is_package)
                if not base:
                    continue  # relative import with no module context
                for alias in node.names:
                    self.symbols[alias.asname or alias.name] = f"{base}.{alias.name}"

    @staticmethod
    def _relative_base(
        node: ast.ImportFrom, module: str, is_package: bool
    ) -> str | None:
        """The absolute package a relative import anchors to, or None.

        ``from .sibling import x`` in ``repro.pkg.mod`` anchors to
        ``repro.pkg.sibling``; each extra dot ascends one package.
        Without a *module* the anchor is unknowable and the import is
        skipped rather than guessed.
        """
        if not module:
            return None
        parts = module.split(".")
        if not is_package:
            parts = parts[:-1]  # a plain module's dot starts at its package
        ascend = node.level - 1
        if ascend > len(parts):
            return None  # beyond the top-level package: a syntax-time error
        if ascend:
            parts = parts[:-ascend]
        if node.module:
            parts = [*parts, *node.module.split(".")]
        return ".".join(parts)

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name for a Name/Attribute chain, or ``None``.

        ``np.random.normal`` resolves to ``numpy.random.normal`` when
        ``np`` is an alias of ``numpy``; a bare ``default_rng`` imported
        from ``numpy.random`` resolves to ``numpy.random.default_rng``.
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = cur.id
        parts.reverse()
        if root in self.symbols:
            return ".".join([self.symbols[root], *parts])
        base = self.modules.get(root)
        if base is not None:
            return ".".join([base, *parts])
        # Unknown roots resolve to None: a local variable that happens to
        # be called `random` must not trip the import-based rules.
        return None


@dataclass
class FileContext:
    """Everything a rule needs to know about one file."""

    path: str
    tree: ast.Module
    role: str  # "library" | "benchmark" | "example" | "test" | "script"
    module: str  # dotted module for library files ("" otherwise)
    imports: ImportMap
    suppressions: Suppressions

    @property
    def is_test(self) -> bool:
        return self.role == "test"

    @property
    def is_library(self) -> bool:
        return self.role == "library"


@dataclass
class LintReport:
    """The outcome of linting a set of paths."""

    violations: list[Violation] = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0
    n_baselined: int = 0
    analyses: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _classify(path: Path) -> tuple[str, str]:
    """Return ``(role, dotted_module)`` for *path*."""
    parts = path.parts
    name = path.name
    if "tests" in parts or name == "conftest.py" or name.startswith("test_"):
        # benchmarks/ are pytest files too, but they exercise first-party
        # invariants and stay in scope; only benchmarks/conftest.py is
        # test infrastructure.
        if "benchmarks" in parts and name != "conftest.py":
            return "benchmark", ""
        return "test", ""
    if "benchmarks" in parts:
        return "benchmark", ""
    if "examples" in parts:
        return "example", ""
    if "repro" in parts:
        module = ".".join(parts[parts.index("repro") :])
        return "library", module.removesuffix(".py").removesuffix(".__init__")
    return "script", ""


#: Simple (non-compound) statements: a trailing pragma on any of their
#: lines covers the whole statement extent.  Compound statements (for,
#: with, def, ...) are deliberately excluded — a pragma on a ``for``
#: header must not blanket the loop body.
_SIMPLE_STMTS = (
    ast.Assign,
    ast.AnnAssign,
    ast.AugAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
)


def _parse_suppressions(source: str, tree: ast.Module | None = None) -> Suppressions:
    file_rules: set[str] = set()
    line_rules: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            r.strip().upper() for r in match.group(1).split(",") if r.strip()
        )
        before = line[: match.start()].strip()
        if not before:
            file_rules |= rules
        else:
            line_rules[lineno] = line_rules.get(lineno, frozenset()) | rules
    if tree is not None and line_rules:
        # A pragma trailing any line of a multi-line simple statement must
        # suppress violations reported on its continuation lines too — the
        # rule may anchor the violation on the call's first line while the
        # pragma sits on the closing paren (or vice versa).
        for node in ast.walk(tree):
            if not isinstance(node, _SIMPLE_STMTS):
                continue
            end = node.end_lineno or node.lineno
            if end == node.lineno:
                continue
            span = range(node.lineno, end + 1)
            spanned: frozenset[str] = frozenset()
            for covered in span:
                spanned |= line_rules.get(covered, frozenset())
            if spanned:
                for covered in span:
                    line_rules[covered] = line_rules.get(covered, frozenset()) | spanned
    return Suppressions(frozenset(file_rules), line_rules)


def check_source(
    source: str,
    path: str = "<string>",
    *,
    role: str | None = None,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint one source string; the unit the tests drive directly.

    *role* overrides path-based classification (fixture files live under
    ``tests/`` but must lint as the role they mimic).  *select* restricts
    to the given rule IDs.
    """
    from repro.lint.rules import RULES

    tree = ast.parse(source, filename=path)
    inferred_role, module = _classify(Path(path))
    ctx = FileContext(
        path=path,
        tree=tree,
        role=role if role is not None else inferred_role,
        module=module,
        imports=ImportMap(
            tree, module=module, is_package=Path(path).name == "__init__.py"
        ),
        suppressions=_parse_suppressions(source, tree),
    )
    wanted = set(select) if select is not None else None
    raw: list[Violation] = []
    for rule in RULES:
        if wanted is not None and rule.id not in wanted:
            continue
        raw.extend(rule.check(ctx))
    kept = [v for v in raw if not ctx.suppressions.active(v.rule_id, v.line)]
    return sorted(kept, key=lambda v: (v.line, v.col, v.rule_id))


def check_file(
    path: Path, *, select: Sequence[str] | None = None, role: str | None = None
) -> list[Violation]:
    """Lint one file from disk."""
    return check_source(
        path.read_text(encoding="utf-8"), str(path), role=role, select=select
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield the ``.py`` files under *paths*, deduplicated and in a
    deterministic order (sorted by path string), skipping junk directories.

    ``rglob`` order is filesystem-dependent; sorting the full collected
    set keeps ``--format github`` annotations and the JSON report stable
    across machines and across overlapping path arguments.
    """
    collected: set[Path] = set()
    for root in paths:
        if root.is_file():
            if root.suffix == ".py":
                collected.add(root)
            continue
        for candidate in root.rglob("*.py"):
            if not _SKIP_DIRS.intersection(candidate.parts):
                collected.add(candidate)
    yield from sorted(collected, key=str)


def _check_one(path_str: str, select: Sequence[str] | None) -> list[Violation]:
    """Module-level per-file worker: picklable for ``jobs > 1``."""
    return check_file(Path(path_str), select=select)


def check_paths(
    paths: Sequence[Path],
    *,
    select: Sequence[str] | None = None,
    analysis: Sequence[str] = (),
    jobs: int = 1,
) -> LintReport:
    """Lint every python file under *paths* and aggregate a report.

    *analysis* names project-wide dataflow families (``taint`` /
    ``locks`` / ``commit``) to run on top of the per-file rules; they
    see the whole file set at once (see :mod:`repro.lint.dataflow`).
    *jobs* > 1 parses and lints files in parallel processes — the
    per-file rules are independent, so the split is embarrassingly
    parallel; the dataflow pass always runs in-process because it needs
    the shared project index.
    """
    report = LintReport(analyses=tuple(analysis))
    files = list(iter_python_files(paths))
    report.n_files = len(files)
    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor

        select_list = list(select) if select is not None else None
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for batch in pool.map(
                _check_one,
                [str(p) for p in files],
                [select_list] * len(files),
                chunksize=8,
            ):
                report.violations.extend(batch)
    else:
        for file_path in files:
            report.violations.extend(check_file(file_path, select=select))
    if analysis:
        from repro.lint.dataflow import run_analyses

        report.violations.extend(
            run_analyses(files, analysis, select=select)
        )
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return report


def _fingerprint(v: Violation) -> str:
    """Baseline identity for a violation: location-line free on purpose.

    Keyed on (path, rule, message) — not the line number — so an
    unrelated edit above a baselined violation does not un-baseline it.
    Duplicate fingerprints are counted: a *new* instance of an already-
    baselined pattern in the same file still fails the gate.
    """
    return f"{v.path}::{v.rule_id}::{v.message}"


def load_baseline(path: Path) -> dict[str, int]:
    """Read a baseline file written by :func:`write_baseline`."""
    data = json.loads(path.read_text(encoding="utf-8"))
    counts = data.get("violations", {})
    return {str(k): int(c) for k, c in counts.items()}


def write_baseline(report: LintReport, path: Path) -> None:
    """Record *report*'s violations as the accepted baseline."""
    counts: dict[str, int] = {}
    for v in report.violations:
        key = _fingerprint(v)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "format": 1,
        "violations": dict(sorted(counts.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(report: LintReport, baseline: dict[str, int]) -> LintReport:
    """Drop violations covered by *baseline*; keep only new ones.

    Each baseline entry absorbs up to its recorded count of matching
    violations — the (count + 1)-th instance is new and survives.
    """
    budget = dict(baseline)
    kept: list[Violation] = []
    n_baselined = report.n_baselined
    for v in report.violations:
        key = _fingerprint(v)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            n_baselined += 1
        else:
            kept.append(v)
    return LintReport(
        violations=kept,
        n_files=report.n_files,
        n_suppressed=report.n_suppressed,
        n_baselined=n_baselined,
        analyses=report.analyses,
    )


def _format_github(violations: Sequence[Violation]) -> str:
    # GitHub Actions workflow commands: one ::error annotation per finding
    # so violations land inline on PR diffs.
    lines = []
    for v in violations:
        message = v.message.replace("%", "%25").replace("\n", "%0A")
        lines.append(
            f"::error file={v.path},line={v.line},col={v.col},title={v.rule_id}::{message}"
        )
    return "\n".join(lines)


def format_report(report: LintReport, fmt: str = "text") -> str:
    """Render *report* as ``text``, ``json``, or ``github`` annotations."""
    if fmt == "json":
        return json.dumps(
            {
                "ok": report.ok,
                "n_files": report.n_files,
                "n_baselined": report.n_baselined,
                "analyses": list(report.analyses),
                "violations": [
                    {
                        "path": v.path,
                        "line": v.line,
                        "col": v.col,
                        "rule": v.rule_id,
                        "message": v.message,
                    }
                    for v in report.violations
                ],
            },
            indent=2,
        )
    if fmt == "github":
        return _format_github(report.violations)
    if fmt == "text":
        lines = [v.render() for v in report.violations]
        summary = (
            f"{len(report.violations)} violation(s) in {report.n_files} file(s)"
            if report.violations
            else f"{report.n_files} file(s) clean"
        )
        if report.n_baselined:
            summary += f" ({report.n_baselined} baselined)"
        return "\n".join([*lines, summary])
    raise ValueError(f"unknown lint output format: {fmt!r}")
