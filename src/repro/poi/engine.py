"""The unified Freq query engine.

Every frequency evaluation in the repo — scalar :meth:`POIDatabase.freq`,
batched :meth:`POIDatabase.freq_batch`, the lazy anchor-matrix fills, and
the serve dispatcher's micro-batches — routes through one
:class:`FreqEngine`, which picks an execution *tier* per call:

``banded``
    The PR-2 path: gather every candidate in the scan box and run the
    hypot-exact distance filter over the whole pool.  Optimal when the
    disk covers only a few grid cells.

``pyramid``
    The large-radius path: classify scan-box cells with
    :meth:`GridIndex.disk_column_plan`, answer fully-inside cells with
    O(1) rectangle sums over the radius-independent cell prefix sums, and
    run the exact filter only over the thin boundary band.  The filtered
    pool shrinks from O((r/cell)^2) to O(r/cell) cells, which is where the
    old engine's speedup collapsed.

Both tiers produce histograms bit-identical to the scalar reference —
the pyramid's cell classification is conservative (see
``grid_index._CELL_MARGIN``), and the band filter makes exactly the same
keep decisions as ``_disk_keep`` whichever kernel
(:mod:`repro.poi.kernels`) executes it.

Every engine call emits a :class:`QueryPlan` describing what actually ran
(tier, kernel, pool sizes); experiment runners collect them with
:func:`collecting_query_plans` and fold a summary into result provenance.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.errors import DatasetError
from repro.poi import kernels

if TYPE_CHECKING:
    from repro.poi.database import POIDatabase

__all__ = [
    "ENGINE_MODES",
    "FreqEngine",
    "QueryPlan",
    "collecting_query_plans",
    "record_query_plan",
    "summarize_query_plans",
]

#: Valid engine selectors, in documentation order.
ENGINE_MODES = ("auto", "banded", "pyramid")


@dataclass(frozen=True)
class QueryPlan:
    """What one engine call actually executed.

    ``engine`` is the caller's selector (``auto``/``banded``/``pyramid``),
    ``tier`` the path that ran, ``kernel`` the band-filter implementation
    (``numpy`` or ``numba``).  The pool statistics quantify the pyramid
    win: ``n_interior_cells`` were answered by prefix-sum rectangle sums,
    and only ``n_band_candidates`` pool entries paid the exact filter.
    """

    op: str
    engine: str
    tier: str
    kernel: str
    radius: float
    n_queries: int
    n_pairs: int
    n_interior_cells: int
    n_band_candidates: int

    def to_provenance(self) -> dict[str, Any]:
        """JSON-ready form (what lands in experiment provenance)."""
        return asdict(self)


# --- provenance collection -------------------------------------------------
#
# The engine calls record_query_plan() on every completed evaluation; the
# experiment runner wraps each run in collecting_query_plans() and folds a
# summary into ExperimentResult.provenance["freq_engine"].  When no
# collector is active, plans are dropped — ad-hoc library use pays nothing.

_COLLECTOR_STACK: list[list[QueryPlan]] = []


def record_query_plan(plan: QueryPlan) -> None:
    """Hand a completed plan to the innermost active collector (if any)."""
    if _COLLECTOR_STACK:
        _COLLECTOR_STACK[-1].append(plan)


@contextmanager
def collecting_query_plans() -> Iterator[list[QueryPlan]]:
    """Collect every query plan recorded inside the ``with`` body."""
    collected: list[QueryPlan] = []
    _COLLECTOR_STACK.append(collected)
    try:
        yield collected
    finally:
        _COLLECTOR_STACK.pop()


def summarize_query_plans(plans: list[QueryPlan]) -> dict[str, Any]:
    """Aggregate collected plans into a compact provenance record.

    Experiments issue thousands of engine calls; provenance keeps per
    ``(op, tier, kernel)`` totals rather than the raw plan stream.
    """
    groups: dict[tuple[str, str, str], dict[str, int]] = {}
    engines = sorted({p.engine for p in plans})
    for p in plans:
        g = groups.setdefault(
            (p.op, p.tier, p.kernel),
            {"calls": 0, "n_queries": 0, "n_interior_cells": 0, "n_band_candidates": 0},
        )
        g["calls"] += 1
        g["n_queries"] += p.n_queries
        g["n_interior_cells"] += p.n_interior_cells
        g["n_band_candidates"] += p.n_band_candidates
    return {
        "engines": engines,
        "calls": [
            {"op": op, "tier": tier, "kernel": kernel, **stats}
            for (op, tier, kernel), stats in sorted(groups.items())
        ],
    }


class FreqEngine:
    """Radius-tiered executor for batched Freq evaluations.

    Parameters
    ----------
    database:
        The owning :class:`~repro.poi.database.POIDatabase`; the engine
        reads its grid index, type arrays, and cell prefix sums.
    mode:
        ``"auto"`` picks the tier per call from the radius;
        ``"banded"``/``"pyramid"`` force one path (the pyramid stays exact
        at any radius — forcing is a debugging/benchmarking tool, not a
        correctness risk).
    pyramid_threshold_cells:
        With ``mode="auto"``, use the pyramid once the radius spans at
        least this many grid cells.  The default was tuned on the batch
        engine bench: below it the plan overhead outweighs the trimmed
        pool.
    """

    #: Auto tier boundary, in units of grid cells covered by the radius.
    #: Measured on the batch-engine bench (beijing, 500 m cells): banded
    #: wins up to ~2.5 km, the pyramid from ~3 km up.
    PYRAMID_THRESHOLD_CELLS = 6.0

    def __init__(
        self,
        database: POIDatabase,
        mode: str = "auto",
        pyramid_threshold_cells: float | None = None,
    ) -> None:
        self._db = database
        self.mode = mode  # validated by the property setter
        self._threshold = (
            self.PYRAMID_THRESHOLD_CELLS
            if pyramid_threshold_cells is None
            else float(pyramid_threshold_cells)
        )
    @property
    def mode(self) -> str:
        """The configured selector: ``auto``, ``banded`` or ``pyramid``."""
        return self._mode

    @mode.setter
    def mode(self, value: str) -> None:
        if value not in ENGINE_MODES:
            raise DatasetError(
                f"engine must be one of {ENGINE_MODES}, got {value!r}"
            )
        self._mode = value

    @property
    def pyramid_threshold_cells(self) -> float:
        return self._threshold

    def select_tier(self, radius: float) -> str:
        """The tier ``mode`` resolves to for one call at *radius*."""
        if self._mode != "auto":
            return self._mode
        cell = self._db.grid.cell_size
        return "pyramid" if radius >= self._threshold * cell else "banded"

    def kernel_name(self) -> str:
        """The band-filter kernel the next call will use."""
        return kernels.active_kernel()

    # -- execution ----------------------------------------------------

    def freq_batch(
        self, coords: np.ndarray, radius: float, op: str = "freq_batch"
    ) -> np.ndarray:
        """``Freq`` for many centers: ``(n, M)`` int64, scalar-identical."""
        if radius < 0:
            raise DatasetError(f"radius must be non-negative, got {radius}")
        db = self._db
        n, m = len(coords), db.n_types
        tier = self.select_tier(radius)
        kernel = kernels.active_kernel()
        out = np.zeros((n, m), dtype=np.int64)
        stats = {"n_pairs": 0, "n_interior_cells": 0, "n_band_candidates": 0}
        if n and len(db):
            for start, stop in self._chunks(n, radius, tier, m):
                block = np.ascontiguousarray(coords[start:stop])
                if tier == "pyramid":
                    self._pyramid_block(block, radius, out[start:stop], stats)
                else:
                    self._banded_block(block, radius, out[start:stop], stats)
        record_query_plan(
            QueryPlan(
                op=op,
                engine=self._mode,
                tier=tier,
                kernel=kernel,
                radius=float(radius),
                n_queries=n,
                n_pairs=stats["n_pairs"],
                n_interior_cells=stats["n_interior_cells"],
                n_band_candidates=stats["n_band_candidates"],
            )
        )
        return out

    def freq(self, x: float, y: float, radius: float) -> np.ndarray:
        """Scalar ``Freq`` as a 1-query batch: ``(M,)`` int64."""
        return self.freq_batch(np.array([[x, y]], dtype=float), radius, op="freq")[0]

    # -- internals ----------------------------------------------------

    def _chunks(
        self, n: int, radius: float, tier: str, m: int
    ) -> Iterator[tuple[int, int]]:
        """Query chunking that bounds every intermediate's memory.

        The banded tier's cost is the gathered candidate pool (~4M entries
        per chunk, as before); the pyramid adds per-pair prefix gathers of
        width ``m``, so its chunks also cap ``pairs * m`` elements.
        """
        grid = self._db.grid
        cell = grid.cell_size
        area = max(grid.bounds.width * grid.bounds.height, 1.0)
        density = len(self._db) / area
        side = 2 * radius + 2 * cell
        if tier == "banded":
            est = max(1.0, density * side * side)
            chunk = int(min(n, max(64, 4_000_000 / est)))
        else:
            # Band candidates live in a strip ~2 cells thick around the
            # circle; interior pairs cost m-wide prefix gathers each.
            est_band = max(1.0, density * 4.0 * side * 2.0 * cell)
            est_pair_elems = max(1.0, (2 * radius / cell + 2.0) * m)
            chunk = int(
                min(
                    n,
                    max(64, min(4_000_000 / est_band, 24_000_000 / est_pair_elems)),
                )
            )
        for start in range(0, n, chunk):
            yield start, min(n, start + chunk)

    def _banded_block(
        self,
        block: np.ndarray,
        radius: float,
        out: np.ndarray,
        stats: dict[str, int],
    ) -> None:
        """Filter the full scan box — the small-radius tier."""
        grid = self._db.grid
        cx0, cx1, cy0, cy1 = grid.cell_ranges(block, radius)
        spans = np.where((cx1 >= cx0) & (cy1 >= cy0), cx1 - cx0 + 1, 0)
        n_pairs = int(spans.sum())
        stats["n_pairs"] += n_pairs
        if n_pairs == 0:
            return
        pair_starts = np.concatenate([[0], np.cumsum(spans)[:-1]])
        qidx = np.repeat(np.arange(len(block), dtype=np.intp), spans)
        rel_col = np.arange(n_pairs, dtype=np.intp) - np.repeat(pair_starts, spans)
        cx = cx0[qidx] + rel_col
        self._filter_runs(block, radius, qidx, cx, cy0[qidx], cy1[qidx], out, stats)

    def _pyramid_block(
        self,
        block: np.ndarray,
        radius: float,
        out: np.ndarray,
        stats: dict[str, int],
    ) -> None:
        """Prefix-sum rectangle + counted stubs + exactly-filtered band.

        Each query's interior (cells fully inside the disk) is answered in
        two parts: one rectangle sum over the 2-D cell prefix sums — four
        ``M``-wide gathers *per query*, independent of the radius — and the
        staircase stubs the rectangle misses, whose members need no
        distance check and are simply counted.  Only the boundary band pays
        the exact filter.  The rectangle is derived from the plan's own
        interior runs (tightest run over the inscribed-square columns), so
        it is inside every column's interior by construction — no float
        re-derivation can break the partition.
        """
        grid = self._db.grid
        nq = len(block)
        plan = grid.disk_column_plan(block, radius)
        stats["n_pairs"] += len(plan.qidx)
        has_int = plan.ilo <= plan.ihi
        int_q = plan.qidx[has_int]
        int_cx = plan.cx[has_int]
        int_lo = plan.ilo[has_int]
        int_hi = plan.ihi[has_int]
        stats["n_interior_cells"] += int((int_hi - int_lo + 1).sum())

        # Candidate rectangle columns: the inscribed square's x-range.  The
        # exact bounds only matter for speed; correctness comes from the
        # containment guard below.
        half = (radius * (1.0 - 1e-12) - 1e-9) / np.sqrt(2.0)
        min_x = grid.bounds.min_x
        cell = grid.cell_size
        bx0 = np.ceil((block[:, 0] - half - min_x) / cell).astype(np.intp)
        bx1 = np.floor((block[:, 0] + half - min_x) / cell).astype(np.intp) - 1
        np.maximum(bx0, 0, out=bx0)
        np.minimum(bx1, grid.grid_shape[0] - 1, out=bx1)
        width = bx1 - bx0 + 1

        # Per-query rectangle y-range: the tightest interior run over the
        # candidate columns, valid only when every candidate column has an
        # interior run (no holes) — then [bx0, bx1] x [by0, by1] is covered
        # by the interior and can be answered by one prefix rectangle.
        rect_lo = np.zeros(nq, dtype=np.intp)
        rect_hi = np.full(nq, -1, dtype=np.intp)
        has_rect = np.zeros(nq, dtype=bool)
        inbox = (int_cx >= bx0[int_q]) & (int_cx <= bx1[int_q])
        ib_q = int_q[inbox]
        if len(ib_q):
            starts = np.concatenate([[0], np.flatnonzero(ib_q[1:] != ib_q[:-1]) + 1])
            uq = ib_q[starts]
            counts = np.diff(np.concatenate([starts, [len(ib_q)]]))
            by0 = np.maximum.reduceat(int_lo[inbox], starts)
            by1 = np.minimum.reduceat(int_hi[inbox], starts)
            ok = (counts == width[uq]) & (by0 <= by1)
            sel = uq[ok]
            if len(sel):
                pref = self._db.cell_prefix_sums()
                c0 = by0[ok]
                c1 = by1[ok] + 1
                a0 = bx0[sel]
                a1 = bx1[sel] + 1
                # Counts fit int32; only the accumulate into `out` widens.
                rect = pref[a1, c1] - pref[a0, c1]
                rect -= pref[a1, c0]
                rect += pref[a0, c0]
                out[sel] += rect
                rect_lo[sel] = c0
                rect_hi[sel] = by1[ok]
                has_rect[sel] = True

        # Interior stubs: whatever each column's interior run has outside
        # the rectangle.  Members are certainly inside the disk — count
        # them without filtering.
        in_rect_col = has_rect[int_q] & inbox
        s1a = int_lo
        s1b = np.where(in_rect_col, np.minimum(rect_lo[int_q] - 1, int_hi), int_hi)
        s2a = np.where(in_rect_col, np.maximum(rect_hi[int_q] + 1, int_lo), int_hi + 1)
        s2b = int_hi
        m1 = s1a <= s1b
        m2 = s2a <= s2b
        stub_q = np.concatenate([int_q[m1], int_q[m2]])
        stub_cx = np.concatenate([int_cx[m1], int_cx[m2]])
        stub_a = np.concatenate([s1a[m1], s2a[m2]])
        stub_b = np.concatenate([s1b[m1], s2b[m2]])
        expanded = self._expand_runs(stub_q, stub_cx, stub_a, stub_b)
        if expanded is not None:
            pos, owners = expanded
            out += kernels.run_histogram(
                pos, owners, self._db.types_bucket_order, nq, out.shape[1]
            )

        # Boundary band: the runs below and above the interior stretch.
        b1hi = np.minimum(plan.ilo - 1, plan.ohi)
        b2lo = np.maximum(plan.ihi + 1, plan.olo)
        m1 = plan.olo <= b1hi
        m2 = b2lo <= plan.ohi
        run_q = np.concatenate([plan.qidx[m1], plan.qidx[m2]])
        run_cx = np.concatenate([plan.cx[m1], plan.cx[m2]])
        run_a = np.concatenate([plan.olo[m1], b2lo[m2]])
        run_b = np.concatenate([b1hi[m1], plan.ohi[m2]])
        self._filter_runs(block, radius, run_q, run_cx, run_a, run_b, out, stats)

    def _expand_runs(
        self,
        run_q: np.ndarray,
        run_cx: np.ndarray,
        run_a: np.ndarray,
        run_b: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Expand cell runs ``(cx, [a, b])`` into pool positions + owners.

        Returns ``None`` when the runs hold no points.  Positions index the
        grid's bucket-ordered arrays; owners name each entry's query, in
        run order (the consumers are order-insensitive histograms).
        """
        if len(run_q) == 0:
            return None
        grid = self._db.grid
        ny = grid.grid_shape[1]
        start = grid.bucket_start
        lo = start[run_cx * ny + run_a]
        hi = start[run_cx * ny + run_b + 1]
        lengths = hi - lo
        total = int(lengths.sum())
        if total == 0:
            return None
        pool_dtype = np.int32 if grid.n_points < np.iinfo(np.int32).max else np.intp
        out_start = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        pos = np.arange(total, dtype=pool_dtype)
        pos += np.repeat((lo - out_start).astype(pool_dtype), lengths)
        owners = np.repeat(run_q, lengths)
        return pos, owners

    def _filter_runs(
        self,
        block: np.ndarray,
        radius: float,
        run_q: np.ndarray,
        run_cx: np.ndarray,
        run_a: np.ndarray,
        run_b: np.ndarray,
        out: np.ndarray,
        stats: dict[str, int],
    ) -> None:
        """Expand cell runs into the pool and histogram the kept entries."""
        expanded = self._expand_runs(run_q, run_cx, run_a, run_b)
        if expanded is None:
            return
        pos, owners = expanded
        stats["n_band_candidates"] += len(pos)
        grid = self._db.grid
        out += kernels.band_histogram(
            pos,
            owners,
            grid.bucket_xord,
            grid.bucket_yord,
            self._db.types_bucket_order,
            np.ascontiguousarray(block[:, 0]),
            np.ascontiguousarray(block[:, 1]),
            radius,
            len(block),
            out.shape[1],
        )
