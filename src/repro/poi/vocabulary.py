"""POI type vocabulary.

OSM tags POIs with category strings ("restaurant", "pharmacy", ...).  The
algorithms only ever use the *index* of a type in a fixed vocabulary, so the
vocabulary maps names to dense integer ids and back.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.errors import DatasetError

__all__ = ["TypeVocabulary"]


class TypeVocabulary:
    """An ordered, immutable set of POI type names with dense integer ids."""

    def __init__(self, names: Sequence[str]) -> None:
        names = list(names)
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise DatasetError(f"duplicate type names: {dupes}")
        if not names:
            raise DatasetError("a vocabulary needs at least one type")
        self._names: tuple[str, ...] = tuple(names)
        self._ids: dict[str, int] = {name: i for i, name in enumerate(names)}

    @classmethod
    def synthetic(cls, n_types: int, prefix: str = "type") -> "TypeVocabulary":
        """Build a vocabulary of *n_types* generated names (``type_000``...)."""
        if n_types <= 0:
            raise DatasetError(f"n_types must be positive, got {n_types}")
        width = len(str(n_types - 1))
        return cls([f"{prefix}_{i:0{width}d}" for i in range(n_types)])

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterable[str]:
        return iter(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def name_of(self, type_id: int) -> str:
        """Name of a type id; raises :class:`DatasetError` if out of range."""
        if not 0 <= type_id < len(self._names):
            raise DatasetError(f"type id {type_id} out of range [0, {len(self._names)})")
        return self._names[type_id]

    def id_of(self, name: str) -> int:
        """Id of a type name; raises :class:`DatasetError` if unknown."""
        try:
            return self._ids[name]
        except KeyError:
            raise DatasetError(f"unknown type name: {name!r}") from None

    @property
    def names(self) -> tuple[str, ...]:
        return self._names
