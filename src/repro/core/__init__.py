"""Core primitives shared by every subsystem: errors, RNG discipline, clocks."""

from repro.core.clock import Clock, SimulatedClock, SystemClock
from repro.core.errors import (
    AttackError,
    CircuitOpenError,
    ConfigError,
    DatasetError,
    DefenseError,
    GeometryError,
    NotFittedError,
    OptimizationError,
    PrivacyError,
    ReleaseValidationError,
    ReproError,
    TimeoutExceeded,
    TransientError,
)
from repro.core.fates import (
    FateAccountingError,
    fates_accounted,
    require_fates_accounted,
)
from repro.core.rng import as_generator, derive_rng, spawn_rngs

__all__ = [
    "ReproError",
    "ConfigError",
    "GeometryError",
    "DatasetError",
    "AttackError",
    "DefenseError",
    "PrivacyError",
    "NotFittedError",
    "OptimizationError",
    "TransientError",
    "TimeoutExceeded",
    "CircuitOpenError",
    "ReleaseValidationError",
    "Clock",
    "SimulatedClock",
    "SystemClock",
    "as_generator",
    "derive_rng",
    "spawn_rngs",
    "FateAccountingError",
    "fates_accounted",
    "require_fates_accounted",
]
