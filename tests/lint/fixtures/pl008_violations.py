"""PL008 fixture: unbounded blocking calls in serve-path code.

Linted as ``src/repro/serve/fixture.py``; every bare blocking call
below must be flagged.
"""

import queue
import threading


def worker_loop(jobs: "queue.Queue[object]") -> None:
    job = jobs.get()  # PL008: blocks forever on an idle queue
    del job


def wait_for_stop(stop: threading.Event) -> None:
    stop.wait()  # PL008: shutdown can never time this out


def reap(thread: threading.Thread) -> None:
    thread.join()  # PL008: a hung worker hangs the reaper too


def drain(jobs: "queue.Queue[object]", stop: threading.Event) -> None:
    while not stop.is_set():
        jobs.get()  # PL008: the loop's stop check never runs again
