"""Tests for the budget-enforcing defense wrapper."""

import numpy as np
import pytest

from repro.core.errors import DefenseError
from repro.core.rng import derive_rng
from repro.defense.budget import BudgetedDefense
from repro.defense.cloaking import UserPopulation
from repro.defense.dp_release import DPReleaseMechanism
from repro.defense.sanitization import Sanitizer
from repro.dp.mechanisms import PrivacyParams


@pytest.fixture(scope="module")
def mechanism(request):
    from repro.poi.cities import small_city

    city = small_city(seed=7)
    population = UserPopulation.uniform(500, city.database.bounds, derive_rng(1, "bp"))
    return city, DPReleaseMechanism(population, k=5, epsilon=0.5, delta=0.2, beta=0.01)


class TestBudgetedDefense:
    def test_requires_cost_attributes(self, db):
        with pytest.raises(DefenseError, match="epsilon"):
            BudgetedDefense(Sanitizer(db, 10), PrivacyParams(1.0, 0.5))

    def test_releases_until_budget_exhausted(self, mechanism, db):
        city, inner = mechanism
        # Budget of (1.0, 0.4) affords exactly two (0.5, 0.2) releases.
        defense = BudgetedDefense(inner, PrivacyParams(1.0, 0.4))
        rng = derive_rng(2, "bud")
        target = city.interior(700.0).sample_point(rng)
        assert defense.releases_remaining == 2
        first = defense.release(db, target, 700.0, rng)
        second = defense.release(db, target, 700.0, rng)
        third = defense.release(db, target, 700.0, rng)
        assert first.sum() > 0 or second.sum() > 0  # real releases
        assert (third == 0).all()  # suppressed
        assert defense.n_released == 2
        assert defense.n_suppressed == 1

    def test_remaining_epsilon_decreases(self, mechanism, db):
        city, inner = mechanism
        defense = BudgetedDefense(inner, PrivacyParams(2.0, 1e-9 + 0.4))
        rng = derive_rng(3, "bud")
        target = city.interior(700.0).sample_point(rng)
        before = defense.remaining_epsilon
        defense.release(db, target, 700.0, rng)
        assert defense.remaining_epsilon == pytest.approx(before - 0.5)

    def test_fallback_is_used_after_exhaustion(self, mechanism, db):
        city, inner = mechanism
        defense = BudgetedDefense(
            inner, PrivacyParams(0.5, 0.2), fallback=Sanitizer(db, threshold=10**9)
        )
        rng = derive_rng(4, "bud")
        target = city.interior(700.0).sample_point(rng)
        defense.release(db, target, 700.0, rng)  # spends everything
        out = defense.release(db, target, 700.0, rng)
        # The all-sanitizing fallback also yields zeros, but through the
        # fallback path rather than suppression-by-default.
        assert (out == 0).all()
        assert defense.n_suppressed == 1

    def test_name_mentions_budget(self, mechanism):
        _, inner = mechanism
        defense = BudgetedDefense(inner, PrivacyParams(3.0, 0.9))
        assert "eps<=3.0" in defense.name


class TestStateRoundTrip:
    def test_round_trip_is_json_serializable_and_faithful(self, mechanism, db):
        import json

        city, inner = mechanism
        defense = BudgetedDefense(inner, PrivacyParams(1.5, 0.6))
        rng = derive_rng(5, "bud")
        target = city.interior(700.0).sample_point(rng)
        defense.release(db, target, 700.0, rng)
        defense.release(db, target, 700.0, rng)

        state = json.loads(json.dumps(defense.to_state()))
        restored = BudgetedDefense.from_state(inner, state)
        assert restored.name == defense.name
        assert restored.remaining_epsilon == pytest.approx(defense.remaining_epsilon)
        assert restored.releases_remaining == defense.releases_remaining
        assert restored.n_released == 2
        assert restored.n_suppressed == 0

    def test_restored_wrapper_resumes_exactly_where_it_stopped(self, mechanism, db):
        city, inner = mechanism
        # Budget affords exactly two (0.5, 0.2) releases; snapshot after one.
        defense = BudgetedDefense(inner, PrivacyParams(1.0, 0.4))
        rng = derive_rng(6, "bud")
        target = city.interior(700.0).sample_point(rng)
        defense.release(db, target, 700.0, rng)

        restored = BudgetedDefense.from_state(inner, defense.to_state())
        assert restored.releases_remaining == 1
        restored.release(db, target, 700.0, rng)  # the last affordable one
        third = restored.release(db, target, 700.0, rng)
        assert (third == 0).all()  # suppressed, same as an uninterrupted run
        assert restored.n_released == 2
        assert restored.n_suppressed == 1

    def test_exhausted_stays_exhausted_across_restore(self, mechanism, db):
        city, inner = mechanism
        defense = BudgetedDefense(inner, PrivacyParams(0.5, 0.2))
        rng = derive_rng(7, "bud")
        target = city.interior(700.0).sample_point(rng)
        defense.release(db, target, 700.0, rng)  # spends everything

        restored = BudgetedDefense.from_state(inner, defense.to_state())
        out = restored.release(db, target, 700.0, rng)
        assert (out == 0).all()
        assert restored.n_suppressed == 1
        assert restored.releases_remaining == 0

    def test_from_state_requires_a_budget(self, mechanism):
        _, inner = mechanism
        with pytest.raises(DefenseError, match="budget"):
            BudgetedDefense.from_state(inner, {"accountant": {"spends": []}})
