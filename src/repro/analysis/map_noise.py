"""Adversary map-quality sensitivity (extension beyond the paper).

The threat model hands the adversary a *perfect* copy of the GSP's map.
In reality the attacker's map (a public OSM snapshot) lags the provider's
(a commercial database): POIs are missing, moved, or newly added.  This
module degrades the adversary's copy in controlled ways and measures how
fast the region attack decays — quantifying how much the paper's attack
actually depends on the perfect-prior assumption.

Degradations:

* ``drop_fraction`` — a random fraction of POIs missing from the
  attacker's map (stale snapshot);
* ``move_sigma_m`` — Gaussian position error on every POI (bad geocoding).

Releases are still computed from the *true* map, so this isolates the
prior-knowledge error from any defense.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import Release
from repro.attacks.region import RegionAttack
from repro.core.errors import ConfigError
from repro.core.rng import RngLike, as_generator
from repro.geo.point import Point
from repro.poi.database import POIDatabase

__all__ = ["degrade_map", "MapNoiseResult", "attack_with_degraded_map"]


def degrade_map(
    database: POIDatabase,
    drop_fraction: float = 0.0,
    move_sigma_m: float = 0.0,
    rng: RngLike = None,
) -> POIDatabase:
    """Return a degraded copy of *database* (the attacker's stale map)."""
    if not 0.0 <= drop_fraction < 1.0:
        raise ConfigError(f"drop_fraction must be in [0, 1), got {drop_fraction}")
    if move_sigma_m < 0.0:
        raise ConfigError(f"move_sigma_m must be non-negative, got {move_sigma_m}")
    gen = as_generator(rng)
    keep = gen.uniform(size=len(database)) >= drop_fraction
    if not keep.any():
        raise ConfigError("degradation removed every POI")
    xy = database.positions[keep].copy()
    if move_sigma_m > 0:
        xy += gen.normal(0.0, move_sigma_m, size=xy.shape)
        bounds = database.bounds
        xy[:, 0] = np.clip(xy[:, 0], bounds.min_x, bounds.max_x)
        xy[:, 1] = np.clip(xy[:, 1], bounds.min_y, bounds.max_y)
    return POIDatabase(
        xy,
        database.type_ids[keep],
        database.vocabulary,
        bounds=database.bounds,
    )


@dataclass(frozen=True)
class MapNoiseResult:
    """Attack performance under one degradation setting."""

    drop_fraction: float
    move_sigma_m: float
    n_targets: int
    n_success: int
    n_correct: int

    @property
    def success_rate(self) -> float:
        return self.n_success / self.n_targets if self.n_targets else 0.0

    @property
    def correct_rate(self) -> float:
        return self.n_correct / self.n_targets if self.n_targets else 0.0


def attack_with_degraded_map(
    true_map: POIDatabase,
    targets: list[Point],
    radius: float,
    drop_fraction: float = 0.0,
    move_sigma_m: float = 0.0,
    rng: RngLike = None,
) -> MapNoiseResult:
    """Release from the true map, attack with a degraded copy.

    The attacker's candidate regions are judged against the *true* target
    location: a "success" that points at the wrong place counts in
    ``n_success`` but not ``n_correct``.
    """
    gen = as_generator(rng)
    attacker_map = degrade_map(
        true_map, drop_fraction=drop_fraction, move_sigma_m=move_sigma_m, rng=gen
    )
    attack = RegionAttack(attacker_map)
    n_success = n_correct = 0
    released_freqs = true_map.freq_batch(list(targets), radius)
    outcomes = attack.run_batch([Release(f, radius) for f in released_freqs])
    for target, outcome in zip(targets, outcomes):
        if outcome.success:
            n_success += 1
            if outcome.locates(target):
                n_correct += 1
    return MapNoiseResult(
        drop_fraction=drop_fraction,
        move_sigma_m=move_sigma_m,
        n_targets=len(targets),
        n_success=n_success,
        n_correct=n_correct,
    )
