"""Tests for the SVG figure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.results import ExperimentResult
from repro.experiments.svg import save_figure_svg, svg_line_chart

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestSvgLineChart:
    def test_is_valid_xml(self):
        svg = svg_line_chart({"a": [(0, 0), (1, 2)]}, title="demo")
        root = parse(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_contains_series_elements(self):
        svg = svg_line_chart({"a": [(0, 0), (1, 2)], "b": [(0, 2), (1, 0)]})
        root = parse(svg)
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 2
        circles = root.findall(f"{SVG_NS}circle")
        assert len(circles) == 4 + 2  # 4 markers + 2 legend dots

    def test_legend_and_labels(self):
        svg = svg_line_chart(
            {"curve": [(0, 1), (2, 3)]}, x_label="r (km)", y_label="rate", title="T"
        )
        texts = [t.text for t in parse(svg).findall(f"{SVG_NS}text")]
        assert "curve" in texts
        assert "r (km)" in texts and "rate" in texts and "T" in texts

    def test_empty_series_renders_placeholder(self):
        svg = svg_line_chart({})
        texts = [t.text for t in parse(svg).findall(f"{SVG_NS}text")]
        assert "no data" in texts

    def test_constant_series_does_not_crash(self):
        svg = svg_line_chart({"flat": [(0, 1.0), (1, 1.0)]})
        parse(svg)  # must be valid


class TestSaveFigureSvg:
    def test_writes_file_for_chartable_experiment(self, tmp_path):
        result = ExperimentResult("fig7", "Fig 7")
        result.add_row(dataset="bj_random", n_aux=5, mean_area_km2=2.0)
        result.add_row(dataset="bj_random", n_aux=20, mean_area_km2=0.5)
        path = save_figure_svg(result, tmp_path)
        assert path is not None and path.exists()
        parse(path.read_text())

    def test_returns_none_for_unchartable(self, tmp_path):
        result = ExperimentResult("datasets", "stats")
        result.add_row(dataset="x", n_items=1)
        assert save_figure_svg(result, tmp_path) is None

    @pytest.mark.parametrize(
        "exp_id, row",
        [
            ("fig2", {"city": "beijing", "r_km": 1.0, "mean_accuracy": 0.99}),
            ("fig5", {"dataset": "d", "r_km": 1.0, "k": 10, "correct_rate": 0.3}),
            ("fig11_12", {"dataset": "d", "beta": 0.01, "epsilon": 1.0, "success_rate": 0.2}),
        ],
    )
    def test_every_spec_renders(self, tmp_path, exp_id, row):
        result = ExperimentResult(exp_id, exp_id)
        result.add_row(**row)
        path = save_figure_svg(result, tmp_path)
        assert path is not None
        parse(path.read_text())
