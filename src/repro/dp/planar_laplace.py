"""The planar Laplace mechanism for geo-indistinguishability.

Andrés et al. (CCS'13): report location ``l'`` with density proportional to
``exp(-epsilon * dist(l, l'))``.  A mechanism drawing from this density is
``epsilon * R``-geo-indistinguishable for any two locations within distance
``R`` of each other (paper Eq. 4–5).

Sampling uses the standard polar decomposition: the angle is uniform and
the radius follows a Gamma(2, 1/epsilon) distribution (density
``epsilon^2 * rho * exp(-epsilon * rho)``), equivalently the sum of two
exponentials — no Lambert-W inversion needed.

The paper sets the *unit of distance to 100 meters*, so its ``epsilon =
0.1`` means ``0.1 per 100 m = 0.001 per meter``; :class:`PlanarLaplace`
takes the per-unit epsilon plus the unit length to keep that convention
explicit.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import PrivacyError
from repro.core.rng import RngLike, as_generator
from repro.geo.point import Point

__all__ = ["PlanarLaplace"]


class PlanarLaplace:
    """Planar Laplace location perturbation.

    Parameters
    ----------
    epsilon:
        Privacy parameter per *unit_m* of distance.
    unit_m:
        The distance unit in meters (the paper uses 100 m).
    """

    def __init__(self, epsilon: float, unit_m: float = 100.0) -> None:
        if epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        if unit_m <= 0:
            raise PrivacyError(f"unit_m must be positive, got {unit_m}")
        self.epsilon = epsilon
        self.unit_m = unit_m

    @property
    def epsilon_per_meter(self) -> float:
        """The effective privacy parameter in 1/meter units."""
        return self.epsilon / self.unit_m

    @property
    def expected_displacement_m(self) -> float:
        """Mean perturbation distance: ``2 / epsilon_per_meter``.

        The Gamma(2, 1/eps) radial distribution has mean ``2 / eps``.
        """
        return 2.0 / self.epsilon_per_meter

    def sample_radius(self, rng: RngLike = None) -> float:
        """Draw a perturbation distance in meters."""
        gen = as_generator(rng)
        return float(gen.gamma(2.0, 1.0 / self.epsilon_per_meter))

    def perturb(self, location: Point, rng: RngLike = None) -> Point:
        """Draw a perturbed location for *location*."""
        gen = as_generator(rng)
        rho = self.sample_radius(gen)
        theta = float(gen.uniform(0.0, 2.0 * np.pi))
        return Point(
            location.x + rho * np.cos(theta),
            location.y + rho * np.sin(theta),
        )
