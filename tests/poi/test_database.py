"""Tests for the POI database (the GSP query interfaces)."""

import numpy as np
import pytest

from repro.core.errors import DatasetError
from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.poi.database import POIDatabase
from repro.poi.models import POI
from repro.poi.vocabulary import TypeVocabulary


class TestConstruction:
    def test_shape_validation(self):
        vocab = TypeVocabulary(["a"])
        with pytest.raises(DatasetError):
            POIDatabase(np.zeros((2, 3)), np.zeros(2, dtype=int), vocab)
        with pytest.raises(DatasetError):
            POIDatabase(np.zeros((2, 2)), np.zeros(3, dtype=int), vocab)

    def test_type_range_validation(self):
        vocab = TypeVocabulary(["a", "b"])
        with pytest.raises(DatasetError):
            POIDatabase(np.zeros((1, 2)), np.array([5]), vocab)

    def test_empty_without_bounds_raises(self):
        vocab = TypeVocabulary(["a"])
        with pytest.raises(DatasetError):
            POIDatabase(np.empty((0, 2)), np.empty(0, dtype=int), vocab)

    def test_from_pois(self):
        vocab = TypeVocabulary(["a", "b"])
        pois = [POI(0, Point(1, 2), 0), POI(1, Point(3, 4), 1)]
        db = POIDatabase.from_pois(pois, vocab)
        assert len(db) == 2
        assert db.type_of(1) == 1


class TestQueries:
    def test_query_radius(self, tiny_db):
        # Around (500, 500): the three central POIs within 60 m.
        got = set(tiny_db.query(Point(500, 500), 60.0).tolist())
        assert got == {2, 3, 5}

    def test_freq_counts_types(self, tiny_db):
        freq = tiny_db.freq(Point(500, 500), 60.0)
        # POIs 2, 3 are type b(1); POI 5 is type a(0).
        np.testing.assert_array_equal(freq, [1, 2, 0])

    def test_freq_full_city(self, tiny_db):
        freq = tiny_db.freq(Point(500, 500), 10_000.0)
        np.testing.assert_array_equal(freq, tiny_db.city_frequency)

    def test_freq_empty_region(self, tiny_db):
        freq = tiny_db.freq(Point(0, 1000), 10.0)
        assert freq.sum() == 0
        assert freq.shape == (3,)

    def test_freq_at_poi_matches_freq(self, tiny_db):
        direct = tiny_db.freq(tiny_db.location_of(2), 100.0)
        cached = tiny_db.freq_at_poi(2, 100.0)
        np.testing.assert_array_equal(direct, cached)

    def test_freq_at_poi_cache_is_reused_and_readonly(self, tiny_db):
        a = tiny_db.freq_at_poi(0, 250.0)
        b = tiny_db.freq_at_poi(0, 250.0)
        np.testing.assert_array_equal(a, b)
        # Both are views into the same per-radius anchor matrix.
        matrix = tiny_db.anchor_freqs(250.0)
        assert np.shares_memory(a, matrix)
        assert np.shares_memory(b, matrix)
        with pytest.raises(ValueError):
            a[0] = 99

    def test_clear_cache(self, tiny_db):
        a = tiny_db.freq_at_poi(1, 123.0)
        tiny_db.clear_cache()
        b = tiny_db.freq_at_poi(1, 123.0)
        assert a is not b
        np.testing.assert_array_equal(a, b)


class TestCityAggregates:
    def test_city_frequency(self, tiny_db):
        np.testing.assert_array_equal(tiny_db.city_frequency, [3, 2, 1])

    def test_city_frequency_readonly(self, tiny_db):
        with pytest.raises(ValueError):
            tiny_db.city_frequency[0] = 7

    def test_infrequent_ranks(self, tiny_db):
        # Type c (count 1) ranks 1, b (2) ranks 2, a (3) ranks 3.
        np.testing.assert_array_equal(tiny_db.infrequent_ranks, [3, 2, 1])

    def test_pois_of_type(self, tiny_db):
        assert set(tiny_db.pois_of_type(0).tolist()) == {0, 1, 5}
        assert set(tiny_db.pois_of_type(2).tolist()) == {4}

    def test_pois_of_type_out_of_range(self, tiny_db):
        with pytest.raises(DatasetError):
            tiny_db.pois_of_type(99)

    def test_rarest_present_type(self, tiny_db):
        # Vector containing types a and c: c is city-rarest.
        assert tiny_db.rarest_present_type(np.array([2, 0, 1])) == 2
        assert tiny_db.rarest_present_type(np.array([1, 1, 0])) == 1
        assert tiny_db.rarest_present_type(np.array([0, 0, 0])) is None

    def test_rarest_present_type_shape_check(self, tiny_db):
        with pytest.raises(DatasetError):
            tiny_db.rarest_present_type(np.array([1, 2]))


class TestConsistencyOnGeneratedCity:
    def test_city_frequency_sums_to_poi_count(self, db):
        assert int(db.city_frequency.sum()) == len(db)

    def test_ranks_are_a_permutation(self, db):
        ranks = db.infrequent_ranks
        assert sorted(ranks.tolist()) == list(range(1, db.n_types + 1))

    def test_rank_ordering_respects_counts(self, db):
        freq = db.city_frequency
        ranks = db.infrequent_ranks
        order = np.argsort(ranks)
        sorted_counts = freq[order]
        assert (np.diff(sorted_counts) >= 0).all()

    def test_freq_monotone_in_radius(self, db, rng):
        b = db.bounds
        for _ in range(5):
            center = b.sample_point(rng)
            small = db.freq(center, 400.0)
            large = db.freq(center, 1200.0)
            assert (large >= small).all()

    def test_positions_readonly(self, db):
        with pytest.raises(ValueError):
            db.positions[0, 0] = 1.0
