"""Tests for the per-figure chart renderers."""

import pytest

from repro.experiments.figure_charts import FIGURE_CHARTS, render_chart
from repro.experiments.results import ExperimentResult


def result_with(exp_id, rows):
    result = ExperimentResult(exp_id, "t")
    for row in rows:
        result.add_row(**row)
    return result


class TestRenderChart:
    def test_unknown_experiment_returns_none(self):
        assert render_chart(result_with("datasets", [{"a": 1}])) is None

    def test_every_registered_chart_renders(self):
        samples = {
            "fig2": [{"city": "beijing", "r_km": 1.0, "mean_accuracy": 0.99}],
            "fig3": [
                {"city": "beijing", "r_km": 1.0, "variant": "sanitized", "success_rate": 0.2},
                {"city": "beijing", "r_km": 2.0, "variant": "sanitized", "success_rate": 0.1},
            ],
            "fig4": [
                {"dataset": "bj_random", "r_km": 1.0, "epsilon": 0.1, "correct_rate": 0.2},
                {"dataset": "bj_random", "r_km": 2.0, "epsilon": 0.1, "correct_rate": 0.4},
            ],
            "fig5": [
                {"dataset": "bj_random", "r_km": 1.0, "k": 10, "correct_rate": 0.3},
                {"dataset": "bj_random", "r_km": 1.0, "k": 50, "correct_rate": 0.1},
            ],
            "fig6": [
                {"dataset": "bj_random", "r_km": 1.0, "n_success": 5, "d50_km2": 0.2},
                {"dataset": "bj_random", "r_km": 2.0, "n_success": 8, "d50_km2": 0.5},
            ],
            "fig7": [
                {"dataset": "bj_random", "n_aux": 5, "mean_area_km2": 2.0},
                {"dataset": "bj_random", "n_aux": 20, "mean_area_km2": 0.5},
            ],
            "fig8": [
                {"r_km": 0.5, "single_success": 0.2, "enhanced_success": 0.3},
                {"r_km": 1.0, "single_success": 0.4, "enhanced_success": 0.5},
            ],
            "fig9_10": [
                {"dataset": "bj_tdrive", "r_km": 2.0, "beta": 0.01, "success_rate": 0.3, "jaccard": 0.9},
                {"dataset": "bj_tdrive", "r_km": 2.0, "beta": 0.05, "success_rate": 0.1, "jaccard": 0.7},
            ],
            "fig11_12": [
                {"dataset": "bj_tdrive", "beta": 0.01, "epsilon": 0.2, "success_rate": 0.1, "jaccard": 0.5},
                {"dataset": "bj_tdrive", "beta": 0.01, "epsilon": 2.0, "success_rate": 0.4, "jaccard": 0.7},
            ],
        }
        assert set(samples) == set(FIGURE_CHARTS)
        for exp_id, rows in samples.items():
            chart = render_chart(result_with(exp_id, rows))
            assert chart is not None and chart.strip(), exp_id

    def test_fig4_labels_baseline_rows(self):
        result = result_with(
            "fig4",
            [
                {"dataset": "d", "r_km": 1.0, "epsilon": None, "correct_rate": 0.5},
                {"dataset": "d", "r_km": 1.0, "epsilon": 0.1, "correct_rate": 0.2},
                {"dataset": "d", "r_km": 2.0, "epsilon": 0.1, "correct_rate": 0.3},
            ],
        )
        chart = render_chart(result)
        assert "epsilon=0.1" in chart
        assert "epsilon=off" in chart
        assert "epsilon=None" not in chart

    def test_fig8_handles_missing_rows(self):
        result = result_with("fig8", [{"r_km": 0.5, "n_pairs": 3}])
        chart = render_chart(result)
        assert chart is not None  # degrades to "(no data)" rather than crash
