"""Planted PL013: blocking under a lock, a lock-order cycle, and a
non-reentrant self-deadlock.

Lints as repro.serve.fixture.  ``forward`` takes a then b while
``backward`` takes b then (through a helper) a — the classic ABBA
cycle; ``stall`` parks on an unbounded queue get while holding a;
``reenter`` re-acquires a non-reentrant Lock it already holds.
"""

import queue
import threading


class LockFixture:
    def __init__(self):
        self._lock_a = threading.Lock()
        self._lock_b = threading.Lock()
        self._queue = queue.Queue()
        self.counter = 0

    def forward(self):
        with self._lock_a:
            with self._lock_b:  # PL013
                return self.counter

    def backward(self):
        with self._lock_b:
            self._grab_a()  # PL013

    def _grab_a(self):
        with self._lock_a:
            self.counter += 1

    def stall(self):
        with self._lock_a:
            return self._queue.get()  # PL013

    def reenter(self):
        with self._lock_a:
            self._grab_a()  # PL013
