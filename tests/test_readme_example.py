"""The README quickstart snippet must actually run."""

import re
from pathlib import Path


def test_readme_quickstart_executes():
    readme = Path(__file__).parent.parent / "README.md"
    blocks = re.findall(r"```python\n(.*?)```", readme.read_text(), flags=re.DOTALL)
    assert blocks, "README has no python code block"
    namespace: dict = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)  # noqa: S102
    # The snippet defines the core objects it demonstrates.
    assert "db" in namespace and "released" in namespace
    assert namespace["released"].shape == (namespace["db"].n_types,)
