"""Markdown report generation from saved experiment results.

``poiagg report results/`` collects the JSON dumps a ``poiagg run --out``
produced and renders one self-contained Markdown document — tables, the
run configurations, and the per-figure notes — so a full reproduction run
can be archived or diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.errors import ConfigError
from repro.experiments.results import ExperimentResult

__all__ = ["collect_results", "render_markdown_report", "write_report"]

#: Figure order for the report (anything else is appended alphabetically).
_PREFERRED_ORDER = [
    "datasets",
    "uniqueness",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9_10",
    "fig11_12",
]


def collect_results(directory: "str | Path") -> list[ExperimentResult]:
    """Load every ``*.json`` experiment result in *directory*."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ConfigError(f"not a results directory: {directory}")
    results = []
    for path in sorted(directory.glob("*.json")):
        try:
            results.append(ExperimentResult.load(path))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"not an experiment result: {path} ({exc})") from exc
    if not results:
        raise ConfigError(f"no experiment results found in {directory}")
    order = {name: i for i, name in enumerate(_PREFERRED_ORDER)}
    results.sort(key=lambda r: (order.get(r.experiment_id, len(order)), r.experiment_id))
    return results


def _markdown_table(rows: list[dict]) -> str:
    if not rows:
        return "*(no rows)*"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        if value is None:
            return ""
        return str(value)

    lines = ["| " + " | ".join(columns) + " |", "|" + "---|" * len(columns)]
    for row in rows:
        lines.append("| " + " | ".join(cell(row.get(c)) for c in columns) + " |")
    return "\n".join(lines)


def render_markdown_report(results: list[ExperimentResult], title: str = "Reproduction report") -> str:
    """Render the loaded results as one Markdown document."""
    parts = [f"# {title}", ""]
    parts.append("Generated from saved experiment results; regenerate with "
                 "`poiagg run all --out <dir>` followed by `poiagg report <dir>`.")
    parts.append("")
    for result in results:
        parts.append(f"## {result.experiment_id} — {result.title}")
        parts.append("")
        if result.config:
            cfg = ", ".join(f"`{k}={v}`" for k, v in result.config.items())
            parts.append(f"Config: {cfg}")
            parts.append("")
        parts.append(_markdown_table(result.rows))
        parts.append("")
        if result.notes:
            parts.append(f"> {result.notes}")
            parts.append("")
    return "\n".join(parts)


def write_report(directory: "str | Path", output: "str | Path | None" = None) -> Path:
    """Collect *directory* and write the report next to it (or to *output*)."""
    directory = Path(directory)
    results = collect_results(directory)
    target = Path(output) if output is not None else directory / "REPORT.md"
    target.write_text(render_markdown_report(results))
    return target
