"""Supervised shard execution: timeouts, retries, crash isolation, resume.

:func:`repro.experiments.parallel.run_sharded` splits an experiment along
its dataset/city axis and runs each shard in its own process.  A bare
process pool is brittle at paper scale: one hung worker stalls the whole
sweep, one OOM-killed worker aborts it and discards every completed
shard.  This module is the supervision layer the pool lacks:

* **timeouts** — every shard attempt has a wall-clock deadline; a worker
  that runs past it is SIGKILLed and the shard is rescheduled (hung
  workers cannot stall the sweep);
* **retries** — each shard gets a bounded number of attempts, each on a
  fresh process, so transient crashes (OOM kills, infra flakes) do not
  fail the sweep;
* **crash isolation** — a worker death fails only its shard; with
  ``serial_fallback`` the shard is re-run in the parent process after
  the parallel phase (the analogue of surviving ``BrokenProcessPool``);
* **shard checkpoints** — every completed shard atomically persists its
  rows under ``<out>/.checkpoints/shards/``, so ``resume=True`` re-runs
  only incomplete shards.  Because every runner derives randomness from
  ``(seed, labels)``, a resumed sweep is bit-identical to an
  uninterrupted one;
* **journal** — a JSONL progress/heartbeat journal
  (``<out>/.checkpoints/journal.jsonl``) records every launch, fate,
  retry, and a periodic heartbeat naming the in-flight shards, so an
  operator can see which shard is running, stalled, or being retried.

Each shard's life is summarised in a :class:`ShardReport`; the merged
:class:`~repro.experiments.results.ExperimentResult` carries the reports
in its ``provenance``.  The state machine per shard::

    pending -> running -> ok                      (first attempt worked)
                       -> retried                 (a later attempt worked)
                       -> timed_out | crashed | failed   (budget exhausted)
    crashed --serial_fallback--> ok/retried       (re-run in the parent)
    checkpoint match -> resumed                   (never launched)

Testing hook: a seeded :class:`WorkerFaultPlan` (same design as
:class:`repro.lbs.faults.FaultPlan`) makes workers deterministically
crash (``os._exit``), hang, or raise mid-shard, which the chaos suite
uses to drive every supervision path.
"""

# This module IS the sanctioned timing boundary: journal heartbeat
# timestamps and shard completed_at marks are operator telemetry outside
# the checkpointed rows (shard resume matches on (experiment, scale,
# seed, shard)), so wall-clock reads here cannot break resume
# bit-identity.
# poiagg: disable=PL005

from __future__ import annotations

import json
import multiprocessing
import os
import re
import time
import traceback
from collections import deque
from collections.abc import Sequence
from dataclasses import asdict, dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path

from repro.core.errors import ConfigError, TransientError
from repro.core.rng import derive_rng
from repro.core.vfs import VFSFile, get_vfs
from repro.experiments.registry import get_experiment
from repro.experiments.runner import load_checkpoint, write_checkpoint
from repro.experiments.scale import ExperimentScale

__all__ = [
    "ShardPolicy",
    "ShardReport",
    "WorkerFaultPlan",
    "supervise_shards",
    "shard_checkpoint_path",
    "shard_journal_path",
    "clear_shard_checkpoints",
]

_SHARD_CHECKPOINT_DIR = Path(".checkpoints") / "shards"
_JOURNAL_NAME = "journal.jsonl"

#: Exit code an injected crash dies with (distinguishable from SIGKILL).
_CRASH_EXIT = 87

_FAULT_FATES = ("crash", "hang", "error", "ok")


@dataclass(frozen=True)
class ShardPolicy:
    """Supervision knobs for one sharded run.

    ``retries`` counts *extra* attempts after the first, each on a fresh
    worker process; ``timeout_s`` is the per-attempt wall-clock budget
    (``None`` — never kill).  ``serial_fallback`` re-runs a shard whose
    workers kept crashing in the parent process once the parallel phase
    is over (never applied to timeouts: what hung a worker would hang
    the parent).
    """

    timeout_s: "float | None" = None
    retries: int = 0
    serial_fallback: bool = False
    poll_interval_s: float = 0.05
    heartbeat_interval_s: float = 5.0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(f"timeout_s must be positive or None, got {self.timeout_s}")
        if self.retries < 0:
            raise ConfigError(f"retries must be non-negative, got {self.retries}")
        if self.poll_interval_s <= 0 or self.heartbeat_interval_s <= 0:
            raise ConfigError("poll_interval_s and heartbeat_interval_s must be positive")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1


@dataclass
class ShardReport:
    """Fate of one shard under supervision.

    ``status`` is the terminal state of the shard state machine:
    ``ok`` (first attempt succeeded), ``retried`` (a later attempt or the
    serial fallback succeeded), ``resumed`` (loaded from a matching
    checkpoint), or the failures ``timed_out`` / ``crashed`` / ``failed``
    (exception in the worker) once the attempt budget is exhausted.
    """

    shard: object
    status: str = "pending"
    attempts: int = 0
    durations_s: list = field(default_factory=list)
    error: "str | None" = None
    traceback: "str | None" = None
    serial_fallback: bool = False
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "retried", "resumed")


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Deterministic worker-level faults for chaos-testing the supervisor.

    Same design as :class:`repro.lbs.faults.FaultPlan`: declarative
    rates, one seeded uniform per decision, and the whole fault timeline
    a pure function of the plan.  The decision stream is derived per
    ``(seed, shard, attempt)`` — not consumed sequentially — so fates do
    not depend on scheduling order.

    ``overrides`` pins specific shards to a fate (``"crash"`` —
    ``os._exit`` mid-shard, ``"hang"`` — sleep ``hang_s``, ``"error"`` —
    raise, ``"ok"`` — healthy); unlisted shards roll the rates.  Attempts
    beyond ``max_faults_per_shard`` are always healthy, which is how
    tests prove deterministic retry success on attempt N+1.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    error_rate: float = 0.0
    seed: int = 0
    max_faults_per_shard: int = 1
    hang_s: float = 3600.0
    overrides: tuple = ()

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "error_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.crash_rate + self.hang_rate + self.error_rate > 1.0:
            raise ConfigError("worker fault rates (crash + hang + error) exceed 1")
        if self.hang_s < 0:
            raise ConfigError(f"hang_s must be non-negative, got {self.hang_s}")
        if self.max_faults_per_shard < 0:
            raise ConfigError("max_faults_per_shard must be non-negative")
        for entry in self.overrides:
            if len(entry) != 2 or entry[1] not in _FAULT_FATES:
                raise ConfigError(
                    f"overrides entries must be (shard, fate) with fate in {_FAULT_FATES}"
                )

    def decide(self, shard_value: object, attempt: int) -> "str | None":
        """Fate of this ``(shard, attempt)``: None (healthy) or a fault name."""
        if attempt > self.max_faults_per_shard:
            return None
        for value, fate in self.overrides:
            if value == shard_value:
                return None if fate == "ok" else fate
        u = float(derive_rng(self.seed, "worker-fault", shard_value, attempt).random())
        if u < self.crash_rate:
            return "crash"
        if u < self.crash_rate + self.hang_rate:
            return "hang"
        if u < self.crash_rate + self.hang_rate + self.error_rate:
            return "error"
        return None


# --- checkpoint / journal layout ---


def _slug(value: object) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]", "-", str(value))


def shard_checkpoint_path(
    out: "Path | str", experiment_id: str, scale: ExperimentScale, shard_value: object
) -> Path:
    """Where the checkpoint for one completed shard lives."""
    name = f"{experiment_id}_{scale.name}_{_slug(shard_value)}.json"
    return Path(out) / _SHARD_CHECKPOINT_DIR / name


def shard_journal_path(out: "Path | str") -> Path:
    """The JSONL progress/heartbeat journal for sharded runs under *out*."""
    return Path(out) / ".checkpoints" / _JOURNAL_NAME


def clear_shard_checkpoints(
    out: "Path | str", experiment_id: str, scale: ExperimentScale
) -> int:
    """Delete the per-shard checkpoints of one ``(experiment, scale)``.

    Called by :func:`repro.experiments.runner.run_many` once the
    experiment-level checkpoint is written: the shard checkpoints are
    subsumed and keeping them would only let a later, different sweep
    resume from stale partials.  Returns the number of files removed.
    """
    removed = 0
    vfs = get_vfs()
    shard_dir = Path(out) / _SHARD_CHECKPOINT_DIR
    for path in shard_dir.glob(f"{experiment_id}_{scale.name}_*.json"):
        vfs.unlink(path, missing_ok=True)
        removed += 1
    return removed


def _config_key(kwargs: dict) -> str:
    """A stable fingerprint of the runner kwargs a shard was run with."""
    return json.dumps(kwargs, sort_keys=True, default=repr)


def _checkpoint_matches(
    checkpoint: "dict | None",
    experiment_id: str,
    scale: ExperimentScale,
    shard_param: str,
    shard_value: object,
    kwargs: dict,
) -> bool:
    if not isinstance(checkpoint, dict) or "result" not in checkpoint:
        return False
    return (
        checkpoint.get("experiment_id") == experiment_id
        and checkpoint.get("scale") == scale.name
        and checkpoint.get("seed") == scale.seed
        and checkpoint.get("shard_param") == shard_param
        and checkpoint.get("shard_value") == shard_value
        and checkpoint.get("config_key") == _config_key(kwargs)
    )


class _Journal:
    """Append-only JSONL event log (no-op when no path is given).

    Telemetry degrades, the sweep does not: a disk that refuses the
    journal (``ENOSPC``/``EIO``) disables it instead of failing shards.
    """

    def __init__(self, path: "Path | None") -> None:
        self._fh: "VFSFile | None" = None
        self.disabled_reason: "str | None" = None
        if path is not None:
            path = Path(path)
            vfs = get_vfs()
            try:
                vfs.mkdir(path.parent, parents=True, exist_ok=True)
                self._fh = vfs.open(path, "a")
            except OSError as exc:
                self.disabled_reason = f"journal open refused: {exc}"

    def write(self, event: str, **fields: object) -> None:
        if self._fh is None:
            return
        record = {"ts": round(time.time(), 3), "event": event, **fields}
        try:
            self._fh.write(json.dumps(record, default=repr) + "\n")
        except OSError as exc:
            self.disabled_reason = f"journal write refused: {exc}"
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# --- the worker side ---


def _run_shard_in_process(
    experiment_id: str,
    scale_fields: dict,
    shard_param: str,
    shard_value: object,
    kwargs: dict,
) -> dict:
    """Run one shard in the current process and return the result dict."""
    scale = ExperimentScale(**scale_fields)
    runner = get_experiment(experiment_id)
    result = runner(scale=scale, **{shard_param: (shard_value,)}, **kwargs)
    return asdict(result)


def _supervised_worker(
    conn: mp_connection.Connection,
    experiment_id: str,
    scale_fields: dict,
    shard_param: str,
    shard_value: object,
    kwargs: dict,
    fault_plan: "WorkerFaultPlan | None",
    attempt: int,
    city_handles: tuple = (),
) -> None:
    """Worker entry point: run one shard attempt, report over *conn*.

    Sends ``("ok", result_dict)`` or ``("error", type, message,
    traceback)``; a crashed worker sends nothing and the supervisor
    detects the dead process.  Injected faults fire before the runner so
    chaos tests stay cheap; the supervision semantics are identical to a
    fault mid-computation.

    With *city_handles* the worker first attaches the parent's
    shared-memory cities (:mod:`repro.poi.shared`).  The attach precedes
    fault injection on purpose: a worker that is SIGKILLed mid-run dies
    *attached*, and its replacement attempt re-attaches the same
    segments — the crash-replacement path the chaos suite exercises.
    Workers never unlink; only the parent's ``share_cities`` context does.
    """
    try:
        if city_handles:
            from repro.poi.shared import attach_and_install

            attach_and_install(city_handles)
        if fault_plan is not None:
            fate = fault_plan.decide(shard_value, attempt)
            if fate == "crash":
                os._exit(_CRASH_EXIT)  # simulate an OOM kill: no cleanup, no message
            elif fate == "hang":
                time.sleep(fault_plan.hang_s)
            elif fate == "error":
                raise TransientError(
                    f"injected worker fault in shard {shard_value!r} (attempt {attempt})"
                )
        payload = _run_shard_in_process(
            experiment_id, scale_fields, shard_param, shard_value, kwargs
        )
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 — must cross the process boundary
        try:
            conn.send(("error", type(exc).__name__, str(exc), traceback.format_exc()))
        except Exception:
            pass  # parent is gone or pipe broken: nothing left to report to
    finally:
        conn.close()


# --- the supervisor side ---


@dataclass
class _Attempt:
    """One in-flight worker process."""

    index: int
    attempt_no: int
    proc: object
    conn: object
    started_at: float
    deadline: "float | None"


def _reap(att: _Attempt) -> None:
    """Make sure an attempt's process and pipe are fully gone."""
    if att.proc.is_alive():
        att.proc.kill()
    att.proc.join(timeout=5.0)
    att.conn.close()


def supervise_shards(
    experiment_id: str,
    scale: ExperimentScale,
    shards: Sequence,
    shard_param: str,
    kwargs: "dict | None" = None,
    *,
    max_workers: int,
    policy: "ShardPolicy | None" = None,
    out: "Path | str | None" = None,
    resume: bool = False,
    journal_path: "Path | str | None" = None,
    fault_plan: "WorkerFaultPlan | None" = None,
    city_handles: tuple = (),
) -> tuple[list, list[ShardReport]]:
    """Run every shard under supervision; never abandons completed work.

    Returns ``(partials, reports)`` in shard order, where ``partials[i]``
    is the shard's ``ExperimentResult`` as a dict (``None`` if the shard
    failed terminally) and ``reports[i]`` its :class:`ShardReport`.
    Unlike a bare pool, a failing shard does not abort the others: the
    sweep always runs to completion and the caller decides what a
    failure means.

    With *out* set, completed shards checkpoint atomically under
    ``<out>/.checkpoints/shards/`` and ``resume=True`` skips shards whose
    checkpoint matches ``(experiment, scale, seed, shard, kwargs)``; the
    journal defaults to ``<out>/.checkpoints/journal.jsonl``.

    *city_handles* (picklable :class:`~repro.poi.shared.SharedCityHandle`
    tuples) are forwarded to every worker attempt — including retries
    replacing a SIGKILLed worker — which attach the shared cities before
    running.  The supervisor never unlinks the segments; their owner does.
    """
    kwargs = dict(kwargs or {})
    policy = policy if policy is not None else ShardPolicy()
    if resume and out is None:
        raise ConfigError("shard-level resume needs an output directory for checkpoints")
    if journal_path is None and out is not None:
        journal_path = shard_journal_path(out)
    journal = _Journal(journal_path)
    scale_fields = asdict(scale)
    ctx = multiprocessing.get_context()

    reports = [ShardReport(shard=value) for value in shards]
    partials: list = [None] * len(shards)
    pending: deque[int] = deque()
    fallback_queue: list[int] = []

    for i, value in enumerate(shards):
        ckpt = (
            load_checkpoint(shard_checkpoint_path(out, experiment_id, scale, value))
            if resume and out is not None
            else None
        )
        if _checkpoint_matches(ckpt, experiment_id, scale, shard_param, value, kwargs):
            partials[i] = ckpt["result"]
            reports[i].status = "resumed"
            reports[i].resumed = True
            journal.write("resume", shard=value)
        else:
            pending.append(i)

    def _launch(index: int) -> _Attempt:
        report = reports[index]
        report.attempts += 1
        report.status = "running"
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_supervised_worker,
            args=(
                child_conn,
                experiment_id,
                scale_fields,
                shard_param,
                shards[index],
                kwargs,
                fault_plan,
                report.attempts,
                city_handles,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        now = time.monotonic()
        deadline = now + policy.timeout_s if policy.timeout_s is not None else None
        journal.write(
            "start",
            shard=shards[index],
            attempt=report.attempts,
            pid=proc.pid,
            timeout_s=policy.timeout_s,
        )
        return _Attempt(index, report.attempts, proc, parent_conn, now, deadline)

    def _checkpoint(index: int) -> None:
        if out is None:
            return
        write_checkpoint(
            shard_checkpoint_path(out, experiment_id, scale, shards[index]),
            {
                "experiment_id": experiment_id,
                "scale": scale.name,
                "seed": scale.seed,
                "shard_param": shard_param,
                "shard_value": shards[index],
                "config_key": _config_key(kwargs),
                "completed_at": time.time(),
                "result": partials[index],
            },
        )

    def _succeed(att: _Attempt, payload: dict) -> None:
        report = reports[att.index]
        report.durations_s.append(round(time.monotonic() - att.started_at, 4))
        report.status = "ok" if report.attempts == 1 else "retried"
        report.error = report.traceback = None
        partials[att.index] = payload
        try:
            _checkpoint(att.index)
        except OSError as exc:
            # Disk pressure is contained to this shard: its result (in
            # memory) still merges into the sweep, only resumability is
            # lost.  atomic_writer guarantees no torn checkpoint exists.
            report.error = f"checkpoint write refused: {exc}"
            journal.write(
                "checkpoint_failed", shard=shards[att.index], error=str(exc)
            )
        journal.write(
            "ok",
            shard=shards[att.index],
            attempt=att.attempt_no,
            elapsed_s=report.durations_s[-1],
        )

    def _fail(att: _Attempt, kind: str, error: str, tb: "str | None" = None) -> None:
        """One attempt failed: retry on a fresh worker, fall back, or give up."""
        report = reports[att.index]
        report.durations_s.append(round(time.monotonic() - att.started_at, 4))
        report.error = error
        report.traceback = tb
        journal.write(
            kind,
            shard=shards[att.index],
            attempt=att.attempt_no,
            elapsed_s=report.durations_s[-1],
            error=error,
        )
        if att.attempt_no < policy.max_attempts:
            journal.write("retry", shard=shards[att.index], next_attempt=att.attempt_no + 1)
            pending.append(att.index)
            return
        report.status = kind
        if kind == "crashed" and policy.serial_fallback:
            fallback_queue.append(att.index)

    running: dict = {}  # conn -> _Attempt
    last_heartbeat = time.monotonic()
    try:
        while pending or running:
            while pending and len(running) < max_workers:
                att = _launch(pending.popleft())
                running[att.conn] = att

            ready = mp_connection.wait(list(running), timeout=policy.poll_interval_s)
            for conn in ready:
                att = running.pop(conn)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
                _reap(att)
                if message is None:
                    _fail(
                        att,
                        "crashed",
                        f"worker pid {att.proc.pid} died without a result "
                        f"(exitcode {att.proc.exitcode})",
                    )
                elif message[0] == "ok":
                    _succeed(att, message[1])
                else:
                    _, exc_type, exc_msg, tb = message
                    _fail(att, "failed", f"{exc_type}: {exc_msg}", tb)

            now = time.monotonic()
            for conn, att in list(running.items()):
                if conn.poll():
                    continue  # a result arrived since wait(); next iteration reads it
                if att.deadline is not None and now >= att.deadline:
                    del running[conn]
                    _reap(att)
                    _fail(
                        att,
                        "timed_out",
                        f"shard attempt exceeded timeout_s={policy.timeout_s} "
                        f"(attempt {att.attempt_no}); worker killed",
                    )
                elif not att.proc.is_alive():
                    del running[conn]
                    _reap(att)
                    _fail(
                        att,
                        "crashed",
                        f"worker pid {att.proc.pid} died without a result "
                        f"(exitcode {att.proc.exitcode})",
                    )

            if now - last_heartbeat >= policy.heartbeat_interval_s and running:
                last_heartbeat = now
                journal.write(
                    "heartbeat",
                    running=[
                        {
                            "shard": shards[att.index],
                            "attempt": att.attempt_no,
                            "pid": att.proc.pid,
                            "elapsed_s": round(now - att.started_at, 1),
                        }
                        for att in running.values()
                    ],
                )

        for index in fallback_queue:
            report = reports[index]
            journal.write("fallback", shard=shards[index])
            start = time.monotonic()
            report.attempts += 1
            try:
                payload = _run_shard_in_process(
                    experiment_id, scale_fields, shard_param, shards[index], kwargs
                )
            except Exception as exc:  # noqa: BLE001 — fold into the shard's report
                report.durations_s.append(round(time.monotonic() - start, 4))
                report.error = f"serial fallback failed too: {type(exc).__name__}: {exc}"
                report.traceback = traceback.format_exc()
                journal.write("fallback_failed", shard=shards[index], error=report.error)
                continue
            report.durations_s.append(round(time.monotonic() - start, 4))
            report.status = "retried"
            report.serial_fallback = True
            report.error = report.traceback = None
            partials[index] = payload
            try:
                _checkpoint(index)
            except OSError as exc:
                report.error = f"checkpoint write refused: {exc}"
                journal.write(
                    "checkpoint_failed", shard=shards[index], error=str(exc)
                )
            journal.write("fallback_ok", shard=shards[index])
    finally:
        for att in running.values():
            _reap(att)
        journal.write(
            "done",
            ok=sum(1 for r in reports if r.ok),
            failed=sum(1 for r in reports if not r.ok),
        )
        journal.close()
    return partials, reports
