"""A uniform-grid spatial index for fixed point sets.

The geo-information provider's two interfaces — ``Query(l, r)`` (POIs within
range) and ``Freq(l, r)`` (their type histogram) — are the innermost
operations of every attack and defense in the paper, so range queries must
be cheap.  POI sets are static, so a uniform grid over the city's bounding
box is both simpler and faster than a rebalancing tree: a radius-``r`` query
touches only ``O((r / cell)^2)`` cells and does one vectorized distance
filter over their members.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import GeometryError
from repro.geo.bbox import BBox
from repro.geo.point import Point

__all__ = ["GridIndex", "DiskColumnPlan"]

#: Smallest normal float64 — below it, squared distances lose precision.
_TINY = np.finfo(np.float64).tiny

#: Relative margin for classifying whole cells against a disk.  A cell is
#: only called *interior* when its farthest corner is within
#: ``radius * (1 - _CELL_MARGIN)`` and only called *outside* when its
#: nearest corner is beyond ``radius * (1 + _CELL_MARGIN)``; everything in
#: between stays in the exactly-filtered band, so float rounding can move
#: cells only between "cheap" and "exact" — never flip a point's fate.
_CELL_MARGIN = 1e-12

#: Absolute companion to ``_CELL_MARGIN`` (meters).  Bucket assignment
#: truncates ``(x - min_x) / cell``, so a stored point's true coordinate can
#: sit up to a few 1e-11 m outside its nominal cell rectangle at city scale;
#: a nanometer pad dominates that error even when ``radius * _CELL_MARGIN``
#: alone would not (tiny radii).
_CELL_PAD = 1e-9


@dataclass(frozen=True)
class DiskColumnPlan:
    """Per-(query, cell-column) decomposition of a batch of disk queries.

    Each entry describes one grid column ``cx`` scanned by query
    ``qidx``: cells ``cy in [olo, ohi]`` are the only ones that can contain
    points within the radius, and of those, cells ``cy in [ilo, ihi]`` lie
    *entirely* inside the disk (every member point is certainly kept).  The
    remaining cells — ``[olo, ilo - 1]`` and ``[ihi + 1, ohi]`` — form the
    boundary band that still needs the exact distance filter.  An empty
    interior is encoded as ``ilo == ohi + 1, ihi == ohi`` so both band runs
    degenerate into the single run ``[olo, ohi]`` with no special-casing.

    Classification uses the conservative margins ``_CELL_MARGIN`` /
    ``_CELL_PAD``: a cell is only promoted out of the band when float
    rounding provably cannot flip any of its points' fates, so consuming the
    plan yields results bit-identical to filtering the full scan box.
    """

    n_queries: int
    qidx: np.ndarray  #: (n_pairs,) intp — owning query of each column
    cx: np.ndarray  #: (n_pairs,) intp — grid column index
    olo: np.ndarray  #: (n_pairs,) intp — first cell row that can intersect
    ohi: np.ndarray  #: (n_pairs,) intp — last cell row that can intersect
    ilo: np.ndarray  #: (n_pairs,) intp — first fully-inside cell row
    ihi: np.ndarray  #: (n_pairs,) intp — last fully-inside cell row


def _disk_keep(dx: np.ndarray, dy: np.ndarray, radius: float) -> np.ndarray:
    """Mask of ``(dx, dy)`` offsets within *radius*, decided as ``np.hypot``.

    Squared distances are cheap but can disagree with the overflow-immune
    ``hypot`` comparison when the squares denormalise or the point sits
    within ~1e-12 (relative) of the boundary.  Everything outside that band
    is provably decided the same way by both formulas, so only band entries
    — normally none — are re-decided with ``np.hypot`` itself.
    """
    d2 = dx * dx
    d2 += dy * dy
    rsq = radius * radius
    keep = d2 <= rsq
    band = np.abs(d2 - rsq) <= 1e-12 * rsq
    band |= (d2 < _TINY) | (rsq < _TINY) | ~np.isfinite(d2)
    bi = np.flatnonzero(band)
    if len(bi):
        keep[bi] = np.hypot(dx[bi], dy[bi]) <= radius
    return keep


class GridIndex:
    """Uniform grid over a fixed set of planar points.

    Parameters
    ----------
    xy:
        Array of shape ``(n, 2)`` with point coordinates in meters.
    cell_size:
        Grid cell edge length in meters.  A good default is on the order of
        the smallest query radius; see the ablation bench for the tradeoff.
    bounds:
        Optional explicit bounding box.  Defaults to the tight bounds of the
        points (expanded by one cell so boundary points never fall outside).
    """

    def __init__(self, xy: np.ndarray, cell_size: float, bounds: BBox | None = None) -> None:
        xy = np.asarray(xy, dtype=float)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise GeometryError(f"expected (n, 2) coordinates, got shape {xy.shape}")
        if cell_size <= 0:
            raise GeometryError(f"cell_size must be positive, got {cell_size}")
        self._xy = xy
        self._cell = float(cell_size)
        if bounds is None:
            if len(xy) == 0:
                bounds = BBox(0.0, 0.0, cell_size, cell_size)
            else:
                bounds = BBox(
                    float(xy[:, 0].min()),
                    float(xy[:, 1].min()),
                    float(xy[:, 0].max()),
                    float(xy[:, 1].max()),
                ).expanded(cell_size)
        self._bounds = bounds
        self._nx = max(1, int(np.ceil(bounds.width / cell_size)))
        self._ny = max(1, int(np.ceil(bounds.height / cell_size)))

        # Bucket points by cell using a counting-sort layout: ``_order`` holds
        # point indices grouped by cell, ``_start`` delimits each cell's slice.
        n_cells = self._nx * self._ny
        if len(xy):
            cx, cy = self._cell_of_many(xy[:, 0], xy[:, 1])
            flat = cx * self._ny + cy
            order = np.argsort(flat, kind="stable")
            counts = np.bincount(flat, minlength=n_cells)
        else:
            order = np.empty(0, dtype=np.intp)
            counts = np.zeros(n_cells, dtype=np.intp)
        self._order = order
        self._start = np.concatenate([[0], np.cumsum(counts)])
        # Point coordinates pre-permuted into the bucket order: the batch
        # path filters its gathered pool with one contiguous read per axis
        # and only surviving entries pay the point-index gather.
        self._xord = np.ascontiguousarray(xy[order, 0]) if len(xy) else xy
        self._yord = np.ascontiguousarray(xy[order, 1]) if len(xy) else xy
        self._clipped = self._any_outside_bounds()

    def _any_outside_bounds(self) -> bool:
        """Whether any point was clipped into an edge cell from outside.

        Only points strictly outside the bounding box distort the grid
        geometry (their assigned edge cell's rectangle does not contain
        them); in-bounds border points always land in a cell whose closed
        rectangle covers them.  :meth:`disk_column_plan` needs edge-cell
        guards only when this is true.
        """
        if len(self._xy) == 0:
            return False
        b = self._bounds
        xs, ys = self._xy[:, 0], self._xy[:, 1]
        return bool(
            (xs < b.min_x).any()
            or (xs > b.max_x).any()
            or (ys < b.min_y).any()
            or (ys > b.max_y).any()
        )

    @classmethod
    def from_layout(
        cls,
        xy: np.ndarray,
        cell_size: float,
        bounds: BBox,
        order: np.ndarray,
        start: np.ndarray,
        xord: np.ndarray,
        yord: np.ndarray,
    ) -> GridIndex:
        """Rebuild an index from a previously computed bucket layout.

        Used by the shared-memory attach path: the arrays are views over a
        ``multiprocessing.shared_memory`` segment built by an index with the
        same ``(xy, cell_size, bounds)``, so re-sorting would both waste time
        and force a copy.  Only cheap shape invariants are checked — the
        caller vouches that the layout actually belongs to these points.
        """
        if cell_size <= 0:
            raise GeometryError(f"cell_size must be positive, got {cell_size}")
        obj = cls.__new__(cls)
        obj._xy = xy
        obj._cell = float(cell_size)
        obj._bounds = bounds
        obj._nx = max(1, int(np.ceil(bounds.width / cell_size)))
        obj._ny = max(1, int(np.ceil(bounds.height / cell_size)))
        n_cells = obj._nx * obj._ny
        if len(start) != n_cells + 1 or int(start[-1]) != len(xy):
            raise GeometryError(
                f"bucket layout does not match grid: expected start of length "
                f"{n_cells + 1} ending at {len(xy)}, got length {len(start)} "
                f"ending at {int(start[-1]) if len(start) else 'nothing'}"
            )
        if not (len(order) == len(xord) == len(yord) == len(xy)):
            raise GeometryError("bucket layout arrays disagree with the point count")
        obj._order = order
        obj._start = start
        obj._xord = xord
        obj._yord = yord
        obj._clipped = obj._any_outside_bounds()
        return obj

    @property
    def n_points(self) -> int:
        return len(self._xy)

    @property
    def bucket_order(self) -> np.ndarray:
        """Point indices grouped by cell (the CSR pool, read-only layout)."""
        return self._order

    @property
    def bucket_start(self) -> np.ndarray:
        """Per-cell slice boundaries into :attr:`bucket_order` (flat x-major)."""
        return self._start

    @property
    def bucket_xord(self) -> np.ndarray:
        """x coordinates pre-permuted into bucket order."""
        return self._xord

    @property
    def bucket_yord(self) -> np.ndarray:
        """y coordinates pre-permuted into bucket order."""
        return self._yord

    @property
    def bounds(self) -> BBox:
        return self._bounds

    @property
    def cell_size(self) -> float:
        return self._cell

    @property
    def grid_shape(self) -> tuple[int, int]:
        """Number of cells along each axis ``(nx, ny)``."""
        return self._nx, self._ny

    def _cell_of_many(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        cx = np.clip(((xs - self._bounds.min_x) / self._cell).astype(np.intp), 0, self._nx - 1)
        cy = np.clip(((ys - self._bounds.min_y) / self._cell).astype(np.intp), 0, self._ny - 1)
        return cx, cy

    def cells_of(self, xy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Clamped ``(cx, cy)`` cell coordinates for each point in *xy*."""
        q = np.asarray(xy, dtype=float)
        if q.ndim != 2 or q.shape[1] != 2:
            raise GeometryError(f"expected (n, 2) coordinates, got shape {q.shape}")
        return self._cell_of_many(q[:, 0], q[:, 1])

    def cell_ranges(
        self, xy: np.ndarray, radius: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Clamped cell ranges ``(cx0, cx1, cy0, cy1)`` a radius query scans.

        The returned box of cells is exactly the candidate set
        :meth:`query_radius` filters — a superset of the disk — so any
        monotone statistic over the box (e.g. a per-type count) is a sound
        upper bound for the same statistic over the disk.  ``astype(intp)``
        truncates toward zero, matching the scalar path's ``int(...)``.
        """
        q = np.asarray(xy, dtype=float)
        if q.ndim != 2 or q.shape[1] != 2:
            raise GeometryError(f"expected (q, 2) query centers, got shape {q.shape}")
        if radius < 0:
            raise GeometryError(f"radius must be non-negative, got {radius}")
        cx0 = np.maximum(0, ((q[:, 0] - radius - self._bounds.min_x) / self._cell).astype(np.intp))
        cx1 = np.minimum(
            self._nx - 1, ((q[:, 0] + radius - self._bounds.min_x) / self._cell).astype(np.intp)
        )
        cy0 = np.maximum(0, ((q[:, 1] - radius - self._bounds.min_y) / self._cell).astype(np.intp))
        cy1 = np.minimum(
            self._ny - 1, ((q[:, 1] + radius - self._bounds.min_y) / self._cell).astype(np.intp)
        )
        return cx0, cx1, cy0, cy1

    def interior_cell_ranges(
        self, xy: np.ndarray, radius: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Clamped cell ranges ``(cx0, cx1, cy0, cy1)`` certainly inside the disk.

        The largest cell-aligned box contained in each query's inscribed
        square (half-side ``radius / sqrt(2)``), so every point in those
        cells is within *radius* of the center: any monotone statistic over
        the box is a sound *lower* bound for the disk.  Ranges may be empty
        (``cx1 < cx0`` or ``cy1 < cy0``) for radii small relative to the
        cell size.
        """
        q = np.asarray(xy, dtype=float)
        if q.ndim != 2 or q.shape[1] != 2:
            raise GeometryError(f"expected (q, 2) query centers, got shape {q.shape}")
        if radius < 0:
            raise GeometryError(f"radius must be non-negative, got {radius}")
        # Shrink the half-side by one ulp-scale factor so float rounding can
        # never admit a corner at distance > radius.
        s = radius / np.sqrt(2.0) * (1.0 - 1e-12)
        cx0 = np.maximum(
            0, np.ceil((q[:, 0] - s - self._bounds.min_x) / self._cell).astype(np.intp)
        )
        cx1 = np.minimum(
            self._nx - 1,
            np.floor((q[:, 0] + s - self._bounds.min_x) / self._cell).astype(np.intp) - 1,
        )
        cy0 = np.maximum(
            0, np.ceil((q[:, 1] - s - self._bounds.min_y) / self._cell).astype(np.intp)
        )
        cy1 = np.minimum(
            self._ny - 1,
            np.floor((q[:, 1] + s - self._bounds.min_y) / self._cell).astype(np.intp) - 1,
        )
        return cx0, cx1, cy0, cy1

    def disk_column_plan(self, xy: np.ndarray, radius: float) -> DiskColumnPlan:
        """Classify each query's scan-box cells as interior / band / outside.

        For every query the scan box from :meth:`cell_ranges` is flattened
        into ``(query, column)`` pairs exactly as :meth:`query_batch` does,
        then each column's cell rows are split by distance to the disk:

        * rows whose farthest corner is within ``radius`` shrunk by the
          classification margin are *interior* — every member point is
          certainly kept, so a prefix-sum rectangle sum can count them;
        * rows whose nearest corner is beyond ``radius`` grown by the margin
          are *outside* — no member point can be kept, so they are trimmed
          from the scan entirely (this is where large radii win: the scan
          box is O((r/cell)^2) cells but the band is only O(r/cell));
        * everything else is *band* and still needs the exact filter.

        When points lie strictly outside the bounding box,
        :meth:`_cell_of_many` clips them into edge cells whose rectangles do
        not contain them, so whole-cell geometry is unreliable there: in
        that case edge rows/columns are never classified interior *and*
        never trimmed — they stay in the band whenever the scan box touches
        them.  Indexes whose points all lie inside bounds (the normal case)
        skip both guards.
        """
        q = np.asarray(xy, dtype=float)
        if q.ndim != 2 or q.shape[1] != 2:
            raise GeometryError(f"expected (q, 2) query centers, got shape {q.shape}")
        if radius < 0:
            raise GeometryError(f"radius must be non-negative, got {radius}")
        nq = len(q)
        cx0, cx1, cy0, cy1 = self.cell_ranges(q, radius)
        spans = np.where((cx1 >= cx0) & (cy1 >= cy0), cx1 - cx0 + 1, 0)
        n_pairs = int(spans.sum())
        if n_pairs == 0:
            e = np.empty(0, dtype=np.intp)
            return DiskColumnPlan(nq, e, e, e, e, e, e)

        pair_starts = np.concatenate([[0], np.cumsum(spans)[:-1]])
        qidx = np.repeat(np.arange(nq, dtype=np.intp), spans)
        rel_col = np.arange(n_pairs, dtype=np.intp) - np.repeat(pair_starts, spans)
        cx = cx0[qidx] + rel_col

        qx = q[qidx, 0]
        qy = q[qidx, 1] - self._bounds.min_y
        x_lo = self._bounds.min_x + cx * self._cell
        x_hi = x_lo + self._cell
        dxmax = np.maximum(qx - x_lo, x_hi - qx)
        dxmin = np.maximum(0.0, np.maximum(x_lo - qx, qx - x_hi))
        r_in = radius * (1.0 - _CELL_MARGIN) - _CELL_PAD
        r_out = radius * (1.0 + _CELL_MARGIN) + _CELL_PAD

        # Outer trim: a cell row can hold kept points only if its y-interval
        # meets [qy - t, qy + t] with t the disk's half-height at the
        # column's nearest |dx|.
        t2 = r_out * r_out - dxmin * dxmin
        t = np.sqrt(np.maximum(t2, 0.0))
        olo = np.maximum(cy0[qidx], np.floor((qy - t) / self._cell).astype(np.intp))
        ohi = np.minimum(cy1[qidx], np.floor((qy + t) / self._cell).astype(np.intp))
        ohi = np.where(t2 > 0.0, ohi, olo - 1)
        if self._clipped:
            # Clipped points live in edge cells with unreliable rectangles:
            # any pair whose scan range touches a grid edge keeps its full
            # untrimmed range so no clipped point can be trimmed away.
            full = (
                (cx == 0)
                | (cx == self._nx - 1)
                | (cy0[qidx] == 0)
                | (cy1[qidx] == self._ny - 1)
            )
            olo = np.where(full, cy0[qidx], olo)
            ohi = np.where(full, cy1[qidx], ohi)

        # Interior: rows whose full y-extent fits inside [qy - s, qy + s]
        # with s the half-height at the column's farthest |dx| under the
        # shrunk radius.
        s2 = r_in * r_in - dxmax * dxmax
        s = np.sqrt(np.maximum(s2, 0.0))
        ilo = np.ceil((qy - s) / self._cell).astype(np.intp)
        ihi = np.floor((qy + s) / self._cell).astype(np.intp) - 1
        np.maximum(ilo, olo, out=ilo)
        np.minimum(ihi, ohi, out=ihi)
        good = (s2 > 0.0) & (ilo <= ihi)
        if self._clipped:
            np.maximum(ilo, 1, out=ilo)
            np.minimum(ihi, self._ny - 2, out=ihi)
            good &= (cx >= 1) & (cx <= self._nx - 2) & (ilo <= ihi)
        # Empty interior folds into "one band run [olo, ohi]".
        ilo = np.where(good, ilo, ohi + 1)
        ihi = np.where(good, ihi, ohi)
        return DiskColumnPlan(nq, qidx, cx, olo, ohi, ilo, ihi)

    def _candidates_in_box(self, min_x: float, min_y: float, max_x: float, max_y: float) -> np.ndarray:
        """Indices of all points in cells overlapping the given box."""
        cx0 = max(0, int((min_x - self._bounds.min_x) / self._cell))
        cx1 = min(self._nx - 1, int((max_x - self._bounds.min_x) / self._cell))
        cy0 = max(0, int((min_y - self._bounds.min_y) / self._cell))
        cy1 = min(self._ny - 1, int((max_y - self._bounds.min_y) / self._cell))
        if cx1 < cx0 or cy1 < cy0:
            return np.empty(0, dtype=np.intp)
        chunks = []
        for cx in range(cx0, cx1 + 1):
            # Cells (cx, cy0..cy1) are contiguous in the flat layout.
            flat0 = cx * self._ny + cy0
            flat1 = cx * self._ny + cy1
            lo = self._start[flat0]
            hi = self._start[flat1 + 1]
            if hi > lo:
                chunks.append(self._order[lo:hi])
        if not chunks:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(chunks)

    def query_radius(self, center: Point, radius: float) -> np.ndarray:
        """Indices of points within *radius* meters of *center* (inclusive)."""
        if radius < 0:
            raise GeometryError(f"radius must be non-negative, got {radius}")
        cand = self._candidates_in_box(
            center.x - radius, center.y - radius, center.x + radius, center.y + radius
        )
        if len(cand) == 0:
            return cand
        # Same hypot-exact filter as the batch path.
        dx = self._xy[cand, 0] - center.x
        dy = self._xy[cand, 1] - center.y
        return cand[_disk_keep(dx, dy, radius)]

    def query_batch(self, xy: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
        """Radius query for many centers in one vectorized pass.

        Parameters
        ----------
        xy:
            ``(q, 2)`` array of query centers in meters.
        radius:
            Query radius shared by the whole batch.

        Returns
        -------
        ``(indices, offsets)`` in CSR layout: the points within *radius* of
        center ``i`` are ``indices[offsets[i]:offsets[i + 1]]``, in exactly
        the order :meth:`query_radius` would return them.

        The batch is answered without any per-query Python loop: cell
        ranges are computed for all queries at once, every query's
        contiguous ``(cx, cy0..cy1)`` column slices are flattened into one
        ``(query, column)`` pair list expanded in owner-major order — so
        the gathered pool needs no sort to match the scalar layout — and a
        single distance filter runs over the whole candidate pool.
        Callers with very large batches should chunk them to bound the
        candidate pool's memory (see ``POIDatabase.freq_batch``).
        """
        q = np.asarray(xy, dtype=float)
        if q.ndim != 2 or q.shape[1] != 2:
            raise GeometryError(f"expected (q, 2) query centers, got shape {q.shape}")
        if radius < 0:
            raise GeometryError(f"radius must be non-negative, got {radius}")
        nq = len(q)
        empty = np.empty(0, dtype=np.intp)
        if nq == 0 or len(self._xy) == 0:
            return empty, np.zeros(nq + 1, dtype=np.intp)

        cx0, cx1, cy0, cy1 = self.cell_ranges(q, radius)
        spans = np.where((cx1 >= cx0) & (cy1 >= cy0), cx1 - cx0 + 1, 0)
        n_pairs = int(spans.sum())
        if n_pairs == 0:
            return empty, np.zeros(nq + 1, dtype=np.intp)

        # Flatten every query's cell columns into (query, column) pairs,
        # ordered by query then ascending column: expanding their slices in
        # this order reproduces the scalar per-query candidate order with
        # no sort over the gathered pool.
        pair_starts = np.concatenate([[0], np.cumsum(spans)[:-1]])
        qidx = np.repeat(np.arange(nq, dtype=np.intp), spans)
        rel_col = np.arange(n_pairs, dtype=np.intp) - np.repeat(pair_starts, spans)
        cx = cx0[qidx] + rel_col
        # Cells (cx, cy0..cy1) are contiguous in the flat layout.
        lo = self._start[cx * self._ny + cy0[qidx]]
        hi = self._start[cx * self._ny + cy1[qidx] + 1]
        lengths = hi - lo
        total = int(lengths.sum())
        if total == 0:
            return empty, np.zeros(nq + 1, dtype=np.intp)
        # The pool can reach millions of entries; 32-bit positions halve the
        # memory traffic of the expansion whenever they suffice.
        pool_dtype = np.int32 if total < np.iinfo(np.int32).max else np.intp
        out_start = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        pos = np.arange(total, dtype=pool_dtype)
        pos += np.repeat((lo - out_start).astype(pool_dtype), lengths)
        owners = np.repeat(qidx.astype(pool_dtype), lengths)

        # Same hypot-exact filter as the scalar path, evaluated on the
        # pre-permuted coordinate arrays so the pool is filtered before
        # any point-index gather.
        qx = np.ascontiguousarray(q[:, 0])
        qy = np.ascontiguousarray(q[:, 1])
        dx = self._xord[pos]
        dx -= qx[owners]
        dy = self._yord[pos]
        dy -= qy[owners]
        keep = _disk_keep(dx, dy, radius)
        points = self._order[pos[keep]]
        owners = owners[keep]
        offsets = np.zeros(nq + 1, dtype=np.intp)
        np.cumsum(np.bincount(owners, minlength=nq), out=offsets[1:])
        return points.astype(np.intp, copy=False), offsets

    def query_box(self, box: BBox) -> np.ndarray:
        """Indices of points inside *box* (inclusive boundaries)."""
        cand = self._candidates_in_box(box.min_x, box.min_y, box.max_x, box.max_y)
        if len(cand) == 0:
            return cand
        keep = box.contains_many(self._xy[cand, 0], self._xy[cand, 1])
        return cand[keep]

    def count_radius(self, center: Point, radius: float) -> int:
        """Number of points within *radius* of *center*."""
        return int(len(self.query_radius(center, radius)))
