"""Command-line interface: run experiments, list them, inspect datasets.

Examples::

    poiagg list
    poiagg run fig6 --scale quick --out results/
    poiagg run all --scale ci --out results/ --keep-going
    poiagg run all --scale ci --out results/ --resume
    poiagg run all --sharded --shard-timeout 1800 --shard-retries 2 \\
        --out results/ --resume   # supervised shards, shard-level resume
    poiagg ingest data/city.csv --policy quarantine --report report.json

Exit codes (for ``run`` and ``ingest``): 0 — success; 1 — failure (an
experiment failed / the dataset was rejected under the policy); 2 — the
invocation was bad (unknown experiment id, ``--resume`` without
``--out``, unparsable arguments).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import TYPE_CHECKING

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.scale import SCALES, get_scale

if TYPE_CHECKING:
    from repro.experiments.results import ExperimentResult
    from repro.experiments.runner import ExperimentRun
    from repro.experiments.scale import ExperimentScale
    from repro.poi.cities import City

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="poiagg",
        description=(
            "Reproduction of 'Practical Location Privacy Attacks and Defense "
            "on Point-of-interest Aggregates' (ICDCS 2021)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments and scales")

    run = sub.add_parser(
        "run",
        help="run one experiment (or 'all')",
        description=(
            "Run one experiment, or 'all' for the whole registry. "
            "Exit codes: 0 = all experiments ok, 1 = some experiments "
            "failed, 2 = bad invocation."
        ),
    )
    run.add_argument("experiment", help="experiment id from 'poiagg list', or 'all'")
    run.add_argument(
        "--scale", default="ci", choices=sorted(SCALES), help="sample-size preset"
    )
    run.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "do not stop at the first failing experiment: run the rest, "
            "print a failure summary, and exit 1 at the end"
        ),
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help=(
            "skip experiments already checkpointed under <out>/.checkpoints "
            "for this scale and seed (requires --out); checkpoints are "
            "written atomically after each successful experiment"
        ),
    )
    run.add_argument("--seed", type=int, default=None, help="override the preset seed")
    run.add_argument(
        "--out", type=Path, default=None, help="directory to write JSON results into"
    )
    run.add_argument(
        "--chart",
        action="store_true",
        help="also render the experiment's figure as an ASCII chart",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="shard the experiment across N processes (where it has a shard axis)",
    )
    run.add_argument(
        "--sharded",
        action="store_true",
        help=(
            "shard experiments across processes under supervision "
            "(auto worker count: min(#shards, #cpus)); implied by --jobs > 1"
        ),
    )
    run.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-shard wall-clock timeout; a worker running past it is "
            "killed and the shard retried on a fresh process"
        ),
    )
    run.add_argument(
        "--shard-retries",
        type=int,
        default=1,
        metavar="N",
        help=(
            "extra attempts per shard after the first, each on a fresh "
            "worker (default 1; 0 disables retries)"
        ),
    )
    run.add_argument(
        "--serial-fallback",
        action="store_true",
        help=(
            "if a shard's workers keep crashing, re-run that shard "
            "serially in this process instead of failing the experiment"
        ),
    )
    run.add_argument(
        "--svg",
        type=Path,
        default=None,
        help="directory to write an SVG rendering of the figure into",
    )

    report = sub.add_parser(
        "report", help="render saved JSON results into one Markdown report"
    )
    report.add_argument("results_dir", type=Path, help="directory of poiagg JSON results")
    report.add_argument(
        "--output", type=Path, default=None, help="report path (default: <dir>/REPORT.md)"
    )

    attack = sub.add_parser(
        "attack", help="re-identify one location's aggregate in a synthetic city"
    )
    attack.add_argument("--city", default="beijing", choices=["beijing", "nyc", "small"])
    attack.add_argument("--x", type=float, required=True, help="planar x in meters")
    attack.add_argument("--y", type=float, required=True, help="planar y in meters")
    attack.add_argument("--radius", type=float, default=2_000.0, help="query range in meters")
    attack.add_argument(
        "--fine", action="store_true", help="also run the fine-grained attack"
    )
    attack.add_argument("--seed", type=int, default=None)

    uniq = sub.add_parser(
        "uniqueness", help="print a city's uniqueness map and anchor profile"
    )
    uniq.add_argument("--city", default="beijing", choices=["beijing", "nyc", "small"])
    uniq.add_argument("--radius", type=float, default=2_000.0)
    uniq.add_argument("--cell", type=float, default=2_000.0, help="map cell size in meters")
    uniq.add_argument("--seed", type=int, default=None)

    ingest = sub.add_parser(
        "ingest",
        help="validate a dataset file and report every record's fate",
        description=(
            "Stream a POI CSV (+ .meta.json sidecar), OSM XML extract, or "
            "trajectory log through the validating ingestion layer. "
            "Policies: strict = reject the file at the first bad record "
            "(with its row number), repair = apply deterministic fixes, "
            "quarantine = divert unfixable records to a sidecar. "
            "Exit codes: 0 = ingested (report printed), 1 = rejected "
            "under the policy, 2 = bad invocation."
        ),
    )
    ingest.add_argument("source", type=Path, help="dataset file to ingest")
    ingest.add_argument(
        "--format",
        default="auto",
        choices=["auto", "poi-csv", "osm", "trajectory"],
        help="source format (auto: detect from suffix and header)",
    )
    ingest.add_argument(
        "--policy",
        default="strict",
        choices=["strict", "repair", "quarantine"],
        help="what to do with bad records (default: strict)",
    )
    ingest.add_argument(
        "--report",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the ingest report as JSON (atomically)",
    )
    ingest.add_argument(
        "--quarantine",
        type=Path,
        default=None,
        metavar="PATH",
        help="quarantine sidecar location (default: <source>.quarantine.jsonl)",
    )
    ingest.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "serve/commit the parsed database through the checksummed "
            "atomic dataset cache (POI CSV and OSM only)"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help="run the online release-and-defense HTTP service",
        description=(
            "Serve frequency releases over HTTP with per-user privacy-"
            "budget ledgers (durable; a crash-and-restart never double-"
            "spends), bounded-queue backpressure, and a load-shedding "
            "ladder. Endpoints: POST /v1/submit, GET /v1/status, "
            "GET /v1/jobs/<id>, GET /v1/result/<id>. Runs until "
            "interrupted. Exit codes: 0 = clean shutdown, 2 = bad "
            "invocation."
        ),
    )
    serve.add_argument("--city", default="small", choices=["beijing", "nyc", "small"])
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8377, help="0 picks a free port")
    serve.add_argument(
        "--budget-epsilon", type=float, default=5.0, help="per-user epsilon budget"
    )
    serve.add_argument(
        "--budget-delta", type=float, default=0.0, help="per-user delta budget"
    )
    serve.add_argument(
        "--epsilon", type=float, default=1.0, help="per-release laplace epsilon"
    )
    serve.add_argument(
        "--ledger-dir",
        type=Path,
        default=None,
        help="durable budget-ledger directory (default: in-memory only)",
    )
    serve.add_argument(
        "--journal",
        type=Path,
        default=None,
        help="JSONL heartbeat/audit journal path (default: off)",
    )
    serve.add_argument("--queue-capacity", type=int, default=256)
    serve.add_argument("--workers", type=int, default=1)
    serve.add_argument("--batch-max", type=int, default=64)
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument(
        "--attack-audit",
        action="store_true",
        help="audit completed releases with the batched region attack",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive the serve HTTP API with a seeded load profile",
        description=(
            "Generate a deterministic request stream against a running "
            "'poiagg serve' instance, wait for every accepted request to "
            "reach a terminal fate, and write latency/throughput "
            "percentiles to a JSON report. Exit codes: 0 = drained and "
            "every fate accounted, 1 = fates unaccounted or drain timed "
            "out, 2 = bad invocation."
        ),
    )
    loadgen.add_argument("--url", default="http://127.0.0.1:8377", help="server base URL")
    loadgen.add_argument(
        "--profile",
        default="smoke",
        choices=["smoke", "small", "bench", "flood"],
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_serve.json"),
        help="JSON report path (default: BENCH_serve.json)",
    )

    federate = sub.add_parser(
        "federate",
        help="run a dropout-tolerant federated aggregation campaign",
        description=(
            "Aggregate clipped per-cell frequency vectors from seeded "
            "simulated clients under distributed DP. Rounds tolerate "
            "dropouts down to the quorum, refuse late and malformed "
            "contributions, clip outliers, and either commit atomically "
            "(spending the round's privacy budget) or abort with the "
            "budget untouched. Exit codes: 0 = every round reached an "
            "outcome and at least one committed, 1 = no round committed "
            "or accounting failed, 2 = bad invocation."
        ),
    )
    federate.add_argument("--city", default="small", choices=["beijing", "nyc", "small"])
    federate.add_argument("--clients", type=int, default=1_000, help="enrolled clients")
    federate.add_argument("--rounds", type=int, default=3)
    federate.add_argument("--epsilon", type=float, default=1.0, help="per-round epsilon")
    federate.add_argument("--delta", type=float, default=0.2, help="per-round delta")
    federate.add_argument(
        "--clip", type=float, default=64.0, help="L1 clip bound per contribution"
    )
    federate.add_argument(
        "--quorum",
        type=float,
        default=0.8,
        help="fraction of clients that must contribute for a round to commit",
    )
    federate.add_argument(
        "--deadline", type=float, default=1.0, help="per-client deadline (seconds)"
    )
    federate.add_argument(
        "--retries", type=int, default=1, help="extra attempts for silent clients"
    )
    federate.add_argument(
        "--memory-budget",
        type=float,
        default=256.0,
        metavar="MB",
        help="aggregator working-memory cap (accumulators + fold buffers)",
    )
    federate.add_argument("--chunk-clients", type=int, default=2_048)
    federate.add_argument(
        "--budget-epsilon",
        type=float,
        default=None,
        help="campaign epsilon budget (default: rounds x epsilon)",
    )
    federate.add_argument("--seed", type=int, default=None)
    federate.add_argument(
        "--out",
        type=Path,
        default=None,
        help="checkpoint/report directory (rounds checkpoint atomically)",
    )
    federate.add_argument(
        "--resume",
        action="store_true",
        help="restore finished rounds from <out> checkpoints (requires --out)",
    )
    federate.add_argument(
        "--keep-checkpoints",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retain only the N newest round checkpoints (each carries "
            "cumulative state, so resume needs only the newest); "
            "default: keep all"
        ),
    )
    for fault in ("crash", "hang", "malformed", "poisoned", "duplicate"):
        federate.add_argument(
            f"--{fault}-rate",
            type=float,
            default=0.0,
            metavar="P",
            help=f"per-(round, client) {fault} probability (chaos injection)",
        )
    federate.add_argument(
        "--fault-seed", type=int, default=0, help="seed for the fault plan"
    )

    crashsweep = sub.add_parser(
        "crashsweep",
        help="exhaustive crash-point recovery sweep over durable writers",
        description=(
            "Enumerate every durable I/O operation of each durable writer "
            "(checkpoints, dataset cache, budget-ledger WAL, shard-"
            "checkpoint GC, quarantine sidecars) and kill the process at "
            "every one of them — plus torn-write and lying-fsync variants "
            "— then assert the recovery oracles: no budget double-spend, "
            "complete-or-invisible artifacts, consistent ledger replay. "
            "Exit codes: 0 = every crash point recovered, 1 = at least "
            "one oracle violation, 2 = bad invocation."
        ),
    )
    crashsweep.add_argument(
        "--seed", type=int, default=0, help="seed for torn-prefix choices"
    )
    crashsweep.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="sweep only this scenario (repeatable; default: all)",
    )
    crashsweep.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the full JSON sweep report here",
    )

    check = sub.add_parser(
        "check",
        help="run the PL invariant linter over first-party code",
        description=(
            "Invariant linter (rules PL001-PL014). Per-file syntactic "
            "rules (PL001-PL010): seed discipline, DP accounting, Freq "
            "dtype/hypot discipline, picklable shard workers, wall-clock-"
            "free experiment paths, no deprecated attack shims, atomic "
            "cache/checkpoint writes, timeout-bounded blocking in the "
            "serve path, managed shared memory, config-bounded federated "
            "accumulators. Project-wide dataflow analyses (PL011-PL014, "
            "enabled with --analysis taint,locks,commit or 'all'): "
            "privacy-taint source-to-sink tracking, exception-skippable "
            "budget spends, lock-order/blocking discipline, and commit-"
            "protocol ordering. "
            "Exit codes: 0 = clean, 1 = violations, 2 = bad invocation."
        ),
    )
    from repro.lint.cli import add_check_arguments

    add_check_arguments(check)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import SHARD_AXES, run_sharded
    from repro.experiments.registry import run_experiment
    from repro.experiments.runner import EXIT_USAGE, run_many

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(
            f"poiagg run: unknown experiment {unknown[0]!r}; "
            f"choose from {sorted(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.resume and args.out is None:
        print(
            "poiagg run: --resume needs --out (checkpoints live in the "
            "output directory)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.shard_timeout is not None and args.shard_timeout <= 0:
        print("poiagg run: --shard-timeout must be positive", file=sys.stderr)
        return EXIT_USAGE
    if args.shard_retries < 0:
        print("poiagg run: --shard-retries must be non-negative", file=sys.stderr)
        return EXIT_USAGE
    if args.jobs < 1:
        print("poiagg run: --jobs must be at least 1", file=sys.stderr)
        return EXIT_USAGE

    scale = get_scale(args.scale)
    if args.seed is not None:
        scale = scale.with_seed(args.seed)
    sharded = args.sharded or args.jobs > 1

    def run_fn(experiment_id: str, run_scale: ExperimentScale) -> ExperimentResult:
        if sharded and experiment_id in SHARD_AXES:
            return run_sharded(
                experiment_id,
                run_scale,
                max_workers=args.jobs if args.jobs > 1 else None,
                timeout_s=args.shard_timeout,
                retries=args.shard_retries,
                serial_fallback=args.serial_fallback,
                out=args.out,
                resume=args.resume,
            )
        return run_experiment(experiment_id, run_scale)

    def after(run: ExperimentRun) -> None:
        if run.status == "skipped":
            print(f"[{run.experiment_id} skipped: already checkpointed]")
            return
        if run.status == "failed":
            print(f"[{run.experiment_id} FAILED after {run.elapsed_s:.1f}s: {run.error}]")
            return
        print(run.result.render())
        if args.chart:
            from repro.experiments.figure_charts import render_chart

            rendered = render_chart(run.result)
            if rendered is not None:
                print(rendered)
        print(f"[{run.experiment_id} finished in {run.elapsed_s:.1f}s]")
        if args.out is not None:
            print(f"[saved {args.out / f'{run.experiment_id}_{scale.name}.json'}]")
        if args.svg is not None:
            from repro.experiments.svg import save_figure_svg

            svg_path = save_figure_svg(run.result, args.svg)
            if svg_path is not None:
                print(f"[figure written to {svg_path}]")

    summary = run_many(
        ids,
        scale,
        out=args.out,
        keep_going=args.keep_going,
        resume=args.resume,
        run_fn=run_fn,
        after=after,
    )
    if len(ids) > 1 or summary.failed:
        print(summary.render())
    return summary.exit_code


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("scales:")
        for name, scale in SCALES.items():
            print(f"  {name}: n_targets={scale.n_targets}, n_train={scale.n_train}")
        return 0
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "report":
        from repro.experiments.report import write_report

        path = write_report(args.results_dir, args.output)
        print(f"[report written to {path}]")
        return 0
    if args.command == "ingest":
        return _cmd_ingest(args)
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "uniqueness":
        return _cmd_uniqueness(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "federate":
        return _cmd_federate(args)
    if args.command == "crashsweep":
        return _cmd_crashsweep(args)
    if args.command == "check":
        from repro.lint.cli import run_check

        return run_check(args)
    return 2


def _cmd_crashsweep(args: argparse.Namespace) -> int:
    from repro.core.crashsweep import render_report, run_sweeps, save_report
    from repro.experiments.durability import default_scenarios

    scenarios = default_scenarios()
    if args.scenario:
        known = {s.name for s in scenarios}
        unknown = [name for name in args.scenario if name not in known]
        if unknown:
            print(
                f"poiagg crashsweep: unknown scenario {unknown[0]!r}; "
                f"choose from {sorted(known)}",
                file=sys.stderr,
            )
            return 2
        scenarios = [s for s in scenarios if s.name in set(args.scenario)]
    aggregate = run_sweeps(scenarios, seed=args.seed)
    print(render_report(aggregate))
    if args.json is not None:
        path = save_report(aggregate, args.json)
        print(f"[sweep report written to {path}]")
    return 0 if aggregate["passed"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.dp.mechanisms import PrivacyParams
    from repro.serve.config import ServeConfig
    from repro.serve.httpapi import make_server
    from repro.serve.service import ReleaseService

    if args.budget_epsilon <= 0:
        print("poiagg serve: --budget-epsilon must be positive", file=sys.stderr)
        return 2
    if args.queue_capacity < 1 or args.workers < 1 or args.batch_max < 1:
        print(
            "poiagg serve: --queue-capacity, --workers and --batch-max "
            "must be at least 1",
            file=sys.stderr,
        )
        return 2
    city = _city_for(args)
    config = ServeConfig(
        queue_capacity=args.queue_capacity,
        n_workers=args.workers,
        batch_max=args.batch_max,
        attack_audit=args.attack_audit,
    )
    service = ReleaseService(
        city.database,
        PrivacyParams(args.budget_epsilon, args.budget_delta),
        config=config,
        ledger_dir=None if args.ledger_dir is None else str(args.ledger_dir),
        journal_path=None if args.journal is None else str(args.journal),
        seed=args.seed if args.seed is not None else 0,
        epsilon=args.epsilon,
    )
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[0], server.server_address[1]
    print(f"[poiagg serve: {city.name} on http://{host}:{port} ]", flush=True)

    # SIGTERM (the `kill` default, and what CI uses to stop the smoke
    # server) gets the same graceful drain as Ctrl-C.  Background jobs
    # of non-interactive shells start with SIGINT ignored, so SIGTERM
    # is the only reliable stop signal there.  Handlers can only be
    # installed from the main thread; anywhere else (in-process tests)
    # the caller stops the server directly.
    import signal
    import threading

    def _on_sigterm(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _on_sigterm)

    service.start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
    print("[poiagg serve: stopped]")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.serve.loadgen import LOAD_PROFILES, run_loadgen_http

    profile = LOAD_PROFILES[args.profile]
    report = run_loadgen_http(args.url, profile, seed=args.seed)
    from repro.ingest.atomic import atomic_write_text

    atomic_write_text(args.out, json.dumps(report.as_dict(), indent=2) + "\n")
    print(
        f"[loadgen {profile.name}: {report.n_submitted} submitted, "
        f"{report.fates.get('completed', 0)} completed, "
        f"p50={report.latency_s['p50'] * 1e3:.1f}ms "
        f"p95={report.latency_s['p95'] * 1e3:.1f}ms "
        f"p99={report.latency_s['p99'] * 1e3:.1f}ms, "
        f"{report.throughput_rps:.0f} req/s]"
    )
    print(f"[report written to {args.out}]")
    if not report.drained:
        print("poiagg loadgen: drain timed out", file=sys.stderr)
        return 1
    if not report.fates_accounted:
        print("poiagg loadgen: fates unaccounted", file=sys.stderr)
        return 1
    return 0


def _cmd_federate(args: argparse.Namespace) -> int:
    import json

    from repro.core.errors import ConfigError, ReproError
    from repro.dp.mechanisms import PrivacyParams
    from repro.federated import ClientFaultPlan, FederatedConfig, run_campaign
    from repro.ingest.atomic import atomic_write_text

    if args.resume and args.out is None:
        print(
            "poiagg federate: --resume needs --out (checkpoints live in "
            "the output directory)",
            file=sys.stderr,
        )
        return 2
    if args.keep_checkpoints is not None and args.keep_checkpoints < 1:
        print(
            "poiagg federate: --keep-checkpoints must be at least 1",
            file=sys.stderr,
        )
        return 2
    try:
        config = FederatedConfig(
            n_clients=args.clients,
            n_rounds=args.rounds,
            epsilon=args.epsilon,
            delta=args.delta,
            clip_bound=args.clip,
            quorum=args.quorum,
            deadline_s=args.deadline,
            retries=args.retries,
            memory_budget_mb=args.memory_budget,
            chunk_clients=args.chunk_clients,
        )
        rates = {
            f"{fault}_rate": getattr(args, f"{fault}_rate")
            for fault in ("crash", "hang", "malformed", "poisoned", "duplicate")
        }
        fault_plan = None
        if any(rate > 0 for rate in rates.values()):
            fault_plan = ClientFaultPlan(seed=args.fault_seed, **rates)
        budget = (
            None
            if args.budget_epsilon is None
            else PrivacyParams(args.budget_epsilon, args.delta * args.rounds)
        )
    except ConfigError as exc:
        print(f"poiagg federate: {exc}", file=sys.stderr)
        return 2

    city = _city_for(args)
    seed = args.seed if args.seed is not None else 0
    try:
        result = run_campaign(
            city.database,
            config,
            seed,
            budget=budget,
            fault_plan=fault_plan,
            out=args.out,
            resume=args.resume,
            checkpoint_keep_last=args.keep_checkpoints,
        )
    except ReproError as exc:
        print(f"poiagg federate: FAILED [{type(exc).__name__}] {exc}", file=sys.stderr)
        return 1

    print(
        f"[poiagg federate: {city.name}, {config.n_clients} clients, "
        f"quorum {config.quorum_count}, share sigma {config.share_sigma():.3f}]"
    )
    for outcome in result.rounds:
        ledger = outcome.ledger
        status = "committed" if outcome.committed else f"ABORTED ({outcome.abort_reason})"
        resumed = " [resumed]" if outcome.round_id < result.resumed_rounds else ""
        print(
            f"round {outcome.round_id}: {status}{resumed} — "
            f"{ledger.contributed}/{ledger.enrolled} contributed "
            f"(accepted {ledger.accepted}, clipped {ledger.clipped}, "
            f"malformed {ledger.rejected_malformed}, dropped {ledger.dropped_out}, "
            f"late {ledger.refused_late}, duplicates refused "
            f"{ledger.duplicates_refused})"
        )
    assert result.accountant is not None and result.grid is not None
    print(
        f"[{result.n_committed}/{len(result.rounds)} rounds committed, "
        f"epsilon spent {result.accountant.total_epsilon:.3g}, "
        f"{result.grid.n_cells} grid cells]"
    )
    if args.out is not None:
        report = {
            "config": json.loads(config.fingerprint()),
            "seed": seed,
            "rounds": [outcome.as_dict() for outcome in result.rounds],
            "n_committed": result.n_committed,
            "resumed_rounds": result.resumed_rounds,
            "epsilon_spent": result.accountant.total_epsilon,
            "n_cells": result.grid.n_cells,
        }
        path = Path(args.out) / "federated_report.json"
        atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[report written to {path}]")
    return 0 if result.n_committed > 0 else 1


def _detect_format(path: Path) -> "str | None":
    """Guess a dataset file's format from its suffix, then its header."""
    if path.suffix.lower() in (".osm", ".xml"):
        return "osm"
    from repro.ingest.loaders import POI_CSV_HEADER, TRAJECTORY_LOG_HEADER

    try:
        with path.open("rb") as fh:
            header = fh.readline().decode("utf-8", errors="replace").strip()
    except OSError:
        return "poi-csv"  # let the loader produce the typed not-found error
    fields = tuple(header.split(","))
    if fields == TRAJECTORY_LOG_HEADER:
        return "trajectory"
    if fields == POI_CSV_HEADER:
        return "poi-csv"
    return None


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json

    from repro.core.errors import IngestError
    from repro.ingest import atomic_write_text, collecting_ingest_reports

    fmt = args.format
    if fmt == "auto":
        fmt = _detect_format(args.source)
        if fmt is None:
            print(
                f"poiagg ingest: cannot detect the format of {args.source} "
                "(unrecognized header); pass --format explicitly",
                file=sys.stderr,
            )
            return 2
    if fmt == "trajectory" and args.cache_dir is not None:
        print(
            "poiagg ingest: --cache-dir applies to POI databases only "
            "(poi-csv / osm sources)",
            file=sys.stderr,
        )
        return 2

    with collecting_ingest_reports() as reports:
        try:
            if fmt == "poi-csv":
                from repro.poi.io import load_database

                load_database(
                    args.source,
                    policy=args.policy,
                    quarantine_path=args.quarantine,
                    cache_dir=args.cache_dir,
                )
            elif fmt == "osm":
                from repro.poi.osm import load_osm_xml

                load_osm_xml(
                    args.source,
                    policy=args.policy,
                    quarantine_path=args.quarantine,
                    cache_dir=args.cache_dir,
                )
            else:
                from repro.datasets.trajectory_io import load_trajectory_log

                load_trajectory_log(
                    args.source, policy=args.policy, quarantine_path=args.quarantine
                )
        except IngestError as exc:
            print(f"poiagg ingest: REJECTED [{type(exc).__name__}] {exc}", file=sys.stderr)
            return 1

    for report in reports:
        print(report.render())
        if report.quarantine_path is not None:
            print(f"[quarantined records written to {report.quarantine_path}]")
    if args.report is not None and reports:
        payload = [report.as_dict() for report in reports]
        atomic_write_text(
            args.report,
            json.dumps(payload[0] if len(payload) == 1 else payload, indent=2),
        )
        print(f"[report written to {args.report}]")
    return 0


def _city_for(args: argparse.Namespace) -> City:
    from repro.experiments.scale import DEFAULT_SEED
    from repro.poi.cities import CITY_BUILDERS

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    return CITY_BUILDERS[args.city](seed)


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.attacks.base import Release
    from repro.attacks.fine_grained import FineGrainedAttack
    from repro.attacks.region import RegionAttack
    from repro.core.rng import derive_rng
    from repro.geo.point import Point

    city = _city_for(args)
    db = city.database
    target = db.bounds.clamp(Point(args.x, args.y))
    released = db.freq(target, args.radius)
    print(
        f"{city.name}: target ({target.x:.0f}, {target.y:.0f}) m, r={args.radius:.0f} m, "
        f"{int(released.sum())} POIs over {int((released > 0).sum())} types"
    )
    outcome = RegionAttack(db).run(Release(released, args.radius))
    if not outcome.success:
        print(f"attack failed: {len(outcome.candidates)} candidate regions")
        return 0
    region = outcome.region
    print(
        f"re-identified: anchor POI #{region.anchor_poi} "
        f"({db.vocabulary.name_of(outcome.anchor_type)}), "
        f"area {region.area / 1e6:.2f} km^2"
    )
    if args.fine:
        fine = FineGrainedAttack(db, max_aux=20).run(Release(released, args.radius))
        area = fine.search_area_m2(rng=derive_rng(0, "cli-attack"))
        print(
            f"fine-grained: {len(fine.anchors)} auxiliary anchors, "
            f"area {area / 1e6:.3f} km^2"
        )
    return 0


def _cmd_uniqueness(args: argparse.Namespace) -> int:
    from repro.analysis import anchor_statistics, uniqueness_map
    from repro.core.rng import derive_rng

    city = _city_for(args)
    db = city.database
    m = uniqueness_map(db, args.radius, cell_m=args.cell)
    print(f"{city.name} uniqueness map at r = {args.radius / 1000:.1f} km ('#' = unique):")
    print(m.to_ascii())
    print(f"map-level uniqueness: {m.rate:.1%}")
    stats = anchor_statistics(
        db, args.radius, n_samples=300, rng=derive_rng(0, "cli-uniq")
    )
    print(
        f"median anchor: {stats.median_anchor_city_count:.0f} POIs city-wide, "
        f"rank {stats.median_anchor_rank:.0f}/{db.n_types}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
