"""OSM XML import — plug real city extracts into the pipeline.

The paper's datasets are OSM extracts; when a user *does* have network
access they can export an ``.osm`` XML file (e.g. via the Overpass API)
and load it here.  The importer streams node elements, takes the POI
type from the first matching tag key (``amenity`` by default, then
``shop``, ``leisure``, ``tourism``), projects coordinates into a local
planar frame anchored at the extract's centroid, and builds a regular
:class:`~repro.poi.database.POIDatabase` — after which every attack,
defense, and experiment in this package runs on the real city unchanged.

Parsing and validation live in :mod:`repro.ingest.loaders`: real-world
extracts are messy, so every node is validated (missing ``lat``/``lon``
on a POI node, unparsable or out-of-range coordinates, duplicate node
ids, truncated XML) and classified into the typed
:class:`~repro.core.errors.IngestError` taxonomy under the selected
policy.  Only stdlib XML parsing is used, so the importer works offline.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.geo.point import GeoPoint
from repro.ingest.loaders import DEFAULT_TYPE_KEYS, ingest_osm_xml
from repro.ingest.report import IngestReport, record_ingest_report
from repro.poi.database import POIDatabase

__all__ = ["load_osm_xml", "DEFAULT_TYPE_KEYS"]


def load_osm_xml(
    path: "str | Path",
    type_keys: Sequence[str] = DEFAULT_TYPE_KEYS,
    anchor: "GeoPoint | None" = None,
    cell_size: float = 500.0,
    *,
    policy: str = "strict",
    quarantine_path: "str | Path | None" = None,
    cache_dir: "str | Path | None" = None,
) -> POIDatabase:
    """Parse an ``.osm`` XML file into a :class:`POIDatabase`.

    Parameters
    ----------
    path:
        The OSM XML export.
    type_keys:
        Tag keys that define POI types; nodes without any of them are
        skipped (they are geometry, not POIs).
    anchor:
        Projection anchor; defaults to the centroid of the kept nodes.
    cell_size:
        Grid-index cell size for the resulting database.
    policy:
        Ingest policy (``strict`` / ``repair`` / ``quarantine``); see
        :mod:`repro.ingest`.
    quarantine_path:
        Override for the quarantine sidecar location.
    cache_dir:
        With a directory set, serve/commit the parsed database through
        the checksummed atomic :class:`~repro.ingest.cache.DatasetCache`
        keyed on the extract's content digest.
    """
    path = Path(path)
    if cache_dir is None:
        db, _report = ingest_osm_xml(
            path,
            policy=policy,
            type_keys=type_keys,
            anchor=anchor,
            cell_size=cell_size,
            quarantine_path=quarantine_path,
        )
        return db

    # Deferred for the same reason as in repro.poi.io: importing the
    # cache at module top closes an import cycle through repro.ingest's
    # package init whenever repro.ingest.* is imported first.
    from repro.ingest.cache import DatasetCache

    cache = DatasetCache(cache_dir)
    parse_reports: list[IngestReport] = []

    def build() -> POIDatabase:
        db, report = ingest_osm_xml(
            path,
            policy=policy,
            type_keys=type_keys,
            anchor=anchor,
            cell_size=cell_size,
            quarantine_path=quarantine_path,
        )
        parse_reports.append(report)
        return db

    db, status = cache.load_or_build(path, build, cell_size=cell_size)
    if parse_reports:
        parse_reports[0].cache = status
    else:
        record_ingest_report(
            IngestReport(
                path=str(path),
                format="osm-xml",
                policy=policy,
                n_records=len(db),
                counts={"ok": len(db), "repaired": 0, "quarantined": 0},
                cache="hit",
            )
        )
    return db
