"""Tests for the trajectory-uniqueness attack and its distance regressor."""

import numpy as np
import pytest

from repro.attacks.trajectory import (
    DistanceRegressor,
    PairRelease,
    TrajectoryAttack,
)
from repro.core.errors import AttackError, NotFittedError
from repro.core.rng import derive_rng
from repro.datasets.tdrive import TaxiFleetConfig, synthesize_taxi_trajectories
from repro.datasets.trajectory import extract_release_pairs


@pytest.fixture(scope="module")
def training_data():
    from repro.poi.cities import small_city

    city = small_city(seed=7)
    db = city.database
    config = TaxiFleetConfig(n_taxis=60, trips_per_taxi=4)
    trajs = synthesize_taxi_trajectories(db, config, rng=derive_rng(1, "fleet"))
    pairs = extract_release_pairs(trajs, max_gap_s=600.0)
    radius = 600.0
    usable = []
    for p in pairs:
        f1 = db.freq(p.first.location, radius)
        f2 = db.freq(p.second.location, radius)
        usable.append(
            (
                p,
                PairRelease(f1, f2, p.first.timestamp, p.second.timestamp),
            )
        )
    return city, db, radius, usable


class TestPairRelease:
    def test_metadata_fields(self):
        rel = PairRelease(np.zeros(3), np.zeros(3), 3_600.0 * 30, 3_600.0 * 30 + 300)
        assert rel.duration == 300.0
        assert rel.hour_of_day == 6
        assert rel.day_of_week == 1


class TestDistanceRegressor:
    def test_learns_duration_distance_relation(self, training_data):
        _, _, _, usable = training_data
        releases = [rel for _, rel in usable]
        distances = np.array([p.distance for p, _ in usable])
        split = len(usable) // 2
        reg = DistanceRegressor().fit(releases[:split], distances[:split])
        pred = reg.predict(releases[split:])
        truth = distances[split:]
        # Predicting with the model must beat predicting the mean.
        baseline = np.abs(truth - distances[:split].mean()).mean()
        model_err = np.abs(truth - pred).mean()
        assert model_err < baseline

    def test_tolerance_reflects_band_quantile(self, training_data):
        _, _, _, usable = training_data
        releases = [rel for _, rel in usable][:200]
        distances = np.array([p.distance for p, _ in usable])[:200]
        tight = DistanceRegressor().fit(releases, distances, band_quantile=0.5)
        loose = DistanceRegressor().fit(releases, distances, band_quantile=0.95)
        assert tight.tolerance_m < loose.tolerance_m

    def test_too_few_pairs_raise(self):
        with pytest.raises(AttackError):
            DistanceRegressor().fit([], np.array([]))

    def test_length_mismatch_raises(self, training_data):
        _, _, _, usable = training_data
        releases = [rel for _, rel in usable][:20]
        with pytest.raises(AttackError):
            DistanceRegressor().fit(releases, np.zeros(5))

    def test_predict_before_fit_raises(self):
        reg = DistanceRegressor()
        with pytest.raises(NotFittedError):
            reg.predict([PairRelease(np.zeros(2), np.zeros(2), 0.0, 60.0)])
        with pytest.raises(NotFittedError):
            _ = reg.tolerance_m


class TestTrajectoryAttack:
    @pytest.fixture(scope="class")
    def attack(self, training_data):
        _, db, _, usable = training_data
        releases = [rel for _, rel in usable]
        distances = np.array([p.distance for p, _ in usable])
        split = len(usable) // 2
        reg = DistanceRegressor().fit(releases[:split], distances[:split])
        return TrajectoryAttack(db, reg), usable[split:]

    def test_enhanced_never_worse_when_single_succeeds(self, training_data, attack):
        _, db, radius, _ = training_data
        atk, test_pairs = attack
        for _, rel in test_pairs[:60]:
            outcome = atk.run(rel, radius)
            if outcome.single.success:
                assert outcome.enhanced.success
                assert outcome.enhanced.candidates == outcome.single.candidates

    def test_enhanced_candidates_subset_of_single(self, training_data, attack):
        _, db, radius, _ = training_data
        atk, test_pairs = attack
        from repro.attacks.region import RegionAttack

        region = RegionAttack(db)
        for _, rel in test_pairs[:60]:
            outcome = atk.run(rel, radius)
            _, base_candidates = region.candidate_set(rel.freq_first, radius)
            assert set(outcome.enhanced.candidates) <= set(base_candidates.tolist()) | set(
                outcome.single.candidates
            )

    def test_gain_flag_consistency(self, training_data, attack):
        _, _, radius, _ = training_data
        atk, test_pairs = attack
        for _, rel in test_pairs[:60]:
            outcome = atk.run(rel, radius)
            assert outcome.gain == (outcome.enhanced.success and not outcome.single.success)

    def test_attack_improves_success_rate(self, training_data, attack):
        """The headline of Fig. 8: pairs raise the overall success rate."""
        _, _, radius, _ = training_data
        atk, test_pairs = attack
        n_single = n_enhanced = 0
        for _, rel in test_pairs:
            outcome = atk.run(rel, radius)
            n_single += outcome.single.success
            n_enhanced += outcome.enhanced.success
        assert n_enhanced >= n_single
