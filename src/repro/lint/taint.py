"""Privacy-taint analysis (PL011) and exception-edge spend checks (PL012).

The invariant, from the paper's defense contract: no value derived from
a raw per-user frequency aggregate may cross a release boundary without
passing through a defense mechanism.  Here that is a classic taint
problem over the :class:`~repro.lint.dataflow.FactsDB` call graph:

* **sources** — ``POIDatabase`` frequency producers (``freq``,
  ``freq_batch``, ``anchor_freqs``, ``freq_bounds``, ``freq_at_poi``)
  and federated client payloads (``contribution_batch``);
* **sanitizers** — defense-layer ``apply`` / ``release`` /
  ``sanitize`` / ``sanitize_vector`` calls (the defense object is the
  accountant-guarded boundary: PL002 and PL012 police the spend);
* **sinks** — HTTP response writers, journal/WAL appends, checkpoint
  and artifact writers, and job-result finalization in the
  ``repro.serve`` / ``repro.federated`` / ``repro.ingest`` release
  modules.

Taint is propagated intraprocedurally in statement order (with
positional precision through ``zip`` unpacking — tainting every loop
variable of ``for job, vector in zip(granted, results)`` would drown
the analysis in false positives), and interprocedurally two ways:
bottom-up *summaries* (which params flow to the return value, which
returns are source-fresh) and a top-down fixpoint pushing concrete
taint into callee parameters.  Scalar aggregations (``len``, ``int``,
``float``, comparisons) deliberately kill taint: a queue depth derived
from tainted rows is not a per-user release.

PL012 is a separate, syntactic-plus-summary check: an
``accountant.spend`` inside a ``try`` whose handler swallows the
exception while the release below still executes means the mechanism
can run unmetered exactly when the ledger is refusing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.callgraph import FunctionInfo
from repro.lint.dataflow import FactsDB, FunctionFacts, _violation
from repro.lint.engine import Violation

__all__ = ["analyze_taint"]

#: Method spellings that produce raw per-user frequency aggregates.
_SOURCE_METHODS = {
    "freq",
    "freq_batch",
    "freq_at_poi",
    "freq_bounds",
    "anchor_freqs",
    "contribution_batch",
}

#: Sanitizing method names; ``apply``/``release`` additionally require a
#: defense-ish receiver spelling (they are too generic alone).
_SANITIZER_METHODS = {"apply", "release", "sanitize", "sanitize_vector"}
_SANITIZER_RECEIVER_HINTS = (
    "defense",
    "sanitiz",
    "mechanism",
    "fallback",
    "laplace",
    "noise",
    "cloak",
)

#: Builtins whose result is a scalar/boolean aggregate, not the data.
_SCALAR_KILLS = {
    "len",
    "int",
    "float",
    "bool",
    "str",
    "abs",
    "round",
    "min",
    "max",
    "sum",
    "any",
    "all",
    "isinstance",
    "hasattr",
    "repr",
    "format",
    "id",
    "hash",
}

#: Modules whose writes are release boundaries.
_SINK_SCOPE = ("repro.serve", "repro.federated", "repro.ingest")


def _in_scope(module: str) -> bool:
    return any(
        module == p or module.startswith(p + ".") for p in _SINK_SCOPE
    )


def _receiver_spelling(func: ast.expr) -> str:
    if isinstance(func, ast.Attribute):
        try:
            return ast.unparse(func.value).lower()
        except Exception:
            return ""
    return ""


@dataclass
class _Summary:
    """Bottom-up summary: what flows out of a function's return value."""

    # Tags over {"param:<i>", "src:<label>"}.
    return_tags: set[str] = field(default_factory=set)


class _Evaluator:
    """One in-order taint walk of a function body."""

    def __init__(
        self,
        analysis: "TaintAnalysis",
        facts: FunctionFacts,
        param_tags: dict[str, set[str]],
        *,
        report: bool,
    ) -> None:
        self.analysis = analysis
        self.facts = facts
        self.fn = facts.fn
        self.env: dict[str, set[str]] = {
            name: set(tags) for name, tags in param_tags.items()
        }
        self.return_tags: set[str] = set()
        self.report = report
        self.violations: list[Violation] = []

    def run(self) -> None:
        # Two passes: the second catches loop-carried and
        # defined-later-used-earlier flows (env only grows).
        self._walk(self.fn.node.body)
        self._walk(self.fn.node.body)

    # ------------------------------------------------------------------

    def _walk(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            tags = self._expr(stmt.value)
            root = self._root_name(stmt.target)
            if root is not None:
                self.env.setdefault(root, set()).update(tags)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_tags |= self._expr(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_loop_target(stmt.target, stmt.iter)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tags = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, tags)
            self._walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body)
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expr(stmt.exc)
        else:
            # Leaf statements (Assert, Delete, Global, Pass, ...): walk
            # calls so sinks inside them are still observed.
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._call(node)

    # ------------------------------------------------------------------

    @staticmethod
    def _root_name(expr: ast.expr) -> str | None:
        cur = expr
        while isinstance(cur, (ast.Attribute, ast.Subscript, ast.Starred)):
            cur = cur.value
        return cur.id if isinstance(cur, ast.Name) else None

    def _bind(self, target: ast.expr, tags: set[str]) -> None:
        if isinstance(target, ast.Name):
            self.env.setdefault(target.id, set()).update(tags)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tags)
        elif isinstance(target, (ast.Attribute, ast.Subscript, ast.Starred)):
            # Field-insensitive store: the container/object absorbs taint.
            root = self._root_name(target)
            if root is not None:
                self.env.setdefault(root, set()).update(tags)

    def _assign(self, targets: list[ast.expr], value: ast.expr) -> None:
        tags = self._expr(value)
        positional = self._positional_tags(value)
        for target in targets:
            if positional is not None and isinstance(
                target, (ast.Tuple, ast.List)
            ) and len(target.elts) == len(positional):
                for elt, elt_tags in zip(target.elts, positional):
                    self._bind(elt, elt_tags)
            else:
                self._bind(target, tags)

    def _bind_loop_target(self, target: ast.expr, iter_expr: ast.expr) -> None:
        positional = self._positional_tags(iter_expr)
        iter_tags = self._expr(iter_expr)
        if positional is not None and isinstance(
            target, (ast.Tuple, ast.List)
        ) and len(target.elts) == len(positional):
            for elt, elt_tags in zip(target.elts, positional):
                self._bind(elt, elt_tags)
        else:
            self._bind(target, iter_tags)

    def _positional_tags(self, expr: ast.expr) -> list[set[str]] | None:
        """Per-position taint for ``zip(...)``/``enumerate(...)`` iterables.

        ``for job, vector in zip(granted, results)`` must taint only
        ``vector`` when only ``results`` is tainted.
        """
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        if isinstance(func, ast.Name) and func.id == "zip":
            return [self._expr(arg) for arg in expr.args]
        if isinstance(func, ast.Name) and func.id == "enumerate" and expr.args:
            return [set(), self._expr(expr.args[0])]
        if isinstance(func, ast.Attribute) and func.attr == "items":
            base = self._expr(func.value)
            return [base, base]
        return None

    # ------------------------------------------------------------------

    def _expr(self, expr: ast.expr) -> set[str]:
        if isinstance(expr, ast.Name):
            return set(self.env.get(expr.id, ()))
        if isinstance(expr, ast.Constant):
            return set()
        if isinstance(expr, ast.Attribute):
            return self._expr(expr.value)
        if isinstance(expr, ast.Subscript):
            return self._expr(expr.value)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Compare):
            for side in [expr.left, *expr.comparators]:
                self._expr(side)
            return set()  # a boolean is an aggregate, not the data
        if isinstance(expr, ast.BinOp):
            return self._expr(expr.left) | self._expr(expr.right)
        if isinstance(expr, ast.BoolOp):
            tags: set[str] = set()
            for value in expr.values:
                tags |= self._expr(value)
            return tags
        if isinstance(expr, ast.UnaryOp):
            return self._expr(expr.operand)
        if isinstance(expr, ast.IfExp):
            self._expr(expr.test)
            return self._expr(expr.body) | self._expr(expr.orelse)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            tags = set()
            for elt in expr.elts:
                tags |= self._expr(elt)
            return tags
        if isinstance(expr, ast.Dict):
            tags = set()
            for key in expr.keys:
                if key is not None:
                    tags |= self._expr(key)
            for value in expr.values:
                tags |= self._expr(value)
            return tags
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for gen in expr.generators:
                self._bind_loop_target(gen.target, gen.iter)
                for cond in gen.ifs:
                    self._expr(cond)
            if isinstance(expr, ast.DictComp):
                return self._expr(expr.key) | self._expr(expr.value)
            return self._expr(expr.elt)
        if isinstance(expr, ast.JoinedStr):
            tags = set()
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    tags |= self._expr(value.value)
            return tags
        if isinstance(expr, ast.Starred):
            return self._expr(expr.value)
        if isinstance(expr, ast.Await):
            return self._expr(expr.value)
        if isinstance(expr, ast.Slice):
            return set()
        if isinstance(expr, ast.Lambda):
            return set()
        if isinstance(expr, ast.NamedExpr):
            tags = self._expr(expr.value)
            self._bind(expr.target, tags)
            return tags
        return set()

    # ------------------------------------------------------------------

    def _call(self, call: ast.Call) -> set[str]:
        func = call.func
        callee = self.facts.resolution.get(id(call))
        arg_tags = [self._expr(arg) for arg in call.args]
        kw_tags = {
            kw.arg: self._expr(kw.value) for kw in call.keywords if kw.arg
        }
        star_tags: set[str] = set()
        for kw in call.keywords:
            if kw.arg is None:
                star_tags |= self._expr(kw.value)
        receiver_tags: set[str] = set()
        method = None
        if isinstance(func, ast.Attribute):
            method = func.attr
            receiver_tags = self._expr(func.value)

        # Sources: raw aggregate producers.
        if method in _SOURCE_METHODS or (
            callee is not None and callee.rsplit(".", 1)[-1] in _SOURCE_METHODS
        ):
            label = method or callee.rsplit(".", 1)[-1]  # type: ignore[union-attr]
            return {f"src:{label}@{self.fn.qualname}"}

        # Sanitizers: the defense boundary launders the value.
        if self._is_sanitizer(call, callee, method):
            return set()

        if self.report:
            self._check_sink(call, callee, method, arg_tags, kw_tags)

        # Project callees: apply the summary; record incoming param taint.
        if callee is not None and callee in self.analysis.summaries:
            target_fn = self.analysis.db.facts[callee].fn
            self.analysis.push_incoming(
                target_fn, call, arg_tags, kw_tags, receiver_tags,
                is_method_call=isinstance(func, ast.Attribute),
            )
            summary = self.analysis.summaries[callee]
            result: set[str] = set()
            for tag in summary.return_tags:
                if tag.startswith("param:"):
                    idx = int(tag.split(":", 1)[1])
                    result |= self._tags_for_param(
                        target_fn, idx, arg_tags, kw_tags, receiver_tags,
                        is_method_call=isinstance(func, ast.Attribute),
                    )
                else:
                    result.add(tag)
            return result

        # Constructors of project classes: the instance absorbs its args.
        if callee is not None and callee in self.analysis.db.index.classes:
            tags = receiver_tags | star_tags
            for t in arg_tags:
                tags |= t
            for t in kw_tags.values():
                tags |= t
            init = self.analysis.db.index.lookup_method(callee, "__init__")
            if init is not None:
                self.analysis.push_incoming(
                    init, call, arg_tags, kw_tags, set(), is_method_call=True
                )
            return tags

        # Scalar aggregations kill taint.
        if isinstance(func, ast.Name) and func.id in _SCALAR_KILLS:
            return set()
        if callee in _SCALAR_KILLS:
            return set()

        # Unknown call: conservative union of everything flowing in.
        tags = receiver_tags | star_tags
        for t in arg_tags:
            tags |= t
        for t in kw_tags.values():
            tags |= t
        return tags

    @staticmethod
    def _tags_for_param(
        target_fn: FunctionInfo,
        idx: int,
        arg_tags: list[set[str]],
        kw_tags: dict[str, set[str]],
        receiver_tags: set[str],
        *,
        is_method_call: bool,
    ) -> set[str]:
        offset = 1 if (target_fn.cls is not None and is_method_call) else 0
        if target_fn.cls is not None and is_method_call and idx == 0:
            return set(receiver_tags)
        pos = idx - offset
        if 0 <= pos < len(arg_tags):
            return set(arg_tags[pos])
        if 0 <= idx < len(target_fn.params):
            return set(kw_tags.get(target_fn.params[idx], set()))
        return set()

    def _is_sanitizer(
        self, call: ast.Call, callee: str | None, method: str | None
    ) -> bool:
        if method is None:
            return False
        if method not in _SANITIZER_METHODS:
            return False
        if method in ("sanitize", "sanitize_vector"):
            return True
        # apply/release are generic: require a defense-ish receiver or a
        # resolved defense-layer callee.
        if callee is not None and (
            ".defense." in callee
            or callee.startswith("repro.defense")
            or ".dp." in callee
        ):
            return True
        spelled = _receiver_spelling(call.func)
        return any(hint in spelled for hint in _SANITIZER_RECEIVER_HINTS)

    # ------------------------------------------------------------------

    def _check_sink(
        self,
        call: ast.Call,
        callee: str | None,
        method: str | None,
        arg_tags: list[set[str]],
        kw_tags: dict[str, set[str]],
    ) -> None:
        if not _in_scope(self.fn.module):
            return
        spelled = _receiver_spelling(call.func)
        any_arg = set().union(*arg_tags) if arg_tags else set()
        any_kw = set().union(*kw_tags.values()) if kw_tags else set()
        flowing = any_arg | any_kw

        sink_desc: str | None = None
        tainted: set[str] = set()
        name = callee.rsplit(".", 1)[-1] if callee else ""
        if method == "_send" or (
            isinstance(call.func, ast.Name) and call.func.id == "_send"
        ):
            sink_desc, tainted = "the HTTP response body", flowing
        elif method == "write" and "wfile" in spelled:
            sink_desc, tainted = "the HTTP response stream", flowing
        elif method in ("event", "write", "record") and (
            "journal" in spelled or "_wal" in spelled
        ):
            sink_desc, tainted = "the journal/WAL", flowing
        elif name.startswith("atomic_write") or name == "atomic_writer":
            data = set().union(*arg_tags[1:]) if len(arg_tags) > 1 else set()
            data |= any_kw
            sink_desc, tainted = "an on-disk artifact", data
        elif method in ("write_text", "write_bytes"):
            sink_desc, tainted = "an on-disk artifact", flowing
        elif method == "release" and "merger" in spelled:
            sink_desc, tainted = "the streaming aggregate release", flowing
        elif callee == "json.dump":
            sink_desc, tainted = "a serialized artifact", (
                arg_tags[0] if arg_tags else set()
            )
        elif method == "finalize":
            sink_desc, tainted = "the job result store", set(
                kw_tags.get("result", set())
            )
        if sink_desc is None:
            return
        sources = sorted(t[4:] for t in tainted if t.startswith("src:"))
        if not sources:
            return
        self.violations.append(
            _violation(
                "PL011",
                self.fn.path,
                call,
                f"raw aggregate data reaches {sink_desc} without a defense: "
                f"value tainted by {', '.join(sources)} flows into this "
                "release boundary unsanitized — route it through a "
                "defense.apply/release (with its accountant spend) first",
            )
        )


class TaintAnalysis:
    """Summary computation, top-down propagation, and the report pass."""

    def __init__(self, db: FactsDB) -> None:
        self.db = db
        self.summaries: dict[str, _Summary] = {
            q: _Summary() for q in db.facts
        }
        self.incoming: dict[str, dict[int, set[str]]] = {q: {} for q in db.facts}
        self._dirty: set[str] = set()

    # -- interprocedural bookkeeping -----------------------------------

    def push_incoming(
        self,
        target_fn: FunctionInfo,
        call: ast.Call,
        arg_tags: list[set[str]],
        kw_tags: dict[str, set[str]],
        receiver_tags: set[str],
        *,
        is_method_call: bool,
    ) -> None:
        qualname = target_fn.qualname
        params = target_fn.params
        cls = target_fn.cls
        offset = 1 if (cls is not None and is_method_call) else 0
        slot = self.incoming.setdefault(qualname, {})
        changed = False

        def _add(idx: int, tags: set[str]) -> None:
            nonlocal changed
            concrete = {t for t in tags if t.startswith("src:")}
            if not concrete:
                return
            have = slot.setdefault(idx, set())
            if not concrete <= have:
                have |= concrete
                changed = True

        if offset and receiver_tags:
            _add(0, receiver_tags)
        for pos, tags in enumerate(arg_tags):
            _add(pos + offset, tags)
        for kw_name, tags in kw_tags.items():
            if kw_name in params:
                _add(params.index(kw_name), tags)
        if changed:
            self._dirty.add(qualname)

    def _param_tags(self, facts: FunctionFacts, *, symbolic: bool) -> dict[str, set[str]]:
        tags: dict[str, set[str]] = {}
        inc = self.incoming.get(facts.fn.qualname, {})
        for idx, name in enumerate(facts.fn.params):
            tags[name] = set(inc.get(idx, set()))
            if symbolic:
                tags[name].add(f"param:{idx}")
        return tags

    # -- phases --------------------------------------------------------

    def run(self) -> list[Violation]:
        order = sorted(self.db.facts)
        # Phase 1: bottom-up summaries to a fixpoint (tags only grow).
        pending = set(order)
        while pending:
            qualname = sorted(pending)[0]
            pending.discard(qualname)
            facts = self.db.facts[qualname]
            ev = _Evaluator(
                self, facts, self._param_tags(facts, symbolic=True), report=False
            )
            ev.run()
            if not ev.return_tags <= self.summaries[qualname].return_tags:
                self.summaries[qualname].return_tags |= ev.return_tags
                pending |= self.db.callers.get(qualname, set())
        # Phase 2: top-down incoming-taint fixpoint.
        self._dirty = set(order)
        rounds = 0
        while self._dirty and rounds < 50:
            rounds += 1
            batch, self._dirty = sorted(self._dirty), set()
            for qualname in batch:
                facts = self.db.facts[qualname]
                ev = _Evaluator(
                    self,
                    facts,
                    self._param_tags(facts, symbolic=False),
                    report=False,
                )
                ev.run()
        # Phase 3: report sinks with the final incoming taint.
        violations: list[Violation] = []
        for qualname in order:
            facts = self.db.facts[qualname]
            if not _in_scope(facts.fn.module):
                continue
            ev = _Evaluator(
                self, facts, self._param_tags(facts, symbolic=False), report=True
            )
            ev.run()
            violations.extend(ev.violations)
        violations.extend(self._check_exception_edges())
        # The report pass visits each function once but the evaluator
        # walks bodies twice; dedupe identical findings.
        unique = {
            (v.path, v.line, v.col, v.rule_id, v.message): v for v in violations
        }
        return [unique[k] for k in sorted(unique)]

    # -- PL012 ---------------------------------------------------------

    def _check_exception_edges(self) -> list[Violation]:
        violations: list[Violation] = []
        for qualname in sorted(self.db.facts):
            facts = self.db.facts[qualname]
            body = facts.fn.node
            for node in ast.walk(body):
                if not isinstance(node, ast.Try):
                    continue
                if not self._spends(node.body):
                    continue
                swallowing = [
                    h for h in node.handlers if self._swallows(h)
                ]
                if not swallowing:
                    continue
                if not self._releases_after(body, node):
                    continue
                for handler in swallowing:
                    violations.append(
                        _violation(
                            "PL012",
                            facts.fn.path,
                            handler,
                            "accountant spend inside this try can be "
                            "skipped: the handler swallows the exception "
                            "and the release below still executes, so the "
                            "mechanism runs unmetered exactly when the "
                            "ledger refuses — re-raise, or return the "
                            "refusal instead of falling through",
                        )
                    )
        return violations

    @staticmethod
    def _spends(body: list[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("spend", "try_spend", "spend_batch")
                ):
                    spelled = _receiver_spelling(node.func)
                    if "account" in spelled or "ledger" in spelled:
                        return True
        return False

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return False
        if handler.body and isinstance(
            handler.body[-1], (ast.Return, ast.Break, ast.Continue)
        ):
            return False  # the except path exits before the release
        return True

    def _releases_after(
        self, fn_node: ast.FunctionDef | ast.AsyncFunctionDef, try_node: ast.Try
    ) -> bool:
        boundary = try_node.end_lineno or try_node.lineno
        for node in ast.walk(fn_node):
            lineno = getattr(node, "lineno", 0)
            if lineno <= boundary:
                continue
            if isinstance(node, ast.Return) and node.value is not None:
                if not (
                    isinstance(node.value, ast.Constant)
                    and node.value.value is None
                ):
                    return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SANITIZER_METHODS
            ):
                return True
        return False


def analyze_taint(db: FactsDB) -> list[Violation]:
    """PL011 + PL012 over the project facts."""
    return TaintAnalysis(db).run()
