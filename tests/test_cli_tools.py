"""Tests for the attack/uniqueness CLI commands."""

import pytest

from repro.cli import build_parser, main


class TestAttackCommand:
    def test_parses(self):
        args = build_parser().parse_args(
            ["attack", "--city", "small", "--x", "5000", "--y", "5000"]
        )
        assert args.city == "small" and args.radius == 2_000.0

    def test_runs_and_reports(self, capsys):
        assert main(["attack", "--city", "small", "--x", "5000", "--y", "5000", "--radius", "900"]) == 0
        out = capsys.readouterr().out
        assert "small: target" in out
        assert ("re-identified" in out) or ("attack failed" in out)

    def test_fine_flag(self, capsys):
        main(
            [
                "attack",
                "--city",
                "small",
                "--x",
                "5200",
                "--y",
                "4800",
                "--radius",
                "1500",
                "--fine",
            ]
        )
        out = capsys.readouterr().out
        # Fine-grained output appears only when the base attack succeeds.
        assert ("fine-grained" in out) or ("attack failed" in out)

    def test_out_of_city_coordinates_clamped(self, capsys):
        assert main(["attack", "--city", "small", "--x=-1e9", "--y", "1e9"]) == 0
        assert "target (0," in capsys.readouterr().out

    def test_rejects_unknown_city(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--city", "gotham", "--x", "0", "--y", "0"])


class TestUniquenessCommand:
    def test_runs_and_prints_map(self, capsys):
        assert main(["uniqueness", "--city", "small", "--radius", "800", "--cell", "2000"]) == 0
        out = capsys.readouterr().out
        assert "uniqueness map" in out
        assert "map-level uniqueness" in out
        assert "median anchor" in out

    def test_map_dimensions_follow_cell(self, capsys):
        main(["uniqueness", "--city", "small", "--radius", "800", "--cell", "5000"])
        out = capsys.readouterr().out
        grid_lines = [l for l in out.splitlines() if l and set(l) <= {"#", "."}]
        assert len(grid_lines) == 2  # 10 km city / 5 km cells
