"""poiagg — reproduction of "Practical Location Privacy Attacks and Defense
on Point-of-interest Aggregates" (Tong et al., ICDCS 2021).

The package is organised by layer:

* :mod:`repro.core` — errors, RNG discipline.
* :mod:`repro.geo` — planar geometry, spatial indexes, disk regions.
* :mod:`repro.poi` — POI databases (the geo-information provider), the
  synthetic Beijing/NYC cities.
* :mod:`repro.datasets` — target samplers: synthetic T-drive taxi traces,
  Foursquare-style check-ins, uniform random locations.
* :mod:`repro.ml` — from-scratch SVM family (SMO SVC, kernel regression).
* :mod:`repro.dp` — Gaussian/Laplace mechanisms, planar Laplace, accounting.
* :mod:`repro.attacks` — region re-identification, the fine-grained attack,
  the trajectory-uniqueness attack, the anti-sanitization recovery attack.
* :mod:`repro.defense` — sanitization, geo-indistinguishability, spatial
  k-cloaking, the optimization-based release, and the DP release mechanism.
* :mod:`repro.experiments` — one runner per figure of the paper.

Quickstart (seed discipline included: generators derive from the
experiment seed via :mod:`repro.core.rng`, per lint rule PL001)::

    from repro.attacks import RegionAttack, Release
    from repro.core.rng import derive_rng
    from repro.poi import beijing

    city = beijing()
    db = city.database
    target = city.interior(2000.0).sample_point(derive_rng(1, "quickstart"))
    outcome = RegionAttack(db).run(Release(db.freq(target, 2000.0), 2000.0))
    print(outcome.success, outcome.region)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
