"""Chaos suite for supervised shard execution.

Drives every supervision path with the seeded :class:`WorkerFaultPlan`:
workers killed mid-shard, workers hung past the timeout, deterministic
retry success on attempt 2, serial fallback after persistent crashes,
and bit-identity of resumed-vs-uninterrupted sharded runs.

``POIAGG_CHAOS_SEEDS`` (space-separated ints) widens the seeded chaos
sweep; CI runs it with several seeds.
"""

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.core.errors import ConfigError, ShardError
from repro.experiments.fig4_geoind import run_fig4
from repro.experiments.parallel import run_sharded
from repro.experiments.scale import ExperimentScale
from repro.experiments.supervisor import (
    ShardPolicy,
    ShardReport,
    WorkerFaultPlan,
    clear_shard_checkpoints,
    shard_checkpoint_path,
    shard_journal_path,
    supervise_shards,
)

MICRO = ExperimentScale(
    name="ci",
    n_targets=12,
    n_train=50,
    n_validation=20,
    n_area_samples=1_000,
    n_taxis=10,
    n_users=8,
    seed=5,
)

KW = dict(radii=(1_000.0,), epsilons=(0.1,))
SHARDS = ("bj_random", "nyc_random")

#: Fast polling so fault-path tests spend milliseconds, not heartbeats.
FAST = dict(poll_interval_s=0.01, heartbeat_interval_s=0.05)

CHAOS_SEEDS = [int(s) for s in os.environ.get("POIAGG_CHAOS_SEEDS", "0").split()]


@pytest.fixture(scope="module")
def serial_rows():
    """Rows of the uninterrupted serial run every chaos run must match."""
    return run_fig4(MICRO, datasets=SHARDS, **KW).rows


def _journal_events(out) -> list[str]:
    lines = shard_journal_path(out).read_text().strip().splitlines()
    return [json.loads(line)["event"] for line in lines]


def _reports_by_shard(result) -> dict:
    return {r["shard"]: r for r in result.provenance["sharding"]["shards"]}


class TestWorkerFaultPlan:
    def test_rate_validation(self):
        with pytest.raises(ConfigError):
            WorkerFaultPlan(crash_rate=1.2)
        with pytest.raises(ConfigError):
            WorkerFaultPlan(crash_rate=0.6, hang_rate=0.6)
        with pytest.raises(ConfigError):
            WorkerFaultPlan(hang_s=-1.0)
        with pytest.raises(ConfigError):
            WorkerFaultPlan(overrides=(("a", "explode"),))

    def test_decide_is_deterministic_per_shard_and_attempt(self):
        plan = WorkerFaultPlan(crash_rate=0.4, hang_rate=0.3, error_rate=0.3, seed=7,
                               max_faults_per_shard=3)
        fates = [plan.decide("bj_random", a) for a in (1, 2, 3)]
        assert fates == [plan.decide("bj_random", a) for a in (1, 2, 3)]

    def test_attempts_beyond_budget_are_healthy(self):
        plan = WorkerFaultPlan(crash_rate=1.0, max_faults_per_shard=2)
        assert plan.decide("x", 1) == "crash"
        assert plan.decide("x", 2) == "crash"
        assert plan.decide("x", 3) is None

    def test_overrides_pin_fates(self):
        plan = WorkerFaultPlan(crash_rate=1.0, overrides=(("safe", "ok"), ("h", "hang")))
        assert plan.decide("safe", 1) is None
        assert plan.decide("h", 1) == "hang"
        assert plan.decide("other", 1) == "crash"


class TestShardPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ShardPolicy(timeout_s=0)
        with pytest.raises(ConfigError):
            ShardPolicy(retries=-1)
        with pytest.raises(ConfigError):
            ShardPolicy(poll_interval_s=0)

    def test_max_attempts(self):
        assert ShardPolicy(retries=2).max_attempts == 3


class TestSupervisionPaths:
    def test_worker_killed_mid_shard_is_retried_on_fresh_worker(self, serial_rows, tmp_path):
        """Crash isolation + deterministic retry success on attempt 2."""
        plan = WorkerFaultPlan(crash_rate=1.0, max_faults_per_shard=1)
        result = run_sharded(
            "fig4", MICRO, shards=SHARDS, max_workers=2, retries=1,
            out=tmp_path, fault_plan=plan,
            policy=ShardPolicy(retries=1, **FAST), **KW,
        )
        assert result.rows == serial_rows  # bit-identical despite the chaos
        for report in _reports_by_shard(result).values():
            assert report["status"] == "retried"
            assert report["attempts"] == 2
        events = _journal_events(tmp_path)
        assert "crashed" in events and "retry" in events and events[-1] == "done"

    def test_hung_worker_is_killed_at_timeout_and_retried(self, serial_rows, tmp_path):
        plan = WorkerFaultPlan(
            overrides=(("bj_random", "hang"),), hang_s=60.0, max_faults_per_shard=1
        )
        result = run_sharded(
            "fig4", MICRO, shards=SHARDS, max_workers=2, out=tmp_path, fault_plan=plan,
            policy=ShardPolicy(timeout_s=0.5, retries=1, **FAST), **KW,
        )
        assert result.rows == serial_rows
        reports = _reports_by_shard(result)
        hung = reports["bj_random"]
        assert hung["status"] == "retried" and hung["attempts"] == 2
        assert hung["durations_s"][0] >= 0.5  # first attempt ran to the deadline
        assert reports["nyc_random"]["status"] == "ok"
        assert "timed_out" in _journal_events(tmp_path)

    def test_exhausted_retries_fail_only_that_shard(self, tmp_path):
        """The sweep completes the healthy shards, then signals failure."""
        plan = WorkerFaultPlan(
            overrides=(("nyc_random", "crash"),), max_faults_per_shard=99
        )
        with pytest.raises(ShardError) as excinfo:
            run_sharded(
                "fig4", MICRO, shards=SHARDS, max_workers=2, out=tmp_path,
                fault_plan=plan, policy=ShardPolicy(retries=1, **FAST), **KW,
            )
        err = excinfo.value
        assert err.shard == "nyc_random"
        by_shard = {r.shard: r for r in err.reports}
        assert by_shard["bj_random"].status == "ok"  # completed, not discarded
        assert by_shard["nyc_random"].status == "crashed"
        assert by_shard["nyc_random"].attempts == 2
        # ... and its checkpoint survived for a future --resume.
        assert shard_checkpoint_path(tmp_path, "fig4", MICRO, "bj_random").exists()
        assert not shard_checkpoint_path(tmp_path, "fig4", MICRO, "nyc_random").exists()

    def test_serial_fallback_after_persistent_crashes(self, serial_rows):
        """The BrokenProcessPool analogue: finish the shard in the parent."""
        plan = WorkerFaultPlan(
            overrides=(("nyc_random", "crash"),), max_faults_per_shard=99
        )
        result = run_sharded(
            "fig4", MICRO, shards=SHARDS, max_workers=2, serial_fallback=True,
            fault_plan=plan, policy=ShardPolicy(retries=1, serial_fallback=True, **FAST),
            **KW,
        )
        assert result.rows == serial_rows
        report = _reports_by_shard(result)["nyc_random"]
        assert report["status"] == "retried"
        assert report["serial_fallback"] is True
        assert report["attempts"] == 3  # two dead workers + the in-parent run

    def test_failed_worker_exception_reaches_the_report(self):
        plan = WorkerFaultPlan(overrides=(("bj_random", "error"),), max_faults_per_shard=99)
        with pytest.raises(ShardError) as excinfo:
            run_sharded(
                "fig4", MICRO, shards=("bj_random",), max_workers=1,
                fault_plan=plan, policy=ShardPolicy(**FAST), **KW,
            )
        (report,) = excinfo.value.reports
        assert report.status == "failed"
        assert "injected worker fault" in report.error
        assert "TransientError" in report.traceback


class TestShardResume:
    def test_resume_reruns_only_incomplete_shards_bit_identically(
        self, serial_rows, tmp_path
    ):
        """The SIGKILL-mid-sweep scenario: one shard checkpointed, one not."""
        plan = WorkerFaultPlan(
            overrides=(("nyc_random", "error"),), max_faults_per_shard=99
        )
        with pytest.raises(ShardError):
            run_sharded(
                "fig4", MICRO, shards=SHARDS, max_workers=2, out=tmp_path,
                fault_plan=plan, policy=ShardPolicy(**FAST), **KW,
            )
        result = run_sharded(
            "fig4", MICRO, shards=SHARDS, max_workers=2, out=tmp_path, resume=True,
            policy=ShardPolicy(**FAST), **KW,
        )
        assert result.rows == serial_rows  # resumed == uninterrupted, row for row
        reports = _reports_by_shard(result)
        assert reports["bj_random"]["status"] == "resumed"
        assert reports["bj_random"]["attempts"] == 0  # never relaunched
        assert reports["nyc_random"]["status"] == "ok"
        assert "resume" in _journal_events(tmp_path)

    def test_resume_after_parent_sigkill(self, serial_rows, tmp_path):
        """SIGKILL the supervising process itself; resume finishes the sweep.

        Shard A completes and checkpoints; shard B hangs (no timeout), so
        the sweep stalls deterministically — then the whole parent is
        SIGKILLed, exactly like an operator's OOM or a preempted node.
        """
        import signal
        import subprocess
        import sys
        import time as _time

        script = f"""
import sys
sys.path.insert(0, {str(Path(__file__).resolve().parents[2] / "src")!r})
from repro.experiments.parallel import run_sharded
from repro.experiments.scale import ExperimentScale
from repro.experiments.supervisor import ShardPolicy, WorkerFaultPlan

scale = ExperimentScale(name="ci", n_targets=12, n_train=50, n_validation=20,
                        n_area_samples=1_000, n_taxis=10, n_users=8, seed=5)
plan = WorkerFaultPlan(overrides=(("nyc_random", "hang"),), hang_s=10.0,
                       max_faults_per_shard=99)
run_sharded("fig4", scale, shards=("bj_random", "nyc_random"), max_workers=1,
            out={str(tmp_path)!r}, fault_plan=plan,
            policy=ShardPolicy(poll_interval_s=0.01, heartbeat_interval_s=0.05),
            radii=(1_000.0,), epsilons=(0.1,))
"""
        proc = subprocess.Popen([sys.executable, "-c", script])
        ckpt_a = shard_checkpoint_path(tmp_path, "fig4", MICRO, "bj_random")
        deadline = _time.monotonic() + 60
        try:
            while not ckpt_a.exists():  # max_workers=1: A finishes, then B hangs
                assert proc.poll() is None, "sweep exited before it could be killed"
                assert _time.monotonic() < deadline, "shard A never checkpointed"
                _time.sleep(0.02)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        result = run_sharded(
            "fig4", MICRO, shards=SHARDS, max_workers=2, out=tmp_path, resume=True,
            policy=ShardPolicy(**FAST), **KW,
        )
        assert result.rows == serial_rows
        reports = _reports_by_shard(result)
        assert reports["bj_random"]["status"] == "resumed"
        assert reports["nyc_random"]["status"] == "ok"  # the only shard re-run

    def test_resume_ignores_checkpoints_from_different_kwargs(self, tmp_path):
        run_sharded(
            "fig4", MICRO, shards=("bj_random",), max_workers=1, out=tmp_path,
            policy=ShardPolicy(**FAST), **KW,
        )
        result = run_sharded(
            "fig4", MICRO, shards=("bj_random",), max_workers=1, out=tmp_path,
            resume=True, policy=ShardPolicy(**FAST),
            radii=(500.0,), epsilons=(0.1,),  # different grid: checkpoint must not match
        )
        assert _reports_by_shard(result)["bj_random"]["status"] == "ok"

    def test_resume_without_out_is_a_config_error(self):
        with pytest.raises(ConfigError):
            supervise_shards(
                "fig4", MICRO, SHARDS, "datasets", KW, max_workers=1,
                resume=True,
            )

    def test_run_many_clears_subsumed_shard_checkpoints(self, tmp_path):
        from repro.experiments.results import ExperimentResult
        from repro.experiments.runner import run_many, write_checkpoint

        stale = shard_checkpoint_path(tmp_path, "alpha", MICRO, "bj_random")
        write_checkpoint(stale, {"experiment_id": "alpha", "result": {}})
        summary = run_many(
            ["alpha"], MICRO, out=tmp_path,
            run_fn=lambda eid, scale: ExperimentResult(experiment_id=eid, title="stub"),
        )
        assert summary.exit_code == 0
        assert not stale.exists()  # subsumed by the experiment-level checkpoint

    def test_clear_shard_checkpoints_counts(self, tmp_path):
        from repro.experiments.runner import write_checkpoint

        for shard in SHARDS:
            write_checkpoint(
                shard_checkpoint_path(tmp_path, "fig4", MICRO, shard), {"result": {}}
            )
        assert clear_shard_checkpoints(tmp_path, "fig4", MICRO) == 2
        assert clear_shard_checkpoints(tmp_path, "fig4", MICRO) == 0


class TestChaosSweep:
    """The acceptance scenario and the seeded chaos sweep."""

    def test_one_crashed_one_hung_shard_sweep_still_completes(self, serial_rows, tmp_path):
        plan = WorkerFaultPlan(
            overrides=(("bj_random", "crash"), ("nyc_random", "hang")),
            hang_s=60.0,
            max_faults_per_shard=1,
        )
        result = run_sharded(
            "fig4", MICRO, shards=SHARDS, max_workers=2, out=tmp_path, fault_plan=plan,
            policy=ShardPolicy(timeout_s=0.5, retries=1, **FAST), **KW,
        )
        assert result.rows == serial_rows
        reports = _reports_by_shard(result)
        assert reports["bj_random"]["status"] == "retried"
        assert reports["nyc_random"]["status"] == "retried"
        events = _journal_events(tmp_path)
        assert "crashed" in events and "timed_out" in events

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_seeded_chaos_is_deterministically_survivable(self, serial_rows, seed):
        """Any seed's fault timeline must end in a complete, correct sweep."""
        plan = WorkerFaultPlan(
            crash_rate=0.3, hang_rate=0.2, error_rate=0.3,
            seed=seed, max_faults_per_shard=1, hang_s=30.0,
        )
        result = run_sharded(
            "fig4", MICRO, shards=SHARDS, max_workers=2, fault_plan=plan,
            policy=ShardPolicy(timeout_s=1.0, retries=1, **FAST), **KW,
        )
        assert result.rows == serial_rows
        for report in _reports_by_shard(result).values():
            assert report["status"] in ("ok", "retried")


class TestReportShape:
    def test_report_ok_property(self):
        assert ShardReport(shard="x", status="ok").ok
        assert ShardReport(shard="x", status="retried").ok
        assert ShardReport(shard="x", status="resumed").ok
        assert not ShardReport(shard="x", status="timed_out").ok

    def test_provenance_records_policy_and_mode(self, tmp_path):
        result = run_sharded(
            "fig4", MICRO, shards=("bj_random",), max_workers=1, out=tmp_path,
            policy=ShardPolicy(retries=2, **FAST), **KW,
        )
        sharding = result.provenance["sharding"]
        assert sharding["mode"] == "supervised"
        assert sharding["policy"]["retries"] == 2
        assert len(sharding["shards"]) == 1

    def test_fork_start_method_assumed_by_fault_tests(self):
        # Documents the assumption: injected-fault workers rely on the
        # plan crossing the process boundary, which any start method
        # supports (the plan is picklable) — verify that invariant.
        import pickle

        plan = WorkerFaultPlan(crash_rate=0.5, overrides=(("a", "hang"),))
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert multiprocessing.get_context() is not None
