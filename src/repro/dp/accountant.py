"""A minimal privacy accountant.

Tracks the cumulative ``(epsilon, delta)`` budget consumed by a sequence of
mechanism invocations under basic (sequential) composition, and exposes the
post-processing rule (Lemma 3 of the paper): applying any data-independent
transformation to a mechanism's output consumes no additional budget —
which is exactly why the optimization step of the paper's defense is free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import PrivacyError
from repro.dp.mechanisms import PrivacyParams

__all__ = ["PrivacyAccountant"]


@dataclass
class PrivacyAccountant:
    """Sequential-composition ledger of privacy expenditures."""

    budget: "PrivacyParams | None" = None
    _spent: list[PrivacyParams] = field(default_factory=list)

    def spend(self, epsilon: float, delta: float = 0.0, label: str = "") -> PrivacyParams:
        """Record one mechanism invocation; raises if it exceeds the budget."""
        params = PrivacyParams(epsilon, delta)
        eps_after = self.total_epsilon + epsilon
        delta_after = self.total_delta + delta
        if self.budget is not None and (
            eps_after > self.budget.epsilon + 1e-12 or delta_after > self.budget.delta + 1e-12
        ):
            raise PrivacyError(
                f"budget exceeded by {label or 'mechanism'}: "
                f"({eps_after:.4g}, {delta_after:.4g}) > "
                f"({self.budget.epsilon:.4g}, {self.budget.delta:.4g})"
            )
        self._spent.append(params)
        return params

    def try_spend(self, epsilon: float, delta: float = 0.0, label: str = "") -> bool:
        """Spend iff the budget affords it; never raises on refusal.

        The commit-or-abort primitive shared by :class:`~repro.defense.budget.
        BudgetedDefense` and the federated round supervisor: a refused spend
        leaves the ledger untouched (the round aborts with its budget
        unspent), an affordable spend is recorded exactly as :meth:`spend`
        would record it.  Returns ``True`` when the spend was recorded.
        """
        if self.would_exceed(epsilon, delta):
            return False
        self.spend(epsilon, delta, label=label)
        return True

    def post_process(self) -> None:
        """Record a post-processing step (free by Lemma 3); a no-op ledger entry."""

    @property
    def total_epsilon(self) -> float:
        """Total epsilon under basic sequential composition."""
        return sum(p.epsilon for p in self._spent)

    @property
    def total_delta(self) -> float:
        """Total delta under basic sequential composition."""
        return sum(p.delta for p in self._spent)

    @property
    def n_invocations(self) -> int:
        return len(self._spent)

    def remaining_epsilon(self) -> float:
        """Budget left, or ``inf`` when no budget was set."""
        if self.budget is None:
            return float("inf")
        return max(0.0, self.budget.epsilon - self.total_epsilon)

    def remaining_delta(self) -> float:
        """Delta budget left, or ``inf`` when no budget was set."""
        if self.budget is None:
            return float("inf")
        return max(0.0, self.budget.delta - self.total_delta)

    def would_exceed(self, epsilon: float, delta: float = 0.0) -> bool:
        """Whether spending ``(epsilon, delta)`` now would bust the budget.

        The check mirrors :meth:`spend` exactly (including its floating
        tolerance), so refusal is deterministic at the boundary: a spend
        is refused iff this predicate is true at the moment of the spend.
        """
        if self.budget is None:
            return False
        return (
            self.total_epsilon + epsilon > self.budget.epsilon + 1e-12
            or self.total_delta + delta > self.budget.delta + 1e-12
        )

    # ------------------------------------------------------------------
    # Snapshot / restore — one accounting implementation for the offline
    # runners and the serve layer's persisted per-user ledgers.
    # ------------------------------------------------------------------

    def to_state(self) -> dict[str, Any]:
        """A JSON-serializable snapshot of budget and every spend."""
        return {
            "budget": None
            if self.budget is None
            else [self.budget.epsilon, self.budget.delta],
            "spent": [[p.epsilon, p.delta] for p in self._spent],
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "PrivacyAccountant":
        """Rebuild an accountant from a :meth:`to_state` snapshot."""
        raw_budget = state.get("budget")
        budget = (
            None
            if raw_budget is None
            else PrivacyParams(float(raw_budget[0]), float(raw_budget[1]))
        )
        accountant = cls(budget=budget)
        for entry in state.get("spent", []):
            accountant._spent.append(PrivacyParams(float(entry[0]), float(entry[1])))
        return accountant
