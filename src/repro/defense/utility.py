"""Utility metrics for protected releases (paper §VI-A).

The paper's target application is a Top-K service: how similar is the set
of the K most frequent types in the protected release to the set in the
original aggregate, measured by the Jaccard index.
"""

from __future__ import annotations

import numpy as np

from repro.poi.frequency import top_k_types

__all__ = ["jaccard_index", "top_k_jaccard", "l1_error", "normalized_utility"]


def jaccard_index(a: "frozenset[int] | set[int]", b: "frozenset[int] | set[int]") -> float:
    """``|a ∩ b| / |a ∪ b|``; the Jaccard index of two empty sets is 1."""
    a, b = set(a), set(b)
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def top_k_jaccard(original: np.ndarray, released: np.ndarray, k: int = 10) -> float:
    """Jaccard similarity of the Top-K type sets of two frequency vectors."""
    return jaccard_index(top_k_types(original, k), top_k_types(released, k))


def l1_error(original: np.ndarray, released: np.ndarray) -> float:
    """Total absolute count distortion between two frequency vectors.

    The raw-count complement to the Top-K view: a consumer doing density
    estimation rather than ranking cares about this quantity.
    """
    a = np.asarray(original, dtype=float)
    b = np.asarray(released, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.abs(a - b).sum())


def normalized_utility(original: np.ndarray, released: np.ndarray) -> float:
    """``1 - L1(original, released) / L1(original, 0)``, clamped to [0, 1].

    1 means a verbatim release, 0 means distortion at least as large as
    suppressing the vector entirely.  An all-zero original scores 1 only
    against an all-zero release.
    """
    a = np.asarray(original, dtype=float)
    total = float(np.abs(a).sum())
    err = l1_error(original, released)
    if total == 0.0:
        return 1.0 if err == 0.0 else 0.0
    return max(0.0, 1.0 - err / total)
