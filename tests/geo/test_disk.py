"""Tests for disks, coverage, and the lens-area formula."""

import math

import numpy as np
import pytest

from repro.core.errors import GeometryError
from repro.geo.disk import Disk, covers, lens_area
from repro.geo.point import Point


class TestDisk:
    def test_area(self):
        assert Disk(Point(0, 0), 2.0).area == pytest.approx(4 * math.pi)

    def test_negative_radius_raises(self):
        with pytest.raises(GeometryError):
            Disk(Point(0, 0), -1.0)

    def test_contains_boundary(self):
        d = Disk(Point(0, 0), 5.0)
        assert d.contains(Point(5, 0))
        assert d.contains(Point(0, 0))
        assert not d.contains(Point(5.01, 0))

    def test_contains_many_matches_scalar(self):
        d = Disk(Point(1, 1), 2.0)
        xs = np.array([1.0, 3.0, 3.1, -1.0])
        ys = np.array([1.0, 1.0, 1.0, 1.0])
        got = d.contains_many(xs, ys)
        expected = [d.contains(Point(x, y)) for x, y in zip(xs, ys)]
        assert list(got) == expected

    def test_sample_points_inside(self, rng):
        d = Disk(Point(10, -5), 3.0)
        pts = d.sample_points(500, rng)
        assert pts.shape == (500, 2)
        assert d.contains_many(pts[:, 0], pts[:, 1]).all()

    def test_sample_points_fill_the_disk(self, rng):
        # Mean radius of uniform samples in a disk is 2R/3.
        d = Disk(Point(0, 0), 3.0)
        pts = d.sample_points(20_000, rng)
        radii = np.hypot(pts[:, 0], pts[:, 1])
        assert radii.mean() == pytest.approx(2.0, abs=0.05)


class TestCovers:
    def test_coverage_property_of_the_attack(self):
        """If dist(p, l) <= r then Disk(p, 2r) covers Disk(l, r)."""
        r = 100.0
        l = Point(0, 0)
        p = Point(60, 80)  # dist = 100 = r
        assert covers(Disk(p, 2 * r), Disk(l, r))

    def test_not_covered_when_too_far(self):
        r = 100.0
        assert not covers(Disk(Point(150, 0), 2 * r), Disk(Point(0, 0), r))

    def test_identical_disks_cover(self):
        d = Disk(Point(1, 1), 5.0)
        assert covers(d, d)


class TestLensArea:
    def test_disjoint(self):
        assert lens_area(Disk(Point(0, 0), 1.0), Disk(Point(3, 0), 1.0)) == 0.0

    def test_contained(self):
        big = Disk(Point(0, 0), 5.0)
        small = Disk(Point(1, 0), 1.0)
        assert lens_area(big, small) == pytest.approx(math.pi)

    def test_identical(self):
        d = Disk(Point(2, 2), 3.0)
        assert lens_area(d, d) == pytest.approx(d.area)

    def test_symmetric(self):
        a = Disk(Point(0, 0), 2.0)
        b = Disk(Point(1.5, 1.0), 3.0)
        assert lens_area(a, b) == pytest.approx(lens_area(b, a))

    def test_half_overlap_known_value(self):
        # Two unit circles with centers distance 1 apart:
        # area = 2*acos(1/2) - sqrt(3)/2 ... (standard lens formula)
        a = Disk(Point(0, 0), 1.0)
        b = Disk(Point(1, 0), 1.0)
        expected = 2 * math.acos(0.5) - math.sin(2 * math.acos(0.5))
        assert lens_area(a, b) == pytest.approx(expected)

    def test_tangent_circles_zero(self):
        a = Disk(Point(0, 0), 1.0)
        b = Disk(Point(2, 0), 1.0)
        assert lens_area(a, b) == pytest.approx(0.0, abs=1e-12)
