"""Compliant PL013 patterns: one global lock order, bounded waits under
locks, blocking outside critical sections, RLock reentrancy.

Lints as repro.serve.fixture.
"""

import queue
import threading


class OrderedLocks:
    def __init__(self):
        self._lock_a = threading.Lock()
        self._lock_b = threading.Lock()
        self._state_lock = threading.RLock()
        self._queue = queue.Queue()
        self.counter = 0

    def forward(self):
        with self._lock_a:
            with self._lock_b:  # consistent a-then-b order everywhere
                return self.counter

    def also_forward(self):
        with self._lock_a:
            return self._grab_b()

    def _grab_b(self):
        with self._lock_b:
            self.counter += 1
            return self.counter

    def bounded_wait(self):
        with self._lock_a:
            return self._queue.get(timeout=0.1)  # bounded: the ladder can intervene

    def blocking_outside(self):
        item = self._queue.get(timeout=5.0)
        with self._lock_a:
            return item

    def reentrant(self):
        with self._state_lock:
            return self._touch()

    def _touch(self):
        with self._state_lock:  # RLock: reentrancy is the point
            return self.counter
