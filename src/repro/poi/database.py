"""The geo-information service provider (GSP) model.

The paper's LBS architecture (Fig. 1) exposes exactly one query interface:
retrieving the POIs within a given range of a location.  ``POIDatabase``
implements that interface (:meth:`query`) and the derived POI type histogram
(:meth:`freq`), backed by a uniform grid index so both are cheap enough to
sit in the inner loop of every attack.

The adversary's prior knowledge ``P`` in the paper is precisely this object:
the public POI map plus the ability to evaluate ``Freq`` anywhere.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.errors import DatasetError
from repro.geo.bbox import BBox
from repro.geo.grid_index import GridIndex
from repro.geo.point import Point
from repro.poi.engine import FreqEngine
from repro.poi.models import POI
from repro.poi.vocabulary import TypeVocabulary

__all__ = ["POIDatabase"]


class POIDatabase:
    """A static POI map with range queries and type-frequency aggregation.

    Parameters
    ----------
    xy:
        ``(n, 2)`` planar POI coordinates in meters.
    type_ids:
        ``(n,)`` integer array of type ids, each in ``[0, len(vocabulary))``.
    vocabulary:
        The type vocabulary; its length ``M`` is the frequency-vector width.
    bounds:
        The city's bounding box.  Defaults to the tight POI bounds.
    cell_size:
        Grid-index cell size in meters; defaults to 500 m, on the order of
        the smallest query radius studied in the paper.
    engine:
        Freq engine selector (``"auto"``, ``"banded"`` or ``"pyramid"``),
        see :class:`~repro.poi.engine.FreqEngine`.  All selectors are
        bit-identical; they trade plan overhead against pool size.
    """

    def __init__(
        self,
        xy: np.ndarray,
        type_ids: np.ndarray,
        vocabulary: TypeVocabulary,
        bounds: BBox | None = None,
        cell_size: float = 500.0,
        engine: str = "auto",
    ) -> None:
        xy = np.asarray(xy, dtype=float)
        type_ids = np.asarray(type_ids, dtype=np.intp)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise DatasetError(f"expected (n, 2) coordinates, got shape {xy.shape}")
        if type_ids.shape != (len(xy),):
            raise DatasetError(
                f"type_ids shape {type_ids.shape} does not match {len(xy)} POIs"
            )
        if len(type_ids) and (type_ids.min() < 0 or type_ids.max() >= len(vocabulary)):
            raise DatasetError("type ids out of vocabulary range")
        if bounds is None:
            if len(xy) == 0:
                raise DatasetError("cannot infer bounds from an empty POI set")
            bounds = BBox(
                float(xy[:, 0].min()),
                float(xy[:, 1].min()),
                float(xy[:, 0].max()),
                float(xy[:, 1].max()),
            )
        index = GridIndex(xy, cell_size=cell_size, bounds=bounds.expanded(cell_size))
        self._finish_init(xy, type_ids, vocabulary, bounds, index, engine)

    @classmethod
    def from_layout(
        cls,
        xy: np.ndarray,
        type_ids: np.ndarray,
        vocabulary: TypeVocabulary,
        bounds: BBox,
        index: GridIndex,
        types_ord: np.ndarray | None = None,
        cell_prefix: np.ndarray | None = None,
        engine: str = "auto",
    ) -> "POIDatabase":
        """Rebuild a database around precomputed (possibly shared) arrays.

        The shared-memory attach path hands in the grid index rebuilt with
        :meth:`GridIndex.from_layout` plus the derived arrays that are
        expensive to recompute (`types_ord`, the cell prefix sums), all of
        which may be read-only views over a shared segment.  Validation of
        the raw inputs is the owner's job — this constructor only rebuilds
        the cheap derived state (city frequency, ranks, per-type lists).
        """
        obj = cls.__new__(cls)
        obj._finish_init(xy, type_ids, vocabulary, bounds, index, engine)
        if types_ord is not None:
            obj._types_ord = types_ord
        if cell_prefix is not None:
            obj._cell_prefix = cell_prefix
        return obj

    def _finish_init(
        self,
        xy: np.ndarray,
        type_ids: np.ndarray,
        vocabulary: TypeVocabulary,
        bounds: BBox,
        index: GridIndex,
        engine: str,
    ) -> None:
        self._xy = xy
        self._types = type_ids
        self._vocab = vocabulary
        self._bounds = bounds
        self._index = index
        self._city_freq = np.bincount(type_ids, minlength=len(vocabulary)).astype(np.int64)
        # Infrequent rank per paper Eq. (7): the rarest type ranks 1.  Ties
        # broken by type id for determinism.
        order = np.lexsort((np.arange(len(vocabulary)), self._city_freq))
        ranks = np.empty(len(vocabulary), dtype=np.int64)
        ranks[order] = np.arange(1, len(vocabulary) + 1)
        self._ranks = ranks
        self._by_type: list[np.ndarray] = [
            np.flatnonzero(type_ids == t) for t in range(len(vocabulary))
        ]
        # Freq evaluated at a POI is re-used heavily by the attacks (every
        # candidate pruning step asks for Freq(p, 2r)); memoise those as one
        # (n_pois, M) anchor matrix per queried radius, filled lazily in
        # vectorized batches (see :meth:`anchor_freqs`).
        self._anchor_matrices: dict[float, np.ndarray] = {}
        self._anchor_ready: dict[float, np.ndarray] = {}
        # Radius-independent 2-D prefix sums of per-cell type histograms,
        # backing the sound Freq bounds (:meth:`freq_bounds`) and the
        # engine's pyramid tier.
        self._cell_prefix: np.ndarray | None = None
        self._bound_matrices: dict[tuple[float, str], np.ndarray] = {}
        # Type ids pre-permuted into the grid's bucket order, so the band
        # kernels histogram pool entries without a point-index gather.
        self._types_ord: np.ndarray | None = None
        self._engine = FreqEngine(self, mode=engine)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @classmethod
    def from_pois(
        cls,
        pois: Sequence[POI],
        vocabulary: TypeVocabulary,
        bounds: BBox | None = None,
        cell_size: float = 500.0,
    ) -> "POIDatabase":
        """Build a database from :class:`~repro.poi.models.POI` objects."""
        xy = np.array([[p.location.x, p.location.y] for p in pois], dtype=float)
        types = np.array([p.type_id for p in pois], dtype=np.intp)
        return cls(xy, types, vocabulary, bounds=bounds, cell_size=cell_size)

    def __len__(self) -> int:
        return len(self._xy)

    @property
    def n_types(self) -> int:
        """Number of POI types ``M`` — the frequency-vector width."""
        return len(self._vocab)

    @property
    def vocabulary(self) -> TypeVocabulary:
        return self._vocab

    @property
    def bounds(self) -> BBox:
        return self._bounds

    @property
    def positions(self) -> np.ndarray:
        """Read-only view of the ``(n, 2)`` POI coordinate array."""
        view = self._xy.view()
        view.flags.writeable = False
        return view

    @property
    def type_ids(self) -> np.ndarray:
        """Read-only view of the ``(n,)`` type-id array."""
        view = self._types.view()
        view.flags.writeable = False
        return view

    @property
    def grid(self) -> GridIndex:
        """The backing grid index (shared with the engine and shm layer)."""
        return self._index

    @property
    def types_bucket_order(self) -> np.ndarray:
        """Type ids permuted into the grid's bucket order (lazy, cached)."""
        tord = self._types_ord
        if tord is None:
            tord = self._types_ord = self._types[self._index.bucket_order]
        return tord

    @property
    def engine(self) -> FreqEngine:
        """The Freq engine every frequency query routes through."""
        return self._engine

    def set_engine(self, mode: str) -> None:
        """Switch the engine selector (``auto``/``banded``/``pyramid``)."""
        self._engine.mode = mode

    def poi(self, index: int) -> POI:
        """Materialise the POI at a given index."""
        return POI(
            poi_id=int(index),
            location=Point(float(self._xy[index, 0]), float(self._xy[index, 1])),
            type_id=int(self._types[index]),
        )

    def location_of(self, index: int) -> Point:
        """Planar location of the POI at *index*."""
        return Point(float(self._xy[index, 0]), float(self._xy[index, 1]))

    def type_of(self, index: int) -> int:
        """Type id of the POI at *index*."""
        return int(self._types[index])

    # ------------------------------------------------------------------
    # The GSP query interfaces (paper §II-A)
    # ------------------------------------------------------------------

    def query(self, center: Point, radius: float) -> np.ndarray:
        """``Query(l, r)``: indices of POIs within *radius* of *center*."""
        return self._index.query_radius(center, radius)

    def freq(self, center: Point, radius: float) -> np.ndarray:
        """``Freq(l, r)``: POI type frequency vector around *center*.

        Returns an ``(M,)`` int64 array where entry ``i`` counts the POIs of
        type ``i`` within *radius* of *center*.  Routed through the
        :class:`~repro.poi.engine.FreqEngine`, whose tiers are all
        bit-identical to histogramming :meth:`query`'s result directly.
        """
        return self._engine.freq(center.x, center.y, radius)

    def query_batch(
        self, xy: "Sequence[Point] | np.ndarray", radius: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """``Query(l, r)`` for many locations in one vectorized pass.

        Accepts an ``(n, 2)`` coordinate array or a sequence of
        :class:`~repro.geo.point.Point`; returns ``(indices, offsets)`` in
        CSR layout — the POIs within *radius* of location ``i`` are
        ``indices[offsets[i]:offsets[i + 1]]``, exactly as :meth:`query`
        would return them.
        """
        return self._index.query_batch(self._as_coords(xy), radius)

    def freq_batch(self, xy: "Sequence[Point] | np.ndarray", radius: float) -> np.ndarray:
        """``Freq(l, r)`` for many locations at once, as an ``(n, M)`` matrix.

        Bit-identical to stacking :meth:`freq` per location, but answered by
        the :class:`~repro.poi.engine.FreqEngine`: the banded tier gathers
        and filters the scan box in one vectorized pass, the pyramid tier
        additionally answers fully-inside cells with prefix-sum rectangle
        sums so only the boundary band pays the exact filter.  Queries are
        chunked so every intermediate stays within a fixed memory budget
        regardless of the batch size or radius.
        """
        return self._engine.freq_batch(self._as_coords(xy), radius)

    def anchor_freqs(
        self, radius: float, indices: "Sequence[int] | np.ndarray | None" = None
    ) -> np.ndarray:
        """The anchor frequency matrix: ``Freq(p_i, radius)`` for POIs ``p_i``.

        The attacks evaluate ``Freq(p, 2r)`` for every candidate anchor POI
        ``p``; those anchors repeat across targets, so the database keeps
        one ``(n_pois, M)`` int64 matrix per queried radius and fills its
        rows lazily in vectorized batches.  With *indices* (an array of POI
        indices), only those rows are guaranteed computed and the
        ``(len(indices), M)`` row block is returned; without it the full
        matrix is materialised.  Returned arrays are read-only.
        """
        mat, ready = self._anchor_state(radius)
        if indices is None:
            missing = np.flatnonzero(~ready)
        else:
            indices = np.asarray(indices, dtype=np.intp)
            missing = np.unique(indices[~ready[indices]])
        if len(missing):
            mat[missing] = self._engine.freq_batch(
                self._xy[missing], radius, op="anchor_freqs"
            )
            ready[missing] = True
        block = mat if indices is None else mat[indices]
        view = block.view()
        view.flags.writeable = False
        return view

    def freq_bounds(
        self,
        radius: float,
        indices: "Sequence[int] | np.ndarray | None" = None,
        side: str = "upper",
    ) -> np.ndarray:
        """Sound elementwise bounds on ``Freq(p_i, radius)`` per POI.

        With ``side="upper"``, the exact type histogram of every POI in the
        grid cells a radius query at ``p_i`` would scan — a superset of the
        disk, so every entry is ``>=`` the true ``Freq`` entry.  With
        ``side="lower"``, the histogram of the cells certainly inside the
        disk (the inscribed cell box), so every entry is ``<=`` the truth.

        Both come from radius-independent 2-D prefix sums of per-cell type
        histograms — four ``(n, M)`` gathers, no distance filtering — and
        are cached per ``(radius, side)``.  The attacks sandwich candidate
        anchors between the two: a vector the upper bound fails to dominate
        cannot survive exact pruning, one the lower bound already dominates
        certainly does, and only the band in between pays for exact
        anchor-matrix rows.
        """
        if side not in ("upper", "lower"):
            raise DatasetError(f"side must be 'upper' or 'lower', got {side!r}")
        key = (float(radius), side)
        mat = self._bound_matrices.get(key)
        if mat is not None:
            block = mat if indices is None else mat[indices]
        elif indices is not None:
            # Small row blocks are cheaper to recompute than a full-map
            # matrix; only whole-map requests are worth caching.
            block = self._bound_rows(self._xy[indices], radius, side)
        else:
            block = self._bound_matrices[key] = self._bound_rows(self._xy, radius, side)
        view = block.view()
        view.flags.writeable = False
        return view

    def _bound_rows(self, xy: np.ndarray, radius: float, side: str) -> np.ndarray:
        """Evaluate one side of the Freq bounds at the given coordinates."""
        pref = self.cell_prefix_sums()
        if side == "upper":
            cx0, cx1, cy0, cy1 = self._index.cell_ranges(xy, radius)
        else:
            cx0, cx1, cy0, cy1 = self._index.interior_cell_ranges(xy, radius)
        ok = (cx1 >= cx0) & (cy1 >= cy0)
        cx0 = np.where(ok, cx0, 0)
        cx1 = np.where(ok, cx1, -1)
        cy0 = np.where(ok, cy0, 0)
        cy1 = np.where(ok, cy1, -1)
        rows = (
            pref[cx1 + 1, cy1 + 1]
            - pref[cx0, cy1 + 1]
            - pref[cx1 + 1, cy0]
            + pref[cx0, cy0]
        )
        rows[~ok] = 0
        return rows

    def cell_prefix_sums(self) -> np.ndarray:
        """The zero-padded 2-D prefix sums of per-cell type histograms.

        Shape ``(nx + 1, ny + 1, M)`` int32: entry ``[i, j]`` sums the
        histograms of all cells ``(< i, < j)``.  Depends only on the static
        POI set (like the grid index itself), so it is built once, survives
        :meth:`clear_cache`, and is shareable across processes.  Backs both
        :meth:`freq_bounds` and the engine's pyramid tier.
        """
        pref = self._cell_prefix
        if pref is None:
            nx, ny = self._index.grid_shape
            m = self.n_types
            cx, cy = self._index.cells_of(self._xy)
            hist = np.bincount(
                (cx * ny + cy) * m + self._types, minlength=nx * ny * m
            ).reshape(nx, ny, m)
            # Counts are bounded by the POI total, so int32 suffices and
            # halves the gather traffic of every bound evaluation.
            pref = np.zeros((nx + 1, ny + 1, m), dtype=np.int32)
            pref[1:, 1:] = hist.cumsum(axis=0).cumsum(axis=1)
            self._cell_prefix = pref
        return pref

    def freq_at_poi(self, poi_index: int, radius: float) -> np.ndarray:
        """``Freq`` evaluated at a POI's own location.

        A thin read-only row view over :meth:`anchor_freqs`'s per-radius
        matrix; single rows are filled on demand, batched callers should
        warm the matrix with :meth:`anchor_freqs` first.  Callers must not
        mutate the returned array.
        """
        mat, ready = self._anchor_state(radius)
        i = int(poi_index)
        if not ready[i]:
            mat[i] = self.freq(self.location_of(i), radius)
            ready[i] = True
        row = mat[i].view()
        row.flags.writeable = False
        return row

    def clear_cache(self) -> None:
        """Drop all memoised per-radius anchor frequency and bound matrices.

        The radius-independent cell prefix sums are structural (a fixed
        function of the POI set, like the grid index) and are kept.
        """
        self._anchor_matrices.clear()
        self._anchor_ready.clear()
        self._bound_matrices.clear()

    def _anchor_state(self, radius: float) -> tuple[np.ndarray, np.ndarray]:
        """The (matrix, row-computed mask) pair backing one cached radius."""
        key = float(radius)
        mat = self._anchor_matrices.get(key)
        if mat is None:
            # Counts are bounded by the POI total, so int32 rows halve the
            # fill and gather traffic of the full (n_pois, M) matrix.
            mat = np.zeros((len(self._xy), self.n_types), dtype=np.int32)
            self._anchor_matrices[key] = mat
            self._anchor_ready[key] = np.zeros(len(self._xy), dtype=bool)
        return mat, self._anchor_ready[key]

    @staticmethod
    def _as_coords(xy: "Sequence[Point] | np.ndarray") -> np.ndarray:
        """Coerce an ``(n, 2)`` array or a sequence of Points to coordinates."""
        if isinstance(xy, np.ndarray):
            coords = np.asarray(xy, dtype=float)
        else:
            pts = list(xy)
            if pts and isinstance(pts[0], Point):
                coords = np.array([[p.x, p.y] for p in pts], dtype=float)
            else:
                coords = np.asarray(pts, dtype=float)
        if coords.size == 0:
            return coords.reshape(0, 2)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise DatasetError(f"expected (n, 2) coordinates, got shape {coords.shape}")
        return coords

    # ------------------------------------------------------------------
    # City-level aggregates used by attacks and defenses
    # ------------------------------------------------------------------

    @property
    def city_frequency(self) -> np.ndarray:
        """Overall POI frequency ``F`` over the whole city (read-only)."""
        view = self._city_freq.view()
        view.flags.writeable = False
        return view

    @property
    def infrequent_ranks(self) -> np.ndarray:
        """Infrequent rank ``R(i)`` per type: the rarest type ranks 1."""
        view = self._ranks.view()
        view.flags.writeable = False
        return view

    def pois_of_type(self, type_id: int) -> np.ndarray:
        """Indices of every POI with the given type."""
        if not 0 <= type_id < self.n_types:
            raise DatasetError(f"type id {type_id} out of range [0, {self.n_types})")
        return self._by_type[type_id]

    def rarest_present_type(self, freq_vector: np.ndarray) -> int | None:
        """The city-rarest type with a non-zero entry in *freq_vector*.

        This is steps 1–2 of Cao et al.'s attack: sort the reported vector
        by the city-wide frequency ``F`` and take the most infrequent type
        ``t_l`` with ``n_l > 0``.  Returns ``None`` when the vector is all
        zeros (nothing to anchor on).
        """
        freq_vector = np.asarray(freq_vector)
        if freq_vector.shape != (self.n_types,):
            raise DatasetError(
                f"frequency vector has shape {freq_vector.shape}, expected ({self.n_types},)"
            )
        present = np.flatnonzero(freq_vector > 0)
        if len(present) == 0:
            return None
        return int(present[np.argmin(self._ranks[present])])
