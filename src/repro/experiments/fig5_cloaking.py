"""Figure 5 — spatial k-cloaking versus the region attack.

Four datasets x four radii x k in {1..50}, with 10,000 users uniformly
distributed over each city (the paper's population model).  Success decays
as k grows but stays material even at k = 50, especially for large radii.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.attacks.metrics import evaluate_region_attack
from repro.attacks.region import RegionAttack
from repro.core.rng import derive_rng
from repro.datasets.targets import DATASET_NAMES
from repro.defense.cloaking import CloakingDefense, UserPopulation
from repro.experiments.common import RADII_M, targets_for
from repro.experiments.results import ExperimentResult
from repro.experiments.scale import SCALES, ExperimentScale

__all__ = ["run_fig5", "DEFAULT_K_VALUES"]

DEFAULT_K_VALUES = (1, 10, 20, 30, 40, 50)

_N_CITY_USERS = 10_000


def run_fig5(
    scale: ExperimentScale = SCALES["ci"],
    radii: Sequence[float] = RADII_M,
    datasets: Sequence[str] = DATASET_NAMES,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
) -> ExperimentResult:
    """Evaluate adaptive-interval cloaking across datasets, radii, and k."""
    result = ExperimentResult(
        experiment_id="fig5",
        title="Performance of spatial k-cloaking",
        config={
            "scale": scale.name,
            "n_targets": scale.n_targets,
            "n_city_users": _N_CITY_USERS,
        },
        notes=(
            "Paper reference: success rate decreases with k but remains "
            "unsatisfactory even at k=50, more so for large radii."
        ),
    )
    populations: dict[str, UserPopulation] = {}
    for dataset in datasets:
        for radius in radii:
            city, targets = targets_for(dataset, radius, scale)
            if city.name not in populations:
                populations[city.name] = UserPopulation.uniform(
                    _N_CITY_USERS,
                    city.bounds,
                    derive_rng(scale.seed, "fig5-users", city.name),
                )
            attack = RegionAttack(city.database)
            for k in k_values:
                defense = (
                    None if k <= 1 else CloakingDefense(populations[city.name], k)
                )
                evaluation = evaluate_region_attack(
                    city.database,
                    targets,
                    radius,
                    defense=defense,
                    rng=derive_rng(scale.seed, "fig5", dataset, radius, k),
                    attack=attack,
                )
                result.add_row(
                    dataset=dataset,
                    r_km=radius / 1000.0,
                    k=k,
                    success_rate=evaluation.success_rate,
                    correct_rate=evaluation.correct_rate,
                )
    return result
