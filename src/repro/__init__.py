"""poiagg — reproduction of "Practical Location Privacy Attacks and Defense
on Point-of-interest Aggregates" (Tong et al., ICDCS 2021).

The package is organised by layer:

* :mod:`repro.core` — errors, RNG discipline.
* :mod:`repro.geo` — planar geometry, spatial indexes, disk regions.
* :mod:`repro.poi` — POI databases (the geo-information provider), the
  synthetic Beijing/NYC cities.
* :mod:`repro.datasets` — target samplers: synthetic T-drive taxi traces,
  Foursquare-style check-ins, uniform random locations.
* :mod:`repro.ml` — from-scratch SVM family (SMO SVC, kernel regression).
* :mod:`repro.dp` — Gaussian/Laplace mechanisms, planar Laplace, accounting.
* :mod:`repro.attacks` — region re-identification, the fine-grained attack,
  the trajectory-uniqueness attack, the anti-sanitization recovery attack.
* :mod:`repro.defense` — sanitization, geo-indistinguishability, spatial
  k-cloaking, the optimization-based release, and the DP release mechanism.
* :mod:`repro.experiments` — one runner per figure of the paper.

Quickstart::

    import numpy as np
    from repro.poi import beijing
    from repro.attacks import RegionAttack

    city = beijing()
    db = city.database
    target = city.interior(1000.0).sample_point(np.random.default_rng(0))
    outcome = RegionAttack(db).run(db.freq(target, 1000.0), 1000.0)
    print(outcome.success, outcome.region)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
