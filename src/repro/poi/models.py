"""POI data model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.point import Point

__all__ = ["POI"]


@dataclass(frozen=True, slots=True)
class POI:
    """A point of interest.

    Attributes
    ----------
    poi_id:
        Stable integer identifier, unique within a database.
    location:
        Planar position in the city's local frame, in meters.
    type_id:
        Index into the city's :class:`~repro.poi.vocabulary.TypeVocabulary`.
    """

    poi_id: int
    location: Point
    type_id: int

    def __post_init__(self) -> None:
        if self.type_id < 0:
            raise ValueError(f"type_id must be non-negative, got {self.type_id}")
