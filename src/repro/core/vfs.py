"""Injectable durable-I/O layer with seeded disk-fault injection.

Every durable-state writer in this repository — the atomic-write helpers,
the dataset cache, the budget ledger's WAL and snapshots, runner /
supervisor / federated checkpoints, quarantine sidecars, and the JSONL
heartbeat/audit journals — performs its filesystem side effects through
the VFS installed here instead of calling ``os`` directly (lint rule
PL015 enforces this for durable-path modules).  That single indirection
buys three things:

* **fault injection** — :class:`FaultyVFS` driven by a seeded
  :class:`DiskFaultPlan` turns the deployment failure modes that destroy
  real systems (``ENOSPC``, ``EIO``, torn writes at byte *k*, fsyncs
  that lie, slow devices, failing renames) into deterministic,
  replayable test inputs;
* **crash-point enumeration** — the faulty VFS logs every durable
  operation, so the sweep harness (:mod:`repro.core.crashsweep`) can
  re-run a writer and simulate a SIGKILL *before every single step* of
  its commit protocol — the dynamic counterpart of the static PL014
  commit-ordering analysis;
* **a durability model** — the faulty VFS tracks, per path, which bytes
  have actually been fsynced.  :meth:`FaultyVFS.simulate_crash` reverts
  the real filesystem to exactly that durable state (unfsynced suffixes
  are lost, renames publish only what the source inode had durably),
  which is what a power cut leaves behind.

Modelling note: rename/unlink *metadata* is treated as immediately
durable (journalled-filesystem semantics); what the model deliberately
loses is unfsynced *data*, because that is the failure PL014 exists to
prevent — ``os.replace`` publishing a name whose content never hit disk.

The production default (:class:`DurableVFS`) is a zero-overhead
pass-through to ``os``; nothing changes for normal runs.
"""

# The VFS primitives are the mechanism the commit-protocol rules credit:
# replace()/fsync() here are single delegated steps whose *ordering* is
# enforced at the call sites (atomic_writer, the WAL) and checked by
# PL014 through delegated-helper credit — flagging the primitives
# themselves would flag the mechanism, not a protocol violation.
# poiagg: disable=PL014

from __future__ import annotations

import errno as errno_module
import os
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from repro.core.errors import ConfigError
from repro.core.rng import derive_rng

__all__ = [
    "DISK_FAULT_KINDS",
    "DiskFaultPlan",
    "DurableVFS",
    "FaultyVFS",
    "SimulatedCrash",
    "VFSFile",
    "get_vfs",
    "install_vfs",
]

#: Every fault class the plan can inject, in taxonomy order.
DISK_FAULT_KINDS = (
    "enospc",
    "eio",
    "torn_write",
    "fsync_lie",
    "slow_io",
    "replace_failure",
)

#: Durable operations the fault layer mediates (and the sweep enumerates).
DURABLE_OPS = ("open", "write", "fsync", "replace", "unlink", "mkdir", "truncate")


class SimulatedCrash(BaseException):
    """The process 'died' at a planned crash point.

    Derives from :class:`BaseException` so writer-side ``except
    Exception`` containment (retry loops, keep-going harnesses) cannot
    swallow it — a SIGKILL is not catchable either.  Only the sweep
    harness that planted the crash point catches this.
    """

    def __init__(self, op_index: int, op: str, path: str) -> None:
        super().__init__(f"simulated crash at durable op #{op_index} ({op} {path})")
        self.op_index = op_index
        self.op = op
        self.path = path


class VFSFile:
    """A writable file handle whose side effects route through a VFS.

    Supports the minimal file protocol durable writers use: ``write``,
    ``flush``, ``close``, ``fileno``, context management, and ``name``.
    Reads never go through the VFS (torn *reads* are not a crash mode;
    integrity checking belongs to the readers).
    """

    def __init__(self, vfs: "DurableVFS", handle: "IO[Any]", path: Path, binary: bool) -> None:
        self._vfs = vfs
        self._handle = handle
        self._path = path
        self._binary = binary
        self.closed = False

    @property
    def name(self) -> str:
        return str(self._path)

    @property
    def path(self) -> Path:
        return self._path

    def fileno(self) -> int:
        return self._handle.fileno()

    def writable(self) -> bool:
        return True

    def write(self, data: "str | bytes") -> int:
        return self._route()._write(self, data)

    def _route(self) -> "DurableVFS":
        # A handle opened on the production disk follows whatever layer
        # is installed *now* — long-lived handles (the ledger's WAL) must
        # feel a mid-life install_vfs() the way a real file descriptor
        # feels the disk filling up.  A handle opened on an explicit
        # fault layer stays bound to it, so standalone FaultyVFS use
        # (unit tests, the sweep's counting run) is unaffected.
        if self._vfs is _DEFAULT_VFS:
            return _active_vfs
        return self._vfs

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if not self.closed:
            self._handle.flush()
            self._handle.close()
            self.closed = True

    def __enter__(self) -> "VFSFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class DurableVFS:
    """The production durable-I/O layer: a direct pass-through to ``os``.

    Subclasses interpose on the narrow waist (`_write`, `_before_op`)
    rather than on every public method, so the fault/crash semantics stay
    in one place.
    """

    def open(
        self, path: "str | Path", mode: str = "w", encoding: "str | None" = None
    ) -> VFSFile:
        """Open *path* for writing (``w``/``wb``/``a``/``x`` modes only)."""
        if not any(flag in mode for flag in "wax"):
            raise ConfigError(f"VFS handles write modes only, got {mode!r}")
        path = Path(path)
        binary = "b" in mode
        self._before_op("open", path)
        handle = open(  # noqa: SIM115 — the VFSFile owns and closes it
            path, mode, encoding=None if binary else (encoding or "utf-8"),
            newline=None if binary else "",
        )
        return VFSFile(self, handle, path, binary)

    def fsync(self, fh: VFSFile) -> None:
        """Flush *fh* and force its bytes to stable storage."""
        fh.flush()
        self._before_op("fsync", fh.path)
        os.fsync(fh.fileno())
        self._after_fsync(fh.path)

    def replace(self, src: "str | Path", dst: "str | Path") -> None:
        """Atomically rename *src* over *dst* (the commit point)."""
        src, dst = Path(src), Path(dst)
        self._before_op("replace", dst)
        os.replace(src, dst)
        self._after_replace(src, dst)

    def unlink(self, path: "str | Path", *, missing_ok: bool = False) -> None:
        path = Path(path)
        self._before_op("unlink", path)
        try:
            os.unlink(path)
        except FileNotFoundError:
            if not missing_ok:
                raise
        self._after_unlink(path)

    def mkdir(
        self, path: "str | Path", *, parents: bool = False, exist_ok: bool = False
    ) -> None:
        path = Path(path)
        self._before_op("mkdir", path)
        path.mkdir(parents=parents, exist_ok=exist_ok)

    def truncate(self, path: "str | Path", length: int) -> None:
        """Cut *path* back to *length* bytes (torn-tail repair)."""
        path = Path(path)
        self._before_op("truncate", path)
        os.truncate(path, length)
        self._after_truncate(path, length)

    # -- interposition points ------------------------------------------

    def _write(self, fh: VFSFile, data: "str | bytes") -> int:
        self._before_op("write", fh.path, data=data)
        written = int(fh._handle.write(data))
        # Write-through: the OS sees every completed write immediately,
        # so a simulated crash never has Python-buffered bytes in limbo
        # (flush is not durability — only fsync advances the shadow).
        fh._handle.flush()
        return written

    def _before_op(self, op: str, path: Path, data: "str | bytes | None" = None) -> None:
        """Hook: fault injection / crash points happen here."""

    def _after_fsync(self, path: Path) -> None:
        """Hook: the durability model marks *path*'s bytes stable here."""

    def _after_replace(self, src: Path, dst: Path) -> None:
        """Hook: the durability model moves *src*'s durable state to *dst*."""

    def _after_unlink(self, path: Path) -> None:
        """Hook: the durability model forgets *path* here."""

    def _after_truncate(self, path: Path, length: int) -> None:
        """Hook: the durability model cuts *path*'s durable bytes here."""


@dataclass(frozen=True)
class DiskFaultPlan:
    """Seeded description of how a disk misbehaves.

    Rates are per-eligible-operation probabilities drawn from one
    generator derived from *seed*, so a given ``(plan, writer)`` pairing
    replays identically.  Deterministic triggers (``crash_at_op``,
    ``fail_op_index``) exist for the sweep harness: probability-free,
    exhaustive coverage of every commit step.

    Parameters
    ----------
    enospc_rate / eio_rate:
        Probability a ``write``/``open``/``replace`` raises
        ``OSError(ENOSPC)`` / ``OSError(EIO)``.
    torn_write_rate:
        Probability a write persists only a prefix of its payload before
        raising ``OSError(EIO)`` — an interrupted transfer.
    fsync_lie_rate:
        Probability an fsync reports success without making the bytes
        durable (battery-less write cache, lying virtio flush).
    slow_io_rate / slow_io_s:
        Probability an operation stalls for ``slow_io_s`` wall seconds.
    replace_failure_rate:
        Probability an ``os.replace`` raises ``OSError(EIO)`` *without*
        renaming (the commit never happens).
    crash_at_op:
        1-based durable-op index at which to raise
        :class:`SimulatedCrash` *instead of* performing the operation.
    crash_mode:
        ``"before"`` (die before op ``crash_at_op``) or ``"torn"`` (if
        that op is a write, persist a prefix, then die).
    lie_at_fsync:
        1-based fsync ordinal that silently lies (sweep mode
        ``fsync-lie``); independent of ``fsync_lie_rate``.
    path_substring:
        Restrict all faults to paths containing this substring.
    max_faults:
        Budget on probabilistic faults injected (crash/lie triggers are
        exempt); keeps chaos runs from degenerating into pure noise.
    """

    seed: int = 0
    enospc_rate: float = 0.0
    eio_rate: float = 0.0
    torn_write_rate: float = 0.0
    fsync_lie_rate: float = 0.0
    slow_io_rate: float = 0.0
    slow_io_s: float = 0.0
    replace_failure_rate: float = 0.0
    crash_at_op: "int | None" = None
    crash_mode: str = "before"
    lie_at_fsync: "int | None" = None
    path_substring: str = ""
    max_faults: "int | None" = None

    def __post_init__(self) -> None:
        for name in (
            "enospc_rate",
            "eio_rate",
            "torn_write_rate",
            "fsync_lie_rate",
            "slow_io_rate",
            "replace_failure_rate",
        ):
            rate = float(getattr(self, name))
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.slow_io_s < 0:
            raise ConfigError(f"slow_io_s must be >= 0, got {self.slow_io_s}")
        if self.crash_mode not in ("before", "torn"):
            raise ConfigError(
                f"crash_mode must be 'before' or 'torn', got {self.crash_mode!r}"
            )
        if self.crash_at_op is not None and self.crash_at_op < 1:
            raise ConfigError(f"crash_at_op is 1-based, got {self.crash_at_op}")
        if self.lie_at_fsync is not None and self.lie_at_fsync < 1:
            raise ConfigError(f"lie_at_fsync is 1-based, got {self.lie_at_fsync}")

    @property
    def any_random_faults(self) -> bool:
        return any(
            getattr(self, f"{kind}_rate") > 0
            for kind in ("enospc", "eio", "torn_write", "fsync_lie", "slow_io", "replace_failure")
        )


@dataclass
class FaultCounts:
    """Tally of what the faulty VFS actually did (for chaos assertions)."""

    by_kind: dict[str, int] = field(default_factory=dict)
    n_ops: int = 0
    n_fsyncs: int = 0

    def count(self, kind: str) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.by_kind.values())

    def as_dict(self) -> dict[str, int]:
        return {"n_ops": self.n_ops, "n_fsyncs": self.n_fsyncs, **self.by_kind}


class FaultyVFS(DurableVFS):
    """A :class:`DurableVFS` that misbehaves according to a seeded plan.

    Besides injecting faults, it maintains the *durability shadow*: for
    every path it touches, the byte content that would survive a power
    cut right now.  Writes land on the real filesystem immediately (a
    healthy run is indistinguishable from the production VFS), but only
    an honest fsync advances a file's durable snapshot, and only
    :meth:`simulate_crash` applies the difference.
    """

    def __init__(self, plan: "DiskFaultPlan | None" = None) -> None:
        self.plan = plan if plan is not None else DiskFaultPlan()
        self._rng = derive_rng(self.plan.seed, "disk-faults")
        self._lock = threading.RLock()
        #: durable content per path; ``None`` = durably absent.
        self._durable: dict[str, "bytes | None"] = {}
        #: paths whose current on-disk content may exceed their durable state.
        self._touched: set[str] = set()
        self.counts = FaultCounts()
        self.op_log: list[tuple[str, str]] = []

    # -- observability --------------------------------------------------

    @property
    def n_ops(self) -> int:
        return self.counts.n_ops

    def durable_bytes(self, path: "str | Path") -> "bytes | None":
        """The content of *path* that would survive a crash right now."""
        with self._lock:
            self._track(Path(path))
            return self._durable.get(str(Path(path)))

    # -- the durability shadow -----------------------------------------

    def _track(self, path: Path) -> None:
        key = str(path)
        if key in self._durable:
            return
        # Directories carry no content to shadow — their creation is
        # metadata, treated as immediately durable like renames.
        if path.is_dir():
            return
        # First touch: whatever is on disk now predates the fault window
        # and is assumed durable.
        self._durable[key] = path.read_bytes() if path.exists() else None

    def _after_fsync(self, path: Path) -> None:
        with self._lock:
            self._durable[str(path)] = path.read_bytes() if path.exists() else None

    def _after_replace(self, src: Path, dst: Path) -> None:
        with self._lock:
            # The rename's metadata is durable (journalled FS); the data
            # visible under dst after a crash is whatever src had durably.
            src_durable = self._durable.get(str(src))
            self._durable[str(dst)] = src_durable if src_durable is not None else b""
            self._durable[str(src)] = None
            self._touched.add(str(dst))

    def _after_unlink(self, path: Path) -> None:
        with self._lock:
            self._durable[str(path)] = None

    def _after_truncate(self, path: Path, length: int) -> None:
        with self._lock:
            durable = self._durable.get(str(path))
            if durable is not None:
                self._durable[str(path)] = durable[:length]

    def simulate_crash(self) -> list[str]:
        """Revert the real filesystem to the durable shadow.

        Called by the sweep harness after catching
        :class:`SimulatedCrash` (or at any point during a chaos run):
        every touched path is rewritten to its durable content — or
        removed if it was never durably created.  Returns the paths that
        changed, i.e. the data a real crash would have eaten.
        """
        with self._lock:
            reverted: list[str] = []
            for key, durable in self._durable.items():
                path = Path(key)
                if path.is_dir():
                    continue
                on_disk = path.read_bytes() if path.exists() else None
                if on_disk == durable:
                    continue
                if durable is None:
                    path.unlink(missing_ok=True)
                else:
                    path.write_bytes(durable)
                reverted.append(key)
            return sorted(reverted)

    # -- fault injection ------------------------------------------------

    def _eligible(self, path: Path) -> bool:
        return self.plan.path_substring in str(path)

    def _budget_left(self) -> bool:
        budget = self.plan.max_faults
        return budget is None or self.counts.total < budget

    def _roll(self, rate: float) -> bool:
        if rate <= 0.0 or not self._budget_left():
            return False
        return bool(self._rng.random() < rate)

    def _os_error(self, code: int, op: str, path: Path) -> OSError:
        return OSError(code, f"injected {op} fault", str(path))

    def _before_op(self, op: str, path: Path, data: "str | bytes | None" = None) -> None:
        if not self._eligible(path):
            return
        with self._lock:
            self._track(path)
            self.counts.n_ops += 1
            index = self.counts.n_ops
            self.op_log.append((op, str(path)))
            if op == "fsync":
                self.counts.n_fsyncs += 1
            plan = self.plan
            if plan.crash_at_op is not None and index >= plan.crash_at_op:
                if plan.crash_mode == "torn" and op == "write" and data is not None:
                    self._tear_write(path, data, crash=True)
                raise SimulatedCrash(index, op, str(path))
            if plan.lie_at_fsync is not None and op == "fsync":
                if self.counts.n_fsyncs == plan.lie_at_fsync:
                    self.counts.count("fsync_lie")
                    raise _FsyncLied()
            if self._roll(plan.slow_io_rate):
                self.counts.count("slow_io")
                time.sleep(plan.slow_io_s)
            if op in ("open", "write") and self._roll(plan.enospc_rate):
                self.counts.count("enospc")
                raise self._os_error(errno_module.ENOSPC, op, path)
            if op in ("open", "write", "fsync") and self._roll(plan.eio_rate):
                self.counts.count("eio")
                raise self._os_error(errno_module.EIO, op, path)
            if op == "write" and data is not None and self._roll(plan.torn_write_rate):
                self.counts.count("torn_write")
                self._tear_write(path, data, crash=False)
                raise self._os_error(errno_module.EIO, "torn write", path)
            if op == "fsync" and self._roll(plan.fsync_lie_rate):
                self.counts.count("fsync_lie")
                raise _FsyncLied()
            if op == "replace" and self._roll(plan.replace_failure_rate):
                self.counts.count("replace_failure")
                raise self._os_error(errno_module.EIO, "replace", path)

    def _tear_write(self, path: Path, data: "str | bytes", crash: bool) -> None:
        """Persist a strict prefix of *data* directly (bypassing the VFS)."""
        raw = data.encode("utf-8") if isinstance(data, str) else bytes(data)
        if not raw:
            return
        k = int(self._rng.integers(0, len(raw)))
        with open(path, "ab") as out:
            out.write(raw[:k])
        self._touched.add(str(path))

    # -- fsync-lie plumbing ---------------------------------------------

    def fsync(self, fh: VFSFile) -> None:
        """Like the honest fsync, but a lying one skips the durable mark."""
        fh.flush()
        try:
            self._before_op("fsync", fh.path)
        except _FsyncLied:
            return  # reported success; durable shadow NOT advanced
        os.fsync(fh.fileno())
        self._after_fsync(fh.path)

    def _write(self, fh: VFSFile, data: "str | bytes") -> int:
        written = super()._write(fh, data)
        with self._lock:
            self._touched.add(str(fh.path))
        return written


class _FsyncLied(Exception):
    """Internal control flow: the fsync 'succeeded' but synced nothing."""


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------

_DEFAULT_VFS = DurableVFS()
_active_vfs: DurableVFS = _DEFAULT_VFS
_install_lock = threading.Lock()


def get_vfs() -> DurableVFS:
    """The currently installed durable-I/O layer (production by default)."""
    return _active_vfs


@contextmanager
def install_vfs(vfs: DurableVFS) -> Iterator[DurableVFS]:
    """Route all durable I/O through *vfs* for the duration of the block.

    Installation is process-global (the point is that *every* writer in
    the process sees the same disk), guarded against concurrent installs,
    and always restored — including when the block exits via
    :class:`SimulatedCrash`.
    """
    global _active_vfs
    with _install_lock:
        if _active_vfs is not _DEFAULT_VFS:
            raise ConfigError("a non-default VFS is already installed")
        _active_vfs = vfs
    try:
        yield vfs
    finally:
        with _install_lock:
            _active_vfs = _DEFAULT_VFS


def seeds_from_env(value: "str | None", default: tuple[int, ...] = (0,)) -> tuple[int, ...]:
    """Parse a whitespace-separated seed list env value (chaos CI knob)."""
    if value is None or not value.strip():
        return default
    try:
        return tuple(int(tok) for tok in value.split())
    except ValueError as exc:
        raise ConfigError(f"bad seed list {value!r}: {exc}") from exc
