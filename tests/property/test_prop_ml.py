"""Property-based tests for the ML substrate."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.preprocessing import OneHotEncoder, StandardScaler

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(3, 40), st.integers(1, 6)),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)


class TestScalerProperties:
    @given(matrices)
    @settings(max_examples=80, deadline=None)
    def test_transform_then_inverse_is_identity(self, X):
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-6
        )

    @given(matrices)
    @settings(max_examples=80, deadline=None)
    def test_transformed_training_data_is_standardised(self, X):
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-7)
        stds = Z.std(axis=0)
        # Unit variance, except (numerically) constant columns, which the
        # scaler centers but leaves at zero spread.
        tiny = 1e-12 * np.maximum(np.abs(X.mean(axis=0)), 1.0)
        for j in range(X.shape[1]):
            if X[:, j].std() > tiny[j]:
                assert abs(stds[j] - 1.0) < 1e-7
            else:
                assert stds[j] <= 1e-7

    @given(matrices, st.floats(-50, 50, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_shift_invariance(self, X, shift):
        # Standardisation is shift-invariant only up to cancellation:
        # std(X + shift) loses ~eps * |shift| / std(X) relative precision,
        # so columns whose spread is dwarfed by the shift are excluded
        # rather than asserted with a vacuously loose tolerance.  Exactly
        # constant columns stay: both fits center them identically.
        spread = X.std(axis=0)
        well_conditioned = (spread == 0.0) | (spread > 1e-6 * (1.0 + abs(shift)))
        assume(bool(np.all(well_conditioned)))
        a = StandardScaler().fit_transform(X)
        b = StandardScaler().fit_transform(X + shift)
        np.testing.assert_allclose(a, b, atol=1e-6)


class TestOneHotProperties:
    @given(st.integers(1, 12), st.lists(st.integers(0, 11), min_size=0, max_size=50))
    @settings(max_examples=80)
    def test_rows_sum_to_one_and_decode(self, n_categories, raw):
        values = np.array([v % n_categories for v in raw], dtype=int)
        out = OneHotEncoder(n_categories).transform(values)
        assert out.shape == (len(values), n_categories)
        if len(values):
            np.testing.assert_allclose(out.sum(axis=1), 1.0)
            np.testing.assert_array_equal(np.argmax(out, axis=1), values)


class TestNaiveBayesProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_feature_permutation_equivariance(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 4))
        y = (X[:, 0] + 0.5 * X[:, 2] > 0).astype(int)
        if len(np.unique(y)) < 2:
            return
        perm = rng.permutation(4)
        a = GaussianNaiveBayes().fit(X, y).predict(X)
        b = GaussianNaiveBayes().fit(X[:, perm], y).predict(X[:, perm])
        np.testing.assert_array_equal(a, b)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_training_points_prefer_their_cluster(self, seed):
        rng = np.random.default_rng(seed)
        offset = 30.0  # far-separated clusters: training accuracy must be 1
        X = np.vstack(
            [rng.normal(0, 1, size=(20, 2)), rng.normal(offset, 1, size=(20, 2))]
        )
        y = np.repeat([0, 1], 20)
        model = GaussianNaiveBayes().fit(X, y)
        np.testing.assert_array_equal(model.predict(X), y)
