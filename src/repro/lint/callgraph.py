"""Project-wide symbol index and call graph for the dataflow analyses.

The per-file rules (PL001–PL010) deliberately see one module at a time;
the dataflow families (PL011–PL014) need to know *who calls whom* across
the whole of ``src/repro``.  This module builds that picture in two
passes, mirroring how an import actually binds names:

1. **Symbol resolution.**  Every library file is parsed once and its
   :class:`~repro.lint.engine.ImportMap` captures what each top-level
   name refers to.  :meth:`ProjectIndex.canonicalize` then follows
   re-export chains (``from repro.serve.ledger import BudgetLedger``
   re-exported through ``repro/serve/__init__.py``) until a name lands
   on its defining module, so ``repro.serve.BudgetLedger`` and
   ``repro.serve.ledger.BudgetLedger`` are the same node.

2. **Receiver typing.**  Methods are reachable through attributes
   (``self._ledger.spend_batch(...)``), so the index records, per
   class, the declared or constructed type of every ``self.X``
   attribute — from ``__init__`` parameter annotations, ``self.X:  T``
   annotations, and ``self.X = ClassName(...)`` constructor calls —
   plus which attributes hold ``threading`` locks.  Call resolution
   walks that map; what it cannot prove it leaves unresolved rather
   than guessing.

Everything here is best-effort and sound-ish in the direction the
analyses need: an unresolved call contributes no edges (the analyses
treat unknown callees conservatively per family), and a resolved edge
is only emitted when the receiver's type chain is provable from the
source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.engine import (
    ImportMap,
    Suppressions,
    _classify,
    _parse_suppressions,
)

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "attr_chain",
]


def attr_chain(expr: ast.expr) -> list[str] | None:
    """``a.b.c`` → ``["a", "b", "c"]``; None for non-Name-rooted chains."""
    parts: list[str] = []
    cur = expr
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    parts.reverse()
    return parts


@dataclass
class ModuleInfo:
    """One parsed library module."""

    module: str
    path: str
    tree: ast.Module
    imports: ImportMap
    suppressions: Suppressions
    is_package: bool


@dataclass
class FunctionInfo:
    """One function or method, addressed by its qualified name."""

    qualname: str  # repro.serve.ledger.BudgetLedger.spend_batch
    module: str
    cls: str | None  # owning class qualname, or None for module functions
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    params: list[str] = field(default_factory=list)
    param_types: dict[str, str] = field(default_factory=dict)
    return_type: str | None = None


@dataclass
class ClassInfo:
    """One class: its methods, typed attributes, and lock attributes."""

    qualname: str
    module: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    # attr name -> "lock" | "rlock" for threading.Lock()/RLock() attrs
    lock_attrs: dict[str, str] = field(default_factory=dict)


_LOCK_CTORS = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "lock",
    "threading.Semaphore": "lock",
    "threading.BoundedSemaphore": "lock",
}


class ProjectIndex:
    """Symbols, classes, functions, and name resolution over a file set."""

    def __init__(self, files: list[Path]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        for file_path in files:
            role, module = _classify(file_path)
            if role != "library" or not module:
                continue
            try:
                source = file_path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(file_path))
            except (OSError, SyntaxError):
                continue
            is_package = file_path.name == "__init__.py"
            self.modules[module] = ModuleInfo(
                module=module,
                path=str(file_path),
                tree=tree,
                imports=ImportMap(tree, module=module, is_package=is_package),
                suppressions=_parse_suppressions(source, tree),
                is_package=is_package,
            )
        for mi in self.modules.values():
            self._collect_definitions(mi)
        # Second pass: types need the full class table to resolve against.
        for mi in self.modules.values():
            self._collect_types(mi)

    # ------------------------------------------------------------------
    # definition collection

    def _collect_definitions(self, mi: ModuleInfo) -> None:
        for node in mi.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mi, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                qualname = f"{mi.module}.{node.name}"
                ci = ClassInfo(qualname=qualname, module=mi.module)
                ci.bases = [
                    base
                    for base in (self.resolve_base(mi, b) for b in node.bases)
                    if base is not None
                ]
                self.classes[qualname] = ci
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fi = self._add_function(mi, item, cls=qualname)
                        ci.methods[item.name] = fi

    def _add_function(
        self,
        mi: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
    ) -> FunctionInfo:
        owner = cls if cls is not None else mi.module
        fi = FunctionInfo(
            qualname=f"{owner}.{node.name}",
            module=mi.module,
            cls=cls,
            name=node.name,
            node=node,
            path=mi.path,
            params=[a.arg for a in [*node.args.posonlyargs, *node.args.args]],
        )
        self.functions[fi.qualname] = fi
        return fi

    # ------------------------------------------------------------------
    # type collection

    def _collect_types(self, mi: ModuleInfo) -> None:
        for fi in self.functions.values():
            if fi.module != mi.module:
                continue
            for arg in [*fi.node.args.posonlyargs, *fi.node.args.args,
                        *fi.node.args.kwonlyargs]:
                if arg.annotation is not None:
                    resolved = self.resolve_type(mi, arg.annotation)
                    if resolved is not None:
                        fi.param_types[arg.arg] = resolved
            if fi.node.returns is not None:
                fi.return_type = self.resolve_type(mi, fi.node.returns)
        for ci in self.classes.values():
            if ci.module != mi.module:
                continue
            self._collect_class_attrs(mi, ci)

    def _collect_class_attrs(self, mi: ModuleInfo, ci: ClassInfo) -> None:
        for meth in ci.methods.values():
            for stmt in ast.walk(meth.node):
                if isinstance(stmt, ast.AnnAssign):
                    target, ann = stmt.target, stmt.annotation
                    attr = self._self_attr(target)
                    if attr is None:
                        continue
                    resolved = self.resolve_type(mi, ann)
                    if resolved is not None:
                        ci.attr_types.setdefault(attr, resolved)
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    attr = self._self_attr(stmt.targets[0])
                    if attr is None:
                        continue
                    self._type_from_value(mi, ci, meth, attr, stmt.value)

    @staticmethod
    def _self_attr(target: ast.expr) -> str | None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        return None

    def _type_from_value(
        self,
        mi: ModuleInfo,
        ci: ClassInfo,
        meth: FunctionInfo,
        attr: str,
        value: ast.expr,
    ) -> None:
        if isinstance(value, ast.Call):
            ctor = mi.imports.resolve(value.func)
            if ctor is None and isinstance(value.func, ast.Name):
                ctor = f"{mi.module}.{value.func.id}"
            if ctor is not None:
                ctor = self.canonicalize(ctor)
                kind = _LOCK_CTORS.get(ctor)
                if kind is not None:
                    ci.lock_attrs.setdefault(attr, kind)
                    return
                if ctor in self.classes:
                    ci.attr_types.setdefault(attr, ctor)
                    return
                # `self.x = make_thing(...)` with an annotated return type.
                fn = self.functions.get(ctor)
                if fn is not None and fn.return_type is not None:
                    ci.attr_types.setdefault(attr, fn.return_type)
        elif isinstance(value, ast.Name):
            # `self.x = param` where the parameter carries an annotation.
            resolved = meth.param_types.get(value.id)
            if resolved is not None:
                ci.attr_types.setdefault(attr, resolved)

    # ------------------------------------------------------------------
    # name resolution

    def canonicalize(self, dotted: str) -> str:
        """Follow re-export chains until *dotted* stops moving."""
        for _ in range(16):
            moved = self._canonicalize_once(dotted)
            if moved == dotted:
                return dotted
            dotted = moved
        return dotted

    def _canonicalize_once(self, dotted: str) -> str:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            mi = self.modules.get(prefix)
            if mi is None:
                continue
            rest = parts[cut:]
            if not rest:
                return dotted
            origin = mi.imports.symbols.get(rest[0])
            if origin is not None:
                return ".".join([origin, *rest[1:]])
            return dotted
        return dotted

    def resolve_type(self, mi: ModuleInfo, ann: ast.expr) -> str | None:
        """A class qualname for an annotation expression, or None.

        Handles the project idioms: plain names, dotted names, string
        annotations (``"BudgetLedger | None"``), unions (first non-None
        member), and subscripted generics (the base is taken).
        """
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            text = ann.value
        else:
            try:
                text = ast.unparse(ann)
            except Exception:
                return None
        for member in text.split("|"):
            base = member.strip().strip("\"'").split("[")[0].strip()
            if not base or base == "None":
                continue
            return self._resolve_dotted_text(mi, base)
        return None

    def _resolve_dotted_text(self, mi: ModuleInfo, text: str) -> str | None:
        head, _, tail = text.partition(".")
        origin = mi.imports.symbols.get(head)
        if origin is None:
            module_alias = mi.imports.modules.get(head)
            if module_alias is not None:
                origin = module_alias
            elif f"{mi.module}.{head}" in self.classes:
                origin = f"{mi.module}.{head}"
            else:
                return None
        dotted = self.canonicalize(f"{origin}.{tail}" if tail else origin)
        return dotted if dotted in self.classes else None

    def lookup_method(self, cls_qualname: str, name: str) -> FunctionInfo | None:
        """Find *name* on the class or (breadth-first) its base classes."""
        seen: set[str] = set()
        queue = [cls_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            ci = self.classes.get(current)
            if ci is None:
                continue
            if name in ci.methods:
                return ci.methods[name]
            queue.extend(ci.bases)
        return None

    def class_attr_type(self, cls_qualname: str, attr: str) -> str | None:
        seen: set[str] = set()
        queue = [cls_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            ci = self.classes.get(current)
            if ci is None:
                continue
            if attr in ci.attr_types:
                return ci.attr_types[attr]
            queue.extend(ci.bases)
        return None

    def lock_attr_kind(self, cls_qualname: str, attr: str) -> str | None:
        seen: set[str] = set()
        queue = [cls_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            ci = self.classes.get(current)
            if ci is None:
                continue
            if attr in ci.lock_attrs:
                return ci.lock_attrs[attr]
            queue.extend(ci.bases)
        return None

    def resolve_call(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        local_types: dict[str, str],
    ) -> str | None:
        """The dotted target of *call* inside *fn*, or None.

        Returns a project function/class qualname when provable, an
        external dotted name (``os.replace``) when the import map knows
        it, and None otherwise.
        """
        mi = self.modules.get(fn.module)
        if mi is None:
            return None
        chain = attr_chain(call.func)
        if chain is None:
            return None
        root = chain[0]
        if root == "self" and fn.cls is not None:
            if len(chain) == 2:
                target = self.lookup_method(fn.cls, chain[1])
                return target.qualname if target else None
            if len(chain) == 3:
                owner = self.class_attr_type(fn.cls, chain[1])
                if owner is not None:
                    target = self.lookup_method(owner, chain[2])
                    return target.qualname if target else f"{owner}.{chain[2]}"
            return None
        if root in local_types and len(chain) == 2:
            owner = local_types[root]
            target = self.lookup_method(owner, chain[1])
            return target.qualname if target else f"{owner}.{chain[1]}"
        dotted = mi.imports.resolve(call.func)
        if dotted is not None:
            return self.canonicalize(dotted)
        if isinstance(call.func, ast.Name):
            local = f"{fn.module}.{call.func.id}"
            if local in self.functions or local in self.classes:
                return local
        return None

    def resolve_base(self, mi: ModuleInfo, base: ast.expr) -> str | None:
        dotted = mi.imports.resolve(base)
        if dotted is None and isinstance(base, ast.Name):
            dotted = f"{mi.module}.{base.id}"
        if dotted is None:
            return None
        return self.canonicalize(dotted)
