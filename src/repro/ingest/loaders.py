"""Streaming, validating loaders for the three on-disk dataset formats.

Each loader walks its source one record at a time, classifies every
damaged record into the :class:`~repro.core.errors.IngestError`
taxonomy, and resolves it under the requested policy:

* ``strict`` — raise immediately, naming the file and the 1-based record
  (plus the byte offset for encoding damage and truncation);
* ``repair`` — apply the deterministic fix where one exists (strip
  whitespace damage, clamp out-of-bounds coordinates, drop exact
  duplicates, restore declared ID order) and raise on anything else;
* ``quarantine`` — apply the same deterministic fixes, divert every
  *unfixable* record to a JSONL sidecar, and keep going.

File-scoped damage — truncation, undecodable bytes under
strict/repair, a missing or inconsistent sidecar, a malformed header —
always raises: records that never made it to disk cannot be repaired or
quarantined.  Every loader returns the parsed dataset together with an
:class:`~repro.ingest.report.IngestReport` whose fates account for every
input record, and registers that report with the provenance collector.
"""

from __future__ import annotations

import csv
import json
import math
import xml.etree.ElementTree as ET
from collections.abc import Callable, Iterator, Sequence
from pathlib import Path
from typing import TYPE_CHECKING, TypeVar

if TYPE_CHECKING:
    from repro.datasets.trajectory import Trajectory

import numpy as np

from repro.core.errors import (
    CoordinateBoundsError,
    DatasetError,
    DuplicateRecordError,
    EncodingDamageError,
    IngestError,
    SchemaDriftError,
    TruncatedInputError,
)
from repro.geo.bbox import BBox
from repro.geo.point import GeoPoint
from repro.geo.projection import LocalProjection
from repro.ingest.atomic import atomic_write_text, file_sha256
from repro.ingest.report import POLICIES, IngestReport, RecordIssue, record_ingest_report
from repro.poi.database import POIDatabase
from repro.poi.vocabulary import TypeVocabulary

__all__ = [
    "ingest_poi_csv",
    "ingest_trajectory_log",
    "ingest_osm_xml",
    "POI_CSV_HEADER",
    "TRAJECTORY_LOG_HEADER",
    "DEFAULT_TYPE_KEYS",
    "META_SUFFIX",
    "QUARANTINE_SUFFIX",
]

#: Column schema of the POI CSV format (written by ``save_database``).
POI_CSV_HEADER = ("poi_id", "x", "y", "type")

#: Column schema of the trajectory log format
#: (written by ``repro.datasets.trajectory_io.save_trajectory_log``).
TRAJECTORY_LOG_HEADER = ("user_id", "t", "x", "y")

#: Tag keys consulted for an OSM node's POI type, in priority order.
DEFAULT_TYPE_KEYS = ("amenity", "shop", "leisure", "tourism")

#: Suffix of the JSON metadata sidecar next to a POI CSV.
META_SUFFIX = ".meta.json"

#: Suffix of the quarantine sidecar written next to a damaged source.
QUARANTINE_SUFFIX = ".quarantine.jsonl"

_T = TypeVar("_T")


class _Ingestion:
    """Per-run policy state: the report, quarantine buffer, and resolver.

    Every record lands in exactly one fate, however many damages it
    carries: ``_fates`` remembers each record's current fate so a second
    repair on the same record only adds an issue, and a quarantine after
    an earlier repair moves the record rather than counting it twice.
    """

    def __init__(
        self,
        path: Path,
        fmt: str,
        policy: str,
        quarantine_path: "str | Path | None",
    ) -> None:
        if policy not in POLICIES:
            raise IngestError(
                f"unknown ingest policy {policy!r}; expected one of {POLICIES}"
            )
        self.path = path
        self.policy = policy
        self.report = IngestReport(
            path=str(path), format=fmt, policy=policy, source_sha256=file_sha256(path)
        )
        self._quarantine_path = Path(
            quarantine_path
            if quarantine_path is not None
            else path.with_name(path.name + QUARANTINE_SUFFIX)
        )
        self._quarantined: list[dict] = []
        self._fates: dict[int, str] = {}

    def ok(self, record: int) -> None:
        """Fate *record* ``ok`` — a no-op if a repair already fated it."""
        if record not in self._fates:
            self._fates[record] = "ok"
            self.report.tally("ok")

    def repaired(self, record: int, exc_cls: type[IngestError], detail: str) -> None:
        issue = RecordIssue(record, exc_cls.__name__, detail, "repaired")
        if record in self._fates:
            self.report.note(issue)
        else:
            self._fates[record] = "repaired"
            self.report.tally("repaired", issue)

    def refate_repaired(self, record: int, detail: str) -> None:
        """Post-stream repair of a record provisionally fated ``ok``."""
        issue = RecordIssue(
            record, DuplicateRecordError.__name__, detail, "repaired"
        )
        if self._fates.get(record) == "ok":
            self._fates[record] = "repaired"
            self.report.refate("ok", issue)
        else:
            self.report.note(issue)

    def resolve(
        self,
        record: int,
        exc_cls: type[IngestError],
        detail: str,
        raw: object,
        repair: "Callable[[], _T] | None" = None,
    ) -> "_T | None":
        """Settle one damaged record under the active policy.

        Returns the repaired value when the damage is deterministically
        fixable and the policy allows repairs, ``None`` when the record
        was quarantined, and raises the typed error otherwise.
        """
        if self.policy in ("repair", "quarantine") and repair is not None:
            value = repair()
            self.repaired(record, exc_cls, detail)
            return value
        if self.policy == "quarantine":
            issue = RecordIssue(record, exc_cls.__name__, detail, "quarantined")
            prior = self._fates.get(record)
            self._fates[record] = "quarantined"
            if prior is None:
                self.report.tally("quarantined", issue)
            else:
                self.report.refate(prior, issue)
            self._quarantined.append(
                {"record": record, "error": exc_cls.__name__, "detail": detail, "raw": raw}
            )
            return None
        raise exc_cls(detail, path=self.path, record=record)

    def finish(self) -> IngestReport:
        """Flush the quarantine sidecar (atomically) and publish the report."""
        if self._quarantined:
            atomic_write_text(
                self._quarantine_path,
                "".join(json.dumps(entry) + "\n" for entry in self._quarantined),
            )
            self.report.quarantine_path = str(self._quarantine_path)
        record_ingest_report(self.report)
        return self.report


def _iter_decoded_lines(path: Path) -> Iterator[tuple[int, int, "str | None", bytes]]:
    """Yield ``(1-based line no, byte offset, text or None, raw bytes)``.

    Lines are read as bytes and decoded individually, so encoding damage
    is localised to the record that carries it (``text is None``).  A
    final line with no terminating newline signals truncation mid-record
    and raises :class:`TruncatedInputError` — every writer in this
    repository terminates its last record.
    """
    offset = 0
    with path.open("rb") as fh:
        for lineno, raw in enumerate(fh, start=1):
            if not raw.endswith(b"\n"):
                raise TruncatedInputError(
                    f"file ends mid-record at byte {offset + len(raw)} "
                    f"(line {lineno} has no terminating newline)",
                    path=path,
                )
            try:
                text = raw.decode("utf-8").rstrip("\r\n")
            except UnicodeDecodeError:
                text = None
            yield lineno, offset, text, raw
            offset += len(raw)


def _split_csv(line: str) -> "list[str] | None":
    """Parse one single-line CSV record (the formats never quote newlines).

    ``None`` when the csv machinery itself rejects the line (a stray
    control character from bit-level damage): the caller classifies that
    as schema drift rather than letting ``_csv.Error`` escape.
    """
    try:
        rows = list(csv.reader([line]))
    except csv.Error:
        return None
    return rows[0] if rows else []


def _parse_float(field: str) -> "float | None":
    try:
        return float(field)
    except ValueError:
        return None


def _parse_int(field: str) -> "int | None":
    try:
        return int(field)
    except ValueError:
        return None


def _decode_or_resolve(
    ing: _Ingestion, record: int, lineno: int, offset: int, text: "str | None", raw: bytes
) -> bool:
    """Handle per-line encoding damage; True when the record is usable."""
    if text is not None:
        return True
    ing.resolve(
        record,
        EncodingDamageError,
        f"line {lineno} (byte {offset}) does not decode as UTF-8",
        raw.hex(),
    )
    return False


# --- POI CSV + JSON sidecar ------------------------------------------------


def _load_sidecar(csv_path: Path) -> tuple[dict, TypeVocabulary, BBox]:
    """Read and validate the ``.meta.json`` sidecar next to *csv_path*."""
    meta_path = csv_path.with_name(csv_path.name + META_SUFFIX)
    if not meta_path.exists():
        raise IngestError(f"metadata sidecar not found: {meta_path}")
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except UnicodeDecodeError as exc:
        raise EncodingDamageError(
            f"metadata sidecar does not decode as UTF-8: {exc}", path=meta_path
        ) from exc
    except json.JSONDecodeError as exc:
        raise SchemaDriftError(
            f"metadata sidecar is not valid JSON: {exc}", path=meta_path
        ) from exc
    if not isinstance(meta, dict):
        raise SchemaDriftError(
            f"metadata sidecar must be a JSON object, got {type(meta).__name__}",
            path=meta_path,
        )
    for key in ("n_pois", "types", "bounds"):
        if key not in meta:
            raise SchemaDriftError(
                f"metadata sidecar is missing key {key!r}", path=meta_path
            )
    if not isinstance(meta["n_pois"], int) or meta["n_pois"] < 0:
        raise SchemaDriftError(
            f"sidecar n_pois must be a non-negative integer, got {meta['n_pois']!r}",
            path=meta_path,
        )
    types = meta["types"]
    if not isinstance(types, list) or not all(isinstance(t, str) for t in types):
        raise SchemaDriftError(
            "sidecar 'types' must be a list of strings", path=meta_path
        )
    try:
        vocab = TypeVocabulary(types)
    except DatasetError as exc:
        raise SchemaDriftError(f"sidecar 'types' invalid: {exc}", path=meta_path) from exc
    bounds_raw = meta["bounds"]
    if (
        not isinstance(bounds_raw, list)
        or len(bounds_raw) != 4
        or not all(isinstance(b, (int, float)) and math.isfinite(b) for b in bounds_raw)
    ):
        raise SchemaDriftError(
            "sidecar 'bounds' must be four finite numbers "
            "[min_x, min_y, max_x, max_y]",
            path=meta_path,
        )
    min_x, min_y, max_x, max_y = (float(b) for b in bounds_raw)
    if min_x > max_x or min_y > max_y:
        raise SchemaDriftError(
            f"sidecar 'bounds' are inverted: {bounds_raw}", path=meta_path
        )
    return meta, vocab, BBox(min_x, min_y, max_x, max_y)


def ingest_poi_csv(
    csv_path: "str | Path",
    *,
    policy: str = "strict",
    quarantine_path: "str | Path | None" = None,
) -> tuple[POIDatabase, IngestReport]:
    """Load a POI CSV (+ ``.meta.json`` sidecar) under an ingest policy.

    Validates, per data row: field count, integer ``poi_id``, finite
    float coordinates inside the sidecar bounds, a type name from the
    sidecar vocabulary, unique IDs in declared (0..n-1) order; and, per
    file: UTF-8 encoding, a terminated final record, and a row count
    matching the sidecar's ``n_pois``.
    """
    csv_path = Path(csv_path)
    if not csv_path.exists():
        raise IngestError(f"POI CSV not found: {csv_path}")
    _meta_dict, vocab, bounds = _load_sidecar(csv_path)
    declared = _meta_dict["n_pois"]
    ing = _Ingestion(csv_path, "poi-csv", policy, quarantine_path)

    header_seen = False
    # Rows that survive validation: (record, poi_id, x, y, type_id).
    kept: list[tuple[int, int, float, float, int]] = []
    seen_ids: dict[int, tuple[float, float, int]] = {}
    n_rows = 0
    for lineno, offset, text, raw in _iter_decoded_lines(csv_path):
        if not header_seen:
            if text is None:
                raise EncodingDamageError(
                    f"header line does not decode as UTF-8 (byte {offset})",
                    path=csv_path,
                )
            header = _split_csv(text)
            if header is None or tuple(header) != POI_CSV_HEADER:
                raise SchemaDriftError(
                    f"header mismatch: expected {','.join(POI_CSV_HEADER)!r}, "
                    f"got {text!r}",
                    path=csv_path,
                )
            header_seen = True
            continue
        n_rows += 1
        record = n_rows  # 1-based data row, header excluded
        if not _decode_or_resolve(ing, record, lineno, offset, text, raw):
            continue
        assert text is not None
        row = _parse_poi_row(ing, record, text, vocab, bounds)
        if row is None:
            continue
        poi_id, x, y, type_id = row
        if poi_id in seen_ids:
            detail = f"duplicate poi_id {poi_id}"
            repair = None
            if seen_ids[poi_id] == (x, y, type_id):
                # Byte-identical payload: dropping the copy is lossless.
                repair = lambda: None  # noqa: E731 — sentinel "drop" repair
                detail += " (exact duplicate of an earlier row)"
            ing.resolve(record, DuplicateRecordError, detail, text, repair)
            continue
        seen_ids[poi_id] = (x, y, type_id)
        kept.append((record, poi_id, x, y, type_id))
        ing.ok(record)  # may be re-fated to "repaired" by the order check below

    if not header_seen:
        raise TruncatedInputError("empty POI CSV (no header row)", path=csv_path)
    if n_rows < declared:
        raise TruncatedInputError(
            f"POI count mismatch: CSV has {n_rows} data rows, sidecar declares "
            f"{declared} (truncated input?)",
            path=csv_path,
        )

    kept = _restore_declared_order(ing, kept)
    if len(kept) != declared and n_rows == len(kept):
        # Nothing was diverted or dropped, yet the count disagrees: the
        # sidecar and CSV are inconsistent with each other.
        raise SchemaDriftError(
            f"POI count mismatch: CSV has {len(kept)} data rows, sidecar "
            f"declares {declared}",
            path=csv_path,
        )

    report = ing.finish()
    if not kept:
        raise TruncatedInputError(
            "no loadable POI rows survived ingestion", path=csv_path
        )
    xy = np.array([[x, y] for _, _, x, y, _ in kept], dtype=float)
    type_ids = np.array([t for *_, t in kept], dtype=np.intp)
    return POIDatabase(xy, type_ids, vocab, bounds=bounds), report


def _parse_poi_row(
    ing: _Ingestion, record: int, text: str, vocab: TypeVocabulary, bounds: BBox
) -> "tuple[int, float, float, int] | None":
    """Validate one CSV row; None when it was quarantined/unusable."""
    fields = _split_csv(text)
    if fields is None:
        ing.resolve(
            record, SchemaDriftError, "row is not a parsable CSV record", text
        )
        return None
    if len(fields) != len(POI_CSV_HEADER):
        ing.resolve(
            record,
            SchemaDriftError,
            f"expected {len(POI_CSV_HEADER)} fields, got {len(fields)}",
            text,
        )
        return None
    raw_id, raw_x, raw_y, raw_type = fields

    poi_id = _parse_int(raw_id)
    if poi_id is None:
        repaired_id = _parse_int(raw_id.strip())
        result = ing.resolve(
            record,
            SchemaDriftError,
            f"poi_id {raw_id!r} is not an integer",
            text,
            (lambda: repaired_id) if repaired_id is not None else None,
        )
        if result is None:
            return None
        poi_id = result

    coords: list[float] = []
    for name, raw_field in (("x", raw_x), ("y", raw_y)):
        value = _parse_float(raw_field)
        if value is None:
            repaired_value = _parse_float(raw_field.strip())
            result = ing.resolve(
                record,
                SchemaDriftError,
                f"{name} {raw_field!r} is not a number",
                text,
                (lambda v=repaired_value: v) if repaired_value is not None else None,
            )
            if result is None:
                return None
            value = result
        coords.append(value)
    x, y = coords
    if not (math.isfinite(x) and math.isfinite(y)):
        ing.resolve(
            record, CoordinateBoundsError, f"non-finite coordinates ({x}, {y})", text
        )
        return None
    if not (bounds.min_x <= x <= bounds.max_x and bounds.min_y <= y <= bounds.max_y):
        clamped = (
            min(max(x, bounds.min_x), bounds.max_x),
            min(max(y, bounds.min_y), bounds.max_y),
        )
        result = ing.resolve(
            record,
            CoordinateBoundsError,
            f"({x}, {y}) outside sidecar bounds "
            f"[{bounds.min_x}, {bounds.min_y}, {bounds.max_x}, {bounds.max_y}]",
            text,
            lambda: clamped,
        )
        if result is None:
            return None
        x, y = result

    if raw_type in vocab:
        type_id = vocab.id_of(raw_type)
    else:
        stripped = raw_type.strip()
        result = ing.resolve(
            record,
            SchemaDriftError,
            f"unknown type name {raw_type!r}",
            text,
            (lambda: vocab.id_of(stripped)) if stripped in vocab else None,
        )
        if result is None:
            return None
        type_id = result
    return poi_id, x, y, type_id


def _restore_declared_order(
    ing: _Ingestion, kept: list[tuple[int, int, float, float, int]]
) -> list[tuple[int, int, float, float, int]]:
    """Enforce the declared ascending poi_id order on the surviving rows.

    Under strict, any ID out of ascending order raises; under
    repair/quarantine the rows are sorted back (a deterministic fix) and
    the displaced rows re-fated from ``ok`` to ``repaired``.  Gaps in
    the ID sequence are legitimate after quarantining, so only *order*
    is enforced here.
    """
    ids = [poi_id for _, poi_id, _, _, _ in kept]
    if ids == sorted(ids):
        return kept
    first_bad = next(i for i in range(1, len(ids)) if ids[i] < ids[i - 1])
    if ing.policy == "strict":
        raise DuplicateRecordError(
            f"poi_id order violated: id {ids[first_bad]} follows {ids[first_bad - 1]}",
            path=ing.path,
            record=kept[first_bad][0],
        )
    ordered = sorted(kept, key=lambda row: row[1])
    for i, row in enumerate(ordered):
        if row is not kept[i]:
            ing.refate_repaired(
                row[0], f"poi_id {row[1]} out of declared order; restored by sort"
            )
    return ordered


# --- trajectory logs -------------------------------------------------------


def ingest_trajectory_log(
    path: "str | Path",
    *,
    policy: str = "strict",
    quarantine_path: "str | Path | None" = None,
) -> "tuple[list[Trajectory], IngestReport]":
    """Load a trajectory log (``user_id,t,x,y`` CSV) under an ingest policy.

    Validates, per data row: field count, integer ``user_id``, finite
    floats, and per user: nondecreasing timestamps (repairable by a
    stable sort) and no duplicated samples (an exact duplicate is
    droppable; two samples at one timestamp with different locations are
    not).  Returns ``(trajectories, report)``.
    """
    from repro.datasets.trajectory import Trajectory, TrajectoryPoint
    from repro.geo.point import Point

    path = Path(path)
    if not path.exists():
        raise IngestError(f"trajectory log not found: {path}")
    ing = _Ingestion(path, "trajectory-log", policy, quarantine_path)

    header_seen = False
    per_user: dict[int, list[tuple[float, float, float]]] = {}
    seen_samples: dict[int, set[tuple[float, float, float]]] = {}
    seen_times: dict[int, set[float]] = {}
    n_rows = 0
    for lineno, offset, text, raw in _iter_decoded_lines(path):
        if not header_seen:
            if text is None:
                raise EncodingDamageError(
                    f"header line does not decode as UTF-8 (byte {offset})", path=path
                )
            header = _split_csv(text)
            if header is None or tuple(header) != TRAJECTORY_LOG_HEADER:
                raise SchemaDriftError(
                    f"header mismatch: expected "
                    f"{','.join(TRAJECTORY_LOG_HEADER)!r}, got {text!r}",
                    path=path,
                )
            header_seen = True
            continue
        n_rows += 1
        record = n_rows
        if not _decode_or_resolve(ing, record, lineno, offset, text, raw):
            continue
        assert text is not None
        fields = _split_csv(text)
        if fields is None:
            ing.resolve(
                record, SchemaDriftError, "row is not a parsable CSV record", text
            )
            continue
        if len(fields) != len(TRAJECTORY_LOG_HEADER):
            ing.resolve(
                record,
                SchemaDriftError,
                f"expected {len(TRAJECTORY_LOG_HEADER)} fields, got {len(fields)}",
                text,
            )
            continue
        user_id = _parse_int(fields[0].strip())
        values = [_parse_float(f.strip()) for f in fields[1:]]
        if user_id is None or any(v is None for v in values):
            bad = fields[0] if user_id is None else fields[1 + values.index(None)]
            ing.resolve(
                record, SchemaDriftError, f"unparsable field {bad!r}", text
            )
            continue
        t, x, y = (float(v) for v in values if v is not None)
        if not all(math.isfinite(v) for v in (t, x, y)):
            ing.resolve(
                record,
                CoordinateBoundsError,
                f"non-finite sample (t={t}, x={x}, y={y})",
                text,
            )
            continue
        samples = per_user.setdefault(user_id, [])
        if (t, x, y) in seen_samples.get(user_id, set()):
            ing.resolve(
                record,
                DuplicateRecordError,
                f"exact duplicate sample for user {user_id} at t={t}",
                text,
                lambda: None,  # dropping an identical sample is lossless
            )
            continue
        if t in seen_times.get(user_id, set()):
            ing.resolve(
                record,
                DuplicateRecordError,
                f"two different samples for user {user_id} at t={t}",
                text,
            )
            continue
        if samples and t < samples[-1][0]:
            if ing.policy == "strict":
                raise DuplicateRecordError(
                    f"out-of-order sample for user {user_id}: t={t} after "
                    f"t={samples[-1][0]}",
                    path=path,
                    record=record,
                )
            ing.repaired(
                record,
                DuplicateRecordError,
                f"out-of-order sample for user {user_id} at t={t}; "
                "restored by stable sort",
            )
        else:
            ing.ok(record)
        samples.append((t, x, y))
        seen_samples.setdefault(user_id, set()).add((t, x, y))
        seen_times.setdefault(user_id, set()).add(t)

    if not header_seen:
        raise TruncatedInputError("empty trajectory log (no header row)", path=path)

    report = ing.finish()
    trajectories = [
        Trajectory(
            user_id=user,
            points=tuple(
                TrajectoryPoint(Point(x, y), t)
                for t, x, y in sorted(samples, key=lambda s: s[0])
            ),
        )
        for user, samples in per_user.items()
    ]
    return trajectories, report


# --- OSM XML ---------------------------------------------------------------


def _node_type(tags: dict[str, str], type_keys: Sequence[str]) -> "str | None":
    for key in type_keys:
        value = tags.get(key)
        if value:
            return f"{key}:{value}"
    return None


def _classify_parse_error(exc: ET.ParseError) -> type[IngestError]:
    """Truncation shows up as an EOF-shaped parse error; damage as syntax."""
    message = str(exc)
    if message.startswith(("no element found", "unclosed token", "unclosed CDATA")):
        return TruncatedInputError
    return SchemaDriftError


def ingest_osm_xml(
    path: "str | Path",
    *,
    policy: str = "strict",
    type_keys: Sequence[str] = DEFAULT_TYPE_KEYS,
    anchor: "GeoPoint | None" = None,
    cell_size: float = 500.0,
    quarantine_path: "str | Path | None" = None,
) -> tuple[POIDatabase, IngestReport]:
    """Parse an ``.osm`` XML extract into a database under an ingest policy.

    Nodes carrying one of *type_keys* are the records; tagless nodes are
    geometry and are skipped without entering the ledger.  Validates,
    per record: ``lat``/``lon`` present and parsable (a POI node missing
    them is schema drift, naming the node id), coordinates inside WGS-84
    range (repairable by clamping), and unique node ids (an exact
    duplicate is droppable).  An extract with zero matching tag keys
    raises :class:`SchemaDriftError`; an empty or mid-element-truncated
    file raises :class:`TruncatedInputError`.
    """
    path = Path(path)
    if not path.exists():
        raise IngestError(f"OSM file not found: {path}")
    with path.open("rb") as fh:
        if not fh.read(4096).strip():
            raise TruncatedInputError("empty OSM file", path=path)
    ing = _Ingestion(path, "osm-xml", policy, quarantine_path)

    geos: list[GeoPoint] = []
    type_names: list[str] = []
    seen_nodes: dict[str, tuple[float, float, str]] = {}
    n_nodes = 0
    try:
        for _event, node in ET.iterparse(path, events=("end",)):
            if node.tag != "node":
                continue
            n_nodes += 1
            parsed = _parse_osm_node(ing, n_nodes, node, type_keys, seen_nodes)
            node.clear()
            if parsed is None:
                continue
            lat, lon, name = parsed
            geos.append(GeoPoint(lat, lon))
            type_names.append(name)
    except ET.ParseError as exc:
        raise _classify_parse_error(exc)(
            f"malformed OSM XML in {path}: {exc}", path=path
        ) from exc
    except (LookupError, ValueError) as exc:
        # expat rejecting the declared encoding (damaged or unsupported
        # <?xml encoding=...?>) surfaces as LookupError/ValueError.
        raise EncodingDamageError(
            f"undecodable OSM XML in {path}: {exc}", path=path
        ) from exc

    report = ing.finish()
    if not geos:
        raise SchemaDriftError(
            f"no POI nodes found in {path} (looked for tags {tuple(type_keys)})",
            path=path,
        )

    if anchor is None:
        anchor = GeoPoint(
            float(np.mean([g.lat for g in geos])),
            float(np.mean([g.lon for g in geos])),
        )
    projection = LocalProjection(anchor)
    xy = np.array([[p.x, p.y] for p in (projection.to_plane(g) for g in geos)])
    vocabulary = TypeVocabulary(sorted(set(type_names)))
    type_ids = np.array([vocabulary.id_of(n) for n in type_names], dtype=np.intp)
    return POIDatabase(xy, type_ids, vocabulary, cell_size=cell_size), report


def _parse_osm_node(
    ing: _Ingestion,
    ordinal: int,
    node: ET.Element,
    type_keys: Sequence[str],
    seen_nodes: dict[str, tuple[float, float, str]],
) -> "tuple[float, float, str] | None":
    """Validate one ``<node>``; None when skipped or quarantined."""
    tags = {tag.get("k", ""): tag.get("v", "") for tag in node.findall("tag")}
    name = _node_type(tags, type_keys)
    if name is None:
        return None  # geometry, not a POI record: stays out of the ledger
    node_id = node.get("id", f"<node #{ordinal}>")
    raw = {"id": node_id, "lat": node.get("lat"), "lon": node.get("lon"), "type": name}

    lat_attr, lon_attr = node.get("lat"), node.get("lon")
    if lat_attr is None or lon_attr is None:
        missing = "lat" if lat_attr is None else "lon"
        ing.resolve(
            ordinal,
            SchemaDriftError,
            f"POI node {node_id} is missing the {missing!r} attribute",
            raw,
        )
        return None
    lat, lon = _parse_float(lat_attr.strip()), _parse_float(lon_attr.strip())
    if lat is None or lon is None:
        bad = lat_attr if lat is None else lon_attr
        ing.resolve(
            ordinal,
            SchemaDriftError,
            f"node {node_id} has unparsable coordinate {bad!r}",
            raw,
        )
        return None
    if not (math.isfinite(lat) and math.isfinite(lon)):
        ing.resolve(
            ordinal,
            CoordinateBoundsError,
            f"node {node_id} has non-finite coordinates ({lat}, {lon})",
            raw,
        )
        return None
    if not (-90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0):
        clamped = (min(max(lat, -90.0), 90.0), min(max(lon, -180.0), 180.0))
        result = ing.resolve(
            ordinal,
            CoordinateBoundsError,
            f"node {node_id} coordinates ({lat}, {lon}) outside WGS-84 range",
            raw,
            lambda: clamped,
        )
        if result is None:
            return None
        lat, lon = result
    if node_id in seen_nodes:
        detail = f"duplicate node id {node_id}"
        repair = None
        if seen_nodes[node_id] == (lat, lon, name):
            repair = lambda: None  # noqa: E731 — sentinel "drop" repair
            detail += " (exact duplicate of an earlier node)"
        ing.resolve(ordinal, DuplicateRecordError, detail, raw, repair)
        return None
    seen_nodes[node_id] = (lat, lon, name)
    ing.ok(ordinal)
    return lat, lon, name
