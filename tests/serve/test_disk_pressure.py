"""The ISSUE acceptance path: ENOSPC during serve degrades to typed
503 + Retry-After refusals, the ledger stays consistent, and a clean
restart picks up where the disk left off."""

import errno

from repro.core.vfs import DiskFaultPlan, FaultyVFS, install_vfs
from repro.dp.mechanisms import PrivacyParams
from repro.serve import ReleaseRequest, ReleaseService, ServeConfig


def make_service(db, tmp_path, **cfg):
    defaults = dict(
        queue_capacity=32,
        n_workers=1,
        batch_max=8,
        batch_wait_s=0.002,
        poll_interval_s=0.01,
        deadline_s=5.0,
        retry_after_s=0.25,
        disk_retry_after_s=30.0,  # long horizon: no flaky expiry mid-test
    )
    defaults.update(cfg)
    return ReleaseService(
        db,
        PrivacyParams(50.0, 0.0),
        config=ServeConfig(**defaults),
        ledger_dir=str(tmp_path / "ledger"),
        seed=11,
    )


def request(user="alice", defense="laplace"):
    return ReleaseRequest(user_id=user, x=500.0, y=500.0, radius=150.0, defense=defense)


def full_disk():
    """Every WAL write refuses with ENOSPC; everything else is healthy."""
    return FaultyVFS(
        DiskFaultPlan(enospc_rate=1.0, path_substring="ledger.wal")
    )


def test_enospc_degrades_to_unavailable_and_restart_is_clean(db, tmp_path):
    service = make_service(db, tmp_path)
    with service:
        # Healthy disk: a charged release completes and is durably spent.
        assert service.submit(request()).status == "queued"
        assert service.drain(10.0)
        assert service.ledger.stats()["n_granted"] == 1

        with install_vfs(full_disk()):
            # Queued before the pressure is visible; the dispatch-time
            # charge hits ENOSPC and fails the job without committing.
            racing = service.submit(request())
            assert racing.status == "queued"
            assert service.drain(10.0)
            job = service.job(racing.job.job_id)
            assert job.fate == "failed"
            assert "disk" in (job.error or "").lower()

            # Admission now refuses charged work up front: 503-shaped
            # outcome with a Retry-After horizon, journalled as such.
            refused = service.submit(request())
            assert refused.status == "unavailable"
            assert refused.job is None  # no job was created
            assert refused.retry_after_s is not None
            assert 0 < refused.retry_after_s <= 30.0

            # Uncharged work keeps flowing under the same full disk.
            raw = service.submit(request(defense="raw"))
            assert raw.status == "queued"
            assert service.drain(10.0)
            assert service.job(raw.job.job_id).fate == "completed"

        counters = service.store.counters
        assert counters.completed == 2 and counters.failed == 1
        assert counters.consistent()
        # Nothing was committed for the failed/refused submits.
        assert service.ledger.stats()["n_granted"] == 1

    # The disk recovered and the process restarted: the reopened ledger
    # replays to exactly the acknowledged spend, and service resumes.
    restarted = make_service(db, tmp_path)
    assert restarted.ledger.user_state("alice")["spent_epsilon"] == 1.0
    with restarted:
        assert restarted.submit(request()).status == "queued"
        assert restarted.drain(10.0)
    assert restarted.ledger.user_state("alice")["spent_epsilon"] == 2.0


def test_unavailable_submits_do_not_leak_jobs_or_budget(db, tmp_path):
    service = make_service(db, tmp_path)
    with service:
        with install_vfs(full_disk()):
            first = service.submit(request())
            assert service.drain(10.0)
            for _ in range(5):
                assert service.submit(request()).status == "unavailable"
        assert service.job(first.job.job_id).fate == "failed"
    stats = service.ledger.stats()
    assert stats["n_granted"] == 0
    counters = service.store.counters
    assert counters.failed == 1
    assert counters.consistent()


def test_enospc_error_is_typed_all_the_way_down(db, tmp_path):
    """The DiskPressureError the ledger raises carries the errno, so the
    journal and operators can tell a full disk from a dying one."""
    from repro.core.errors import DiskPressureError

    service = make_service(db, tmp_path)
    try:
        with install_vfs(full_disk()):
            try:
                service.ledger.spend("alice", 1.0)
            except DiskPressureError as exc:
                assert exc.errno == errno.ENOSPC
            else:
                raise AssertionError("full disk accepted a spend")
    finally:
        service.ledger.close()
