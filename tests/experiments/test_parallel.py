"""Tests for sharded (multi-process) experiment execution."""

import os

import pytest

from repro.core.errors import ConfigError, ShardError
from repro.experiments.fig4_geoind import run_fig4
from repro.experiments.parallel import (
    DEFAULT_SHARDS,
    SHARD_AXES,
    SHARD_SPECS,
    resolve_max_workers,
    run_sharded,
)
from repro.experiments.scale import ExperimentScale

MICRO = ExperimentScale(
    name="ci",
    n_targets=12,
    n_train=50,
    n_validation=20,
    n_area_samples=1_000,
    n_taxis=10,
    n_users=8,
    seed=5,
)


class TestRunSharded:
    def test_matches_serial_run_exactly(self):
        """Label-derived RNGs make sharded == serial, row for row."""
        shards = ("bj_random", "nyc_random")
        kwargs = dict(radii=(1_000.0,), epsilons=(0.1,))
        serial = run_fig4(MICRO, datasets=shards, **kwargs)
        sharded = run_sharded(
            "fig4", MICRO, shards=shards, max_workers=2, **kwargs
        )
        assert sharded.rows == serial.rows

    def test_merged_config_records_shards(self):
        sharded = run_sharded(
            "fig4",
            MICRO,
            shards=("bj_random",),
            max_workers=1,
            radii=(1_000.0,),
            epsilons=(0.1,),
        )
        assert sharded.config["datasets"] == ["bj_random"]

    def test_validation(self):
        with pytest.raises(ConfigError):
            run_sharded("fig4", MICRO, shards=())
        with pytest.raises(ConfigError):
            run_sharded("datasets", MICRO, shards=("x",))  # no shard axis
        with pytest.raises(ConfigError):
            run_sharded("fig99", MICRO, shards=("x",), shard_param="datasets")

    def test_shard_axes_cover_dataset_experiments(self):
        assert SHARD_AXES["fig4"] == "datasets"
        assert SHARD_AXES["fig2"] == "city_names"

    def test_first_failure_cancels_and_names_the_shard(self):
        """Plain-pool path: fail fast with the shard id, not a bare traceback."""
        with pytest.raises(ShardError) as excinfo:
            run_sharded(
                "fig4",
                MICRO,
                shards=("bj_random", "no_such_dataset"),
                max_workers=2,
                supervised=False,
                radii=(1_000.0,),
                epsilons=(0.1,),
            )
        assert excinfo.value.shard == "no_such_dataset"
        assert "datasets='no_such_dataset'" in str(excinfo.value)
        assert "fig4" in str(excinfo.value)

    def test_pool_mode_records_provenance(self):
        result = run_sharded(
            "fig4",
            MICRO,
            shards=("bj_random",),
            max_workers=1,
            radii=(1_000.0,),
            epsilons=(0.1,),
        )
        assert result.provenance["sharding"]["mode"] == "pool"
        assert result.provenance["sharding"]["max_workers"] == 1


class TestShardSpecs:
    """SHARD_SPECS is the single source of truth for default shard menus."""

    def test_two_dataset_experiments_have_their_own_menu(self):
        assert SHARD_SPECS["fig9_10"].shards == ("bj_tdrive", "nyc_foursquare")
        assert SHARD_SPECS["fig11_12"].shards == ("bj_tdrive", "nyc_foursquare")

    def test_full_menu_experiments_use_the_default_menus(self):
        assert SHARD_SPECS["fig4"].shards == DEFAULT_SHARDS["datasets"]
        assert SHARD_SPECS["fig2"].shards == DEFAULT_SHARDS["city_names"]

    def test_axes_view_is_derived_from_specs(self):
        assert SHARD_AXES == {k: v.param for k, v in SHARD_SPECS.items()}


class TestResolveMaxWorkers:
    def test_default_caps_at_shard_count(self):
        assert resolve_max_workers(None, 2) == min(2, os.cpu_count() or 1)

    def test_default_caps_at_cpu_count(self):
        assert resolve_max_workers(None, 10_000) == (os.cpu_count() or 1)

    def test_explicit_value_wins(self):
        assert resolve_max_workers(3, 2) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            resolve_max_workers(0, 2)
