"""Append-only JSONL heartbeat/audit journal for the serve layer.

Mirrors the PR 3 supervisor journal: one line per event, flushed on
write, so an operator tailing the file can watch admission decisions,
terminal fates, crashes, and periodic heartbeats in real time — and a
post-mortem can reconstruct the fate of every accepted request.

Append-only event logs are incremental by design and cannot be
committed by rename (the PL007 rationale explicitly scopes them out);
durability-critical state lives in the ledger, not here.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO, Any

from repro.core.clock import Clock

__all__ = ["ServeJournal"]


class ServeJournal:
    """Thread-safe JSONL event sink; a ``None`` path makes it a no-op."""

    def __init__(self, path: "str | Path | None", clock: Clock) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._handle: "IO[str] | None" = None
        if path is not None:
            file_path = Path(path)
            file_path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = file_path.open("a", encoding="utf-8")

    @property
    def enabled(self) -> bool:
        return self._handle is not None

    def event(self, kind: str, **fields: Any) -> None:
        if self._handle is None:
            return
        record = {"t": self._clock.now(), "event": kind, **fields}
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
