"""Dependency-free SVG line charts for experiment results.

The ASCII charts (:mod:`repro.experiments.charts`) are for terminals;
this module renders the same named series as standalone SVG files —
axes, ticks, per-series colors/markers, and a legend — with nothing but
string formatting, so figure files can be produced in the offline build.
``poiagg run figN --svg out/`` writes one file per figure.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.experiments.results import ExperimentResult

__all__ = ["svg_line_chart", "save_figure_svg"]

_PALETTE = (
    "#4269d0",
    "#efb118",
    "#ff725c",
    "#6cc5b0",
    "#3ca951",
    "#ff8ab7",
    "#a463f2",
    "#97bbf5",
)

_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 56, 16, 28, 42


def _ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Evenly spaced tick values including both ends."""
    if hi <= lo:
        return [lo]
    return [lo + (hi - lo) * i / (n - 1) for i in range(n)]


def _fmt(value: float) -> str:
    return f"{value:.4g}"


def svg_line_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 560,
    height: int = 360,
) -> str:
    """Render named (x, y) series as an SVG document string."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    plot_w = width - _MARGIN_L - _MARGIN_R
    plot_h = height - _MARGIN_T - _MARGIN_B

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="16" text-anchor="middle" font-size="13">{title}</text>'
        )
    if not points:
        parts.append(
            f'<text x="{width / 2}" y="{height / 2}" text-anchor="middle">no data</text></svg>'
        )
        return "".join(parts)

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if y_hi == y_lo:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    pad = 0.04 * (y_hi - y_lo)
    y_lo, y_hi = y_lo - pad, y_hi + pad

    def sx(x: float) -> float:
        return _MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return _MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    # Axes, grid, and ticks.
    axis = f'stroke="#444" stroke-width="1"'
    parts.append(
        f'<line x1="{_MARGIN_L}" y1="{_MARGIN_T + plot_h}" '
        f'x2="{_MARGIN_L + plot_w}" y2="{_MARGIN_T + plot_h}" {axis}/>'
    )
    parts.append(
        f'<line x1="{_MARGIN_L}" y1="{_MARGIN_T}" x2="{_MARGIN_L}" '
        f'y2="{_MARGIN_T + plot_h}" {axis}/>'
    )
    for tick in _ticks(x_lo, x_hi):
        px = sx(tick)
        parts.append(
            f'<line x1="{px:.1f}" y1="{_MARGIN_T + plot_h}" x2="{px:.1f}" '
            f'y2="{_MARGIN_T + plot_h + 4}" {axis}/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{_MARGIN_T + plot_h + 16}" '
            f'text-anchor="middle">{_fmt(tick)}</text>'
        )
    for tick in _ticks(y_lo, y_hi):
        py = sy(tick)
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{py:.1f}" x2="{_MARGIN_L + plot_w}" '
            f'y2="{py:.1f}" stroke="#ddd" stroke-width="0.5"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 6}" y="{py + 3:.1f}" text-anchor="end">{_fmt(tick)}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{_MARGIN_L + plot_w / 2}" y="{height - 8}" '
            f'text-anchor="middle">{x_label}</text>'
        )
    if y_label:
        cy = _MARGIN_T + plot_h / 2
        parts.append(
            f'<text x="14" y="{cy}" text-anchor="middle" '
            f'transform="rotate(-90 14 {cy})">{y_label}</text>'
        )

    # Series: polyline plus circular markers; legend in the top-right.
    for i, (name, pts) in enumerate(series.items()):
        color = _PALETTE[i % len(_PALETTE)]
        ordered = sorted(pts)
        if ordered:
            path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in ordered)
            parts.append(
                f'<polyline points="{path}" fill="none" stroke="{color}" stroke-width="1.6"/>'
            )
            for x, y in ordered:
                parts.append(
                    f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.8" fill="{color}"/>'
                )
        ly = _MARGIN_T + 8 + 14 * i
        lx = _MARGIN_L + plot_w - 150
        parts.append(f'<circle cx="{lx}" cy="{ly}" r="3.5" fill="{color}"/>')
        parts.append(f'<text x="{lx + 8}" y="{ly + 3}">{name}</text>')

    parts.append("</svg>")
    return "".join(parts)


def save_figure_svg(result: ExperimentResult, directory: "str | Path") -> "Path | None":
    """Write one SVG per chartable experiment result; None when unchartable.

    Reuses the per-figure series extraction of
    :mod:`repro.experiments.figure_charts` by rendering each chart's
    series; experiments without a chart yield no file.
    """
    from repro.experiments.figure_charts import FIGURE_CHARTS, _series  # noqa: PLC0415

    if result.experiment_id not in FIGURE_CHARTS:
        return None
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    # Generic extraction: reuse the most informative (x, y, by) mapping per
    # figure family.  Axes mirror figure_charts.
    spec = {
        "fig2": ("r_km", "mean_accuracy", ("city",), "r (km)", "model accuracy"),
        "fig3": ("r_km", "success_rate", ("city", "variant"), "r (km)", "success rate"),
        "fig4": ("r_km", "correct_rate", ("dataset", "epsilon"), "r (km)", "correct rate"),
        "fig5": ("k", "correct_rate", ("dataset", "r_km"), "k", "correct rate"),
        "fig6": ("r_km", "d50_km2", ("dataset",), "r (km)", "median area (km^2)"),
        "fig7": ("n_aux", "mean_area_km2", ("dataset",), "MAX_aux", "mean area (km^2)"),
        "fig8": ("r_km", "enhanced_success", (), "r (km)", "success rate"),
        "fig9_10": ("beta", "success_rate", ("dataset", "r_km"), "beta", "success rate"),
        "fig11_12": ("epsilon", "success_rate", ("dataset", "beta"), "epsilon", "success rate"),
    }[result.experiment_id]
    x, y, by, x_label, y_label = spec
    series = _series(result, x, y, by)
    svg = svg_line_chart(
        series, title=result.title, x_label=x_label, y_label=y_label
    )
    path = directory / f"{result.experiment_id}.svg"
    path.write_text(svg)
    return path
