"""Configuration knobs for the serve subsystem.

One frozen config describes a deployment: admission-queue bounds, the
micro-batching window, per-request deadlines and retry budgets, the
shed-ladder thresholds, and the worker circuit breaker.  Validation is
eager so a bad rollout fails at construction, not mid-traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.poi.engine import ENGINE_MODES

__all__ = ["ServeConfig"]


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Per-deployment knobs for :class:`~repro.serve.service.ReleaseService`.

    Parameters
    ----------
    queue_capacity:
        Bound on the admission queue.  A full queue is *backpressure*:
        the submit is rejected with a retry-after hint instead of
        growing memory without bound.
    n_workers:
        Dispatcher worker threads draining the queue.
    batch_max / batch_wait_s:
        Micro-batching window: a worker takes up to ``batch_max``
        requests, waiting at most ``batch_wait_s`` after the first, and
        answers the whole batch with one
        :meth:`~repro.poi.database.POIDatabase.freq_batch` call.
    poll_interval_s:
        Idle worker wake-up period (every blocking dequeue carries this
        timeout — rule PL008).
    deadline_s:
        Per-request deadline from admission; a request that cannot start
        before its deadline is shed rather than served stale.
    max_attempts:
        Total processing attempts per request across worker crashes.
    retry_after_s:
        The hint returned with backpressure rejections.
    degrade_queue_ratio / refuse_queue_ratio:
        Queue-depth fractions at which the shed ladder moves to the
        degraded (cheaper sanitization) and refuse rungs.
    degrade_latency_s / refuse_latency_s:
        Worker-latency EWMA thresholds for the same two rungs.
    ewma_alpha:
        Smoothing factor of the latency EWMA.
    breaker_failure_threshold / breaker_reset_timeout_s /
    breaker_half_open_probes:
        The worker circuit breaker (an open breaker pins the ladder to
        the refuse rung until probes succeed).
    heartbeat_interval_s:
        JSONL journal heartbeat period.
    attack_audit:
        When true, completed releases are audited in bulk with
        :meth:`~repro.attacks.region.RegionAttack.run_batch` and each
        result carries whether the region attack re-identifies it.
    engine:
        Freq engine mode the service pins on its database
        (:class:`~repro.poi.engine.FreqEngine`): ``"auto"`` (default,
        radius-tiered), ``"banded"`` or ``"pyramid"``.
    ledger_compact_every / wal_segment_max_bytes:
        Budget-ledger WAL compaction cadence and segment-rotation size
        (:class:`~repro.serve.ledger.BudgetLedger`); together they bound
        ledger disk usage under sustained load.
    journal_max_bytes:
        Rotate the JSONL heartbeat/audit journal at this size (``None``
        leaves it unbounded — short-lived runs and tests).
    disk_retry_after_s:
        Retry-After horizon advertised when the ledger's disk refuses a
        WAL append (the 503 DiskPressure path).
    """

    queue_capacity: int = 256
    n_workers: int = 1
    batch_max: int = 64
    batch_wait_s: float = 0.02
    poll_interval_s: float = 0.05
    deadline_s: float = 10.0
    max_attempts: int = 3
    retry_after_s: float = 0.5
    degrade_queue_ratio: float = 0.6
    refuse_queue_ratio: float = 0.9
    degrade_latency_s: float = 1.0
    refuse_latency_s: float = 5.0
    ewma_alpha: float = 0.2
    breaker_failure_threshold: int = 3
    breaker_reset_timeout_s: float = 1.0
    breaker_half_open_probes: int = 1
    heartbeat_interval_s: float = 5.0
    attack_audit: bool = False
    engine: str = "auto"
    ledger_compact_every: int = 1024
    wal_segment_max_bytes: int = 1 << 20
    journal_max_bytes: "int | None" = None
    disk_retry_after_s: float = 2.0

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_MODES:
            raise ConfigError(
                f"engine must be one of {ENGINE_MODES}, got {self.engine!r}"
            )
        if self.queue_capacity < 1:
            raise ConfigError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.batch_max < 1:
            raise ConfigError(f"batch_max must be >= 1, got {self.batch_max}")
        if self.batch_wait_s < 0:
            raise ConfigError(f"batch_wait_s must be >= 0, got {self.batch_wait_s}")
        if self.poll_interval_s <= 0:
            raise ConfigError(f"poll_interval_s must be > 0, got {self.poll_interval_s}")
        if self.deadline_s <= 0:
            raise ConfigError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.retry_after_s <= 0:
            raise ConfigError(f"retry_after_s must be > 0, got {self.retry_after_s}")
        # Ratios above 1 are legal: the queue can never reach them, which
        # disables that rung (useful to isolate one signal in tests).
        if not 0.0 < self.degrade_queue_ratio <= self.refuse_queue_ratio:
            raise ConfigError(
                "need 0 < degrade_queue_ratio <= refuse_queue_ratio, got "
                f"{self.degrade_queue_ratio}/{self.refuse_queue_ratio}"
            )
        if not 0.0 < self.degrade_latency_s <= self.refuse_latency_s:
            raise ConfigError(
                "need 0 < degrade_latency_s <= refuse_latency_s, got "
                f"{self.degrade_latency_s}/{self.refuse_latency_s}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.breaker_failure_threshold < 1:
            raise ConfigError(
                f"breaker_failure_threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_reset_timeout_s <= 0:
            raise ConfigError(
                f"breaker_reset_timeout_s must be > 0, got "
                f"{self.breaker_reset_timeout_s}"
            )
        if self.breaker_half_open_probes < 1:
            raise ConfigError(
                f"breaker_half_open_probes must be >= 1, got "
                f"{self.breaker_half_open_probes}"
            )
        if self.heartbeat_interval_s <= 0:
            raise ConfigError(
                f"heartbeat_interval_s must be > 0, got {self.heartbeat_interval_s}"
            )
        if self.ledger_compact_every < 1:
            raise ConfigError(
                f"ledger_compact_every must be >= 1, got {self.ledger_compact_every}"
            )
        if self.wal_segment_max_bytes < 1:
            raise ConfigError(
                f"wal_segment_max_bytes must be >= 1, got {self.wal_segment_max_bytes}"
            )
        if self.journal_max_bytes is not None and self.journal_max_bytes < 1:
            raise ConfigError(
                f"journal_max_bytes must be >= 1 or None, got {self.journal_max_bytes}"
            )
        if self.disk_retry_after_s <= 0:
            raise ConfigError(
                f"disk_retry_after_s must be > 0, got {self.disk_retry_after_s}"
            )
