#!/usr/bin/env python
"""Scenario: link two successive aggregate releases to de-anonymise a ride.

A navigation app sends a fresh POI aggregate every few minutes while a
taxi moves.  This script reproduces the paper's trajectory-uniqueness
attack (Sec. IV-B): it trains a distance regressor on historical traces,
then shows on held-out rides how the second release disambiguates cases
the single-release attack could not crack.

Run with::

    python examples/trajectory_linkage.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import DistanceRegressor, PairRelease, TrajectoryAttack
from repro.core.rng import derive_rng
from repro.datasets import TaxiFleetConfig, extract_release_pairs, synthesize_taxi_trajectories
from repro.poi import beijing

RADIUS_M = 1_000.0
MAX_GAP_S = 600.0


def main() -> None:
    city = beijing()
    db = city.database
    interior = city.interior(RADIUS_M)

    print("Synthesising one week of taxi traces...")
    trajectories = synthesize_taxi_trajectories(
        db, TaxiFleetConfig(n_taxis=150), derive_rng(3, "fleet")
    )
    pairs = extract_release_pairs(trajectories, max_gap_s=MAX_GAP_S)

    inside = [
        pair
        for pair in pairs
        if interior.contains(pair.first.location)
        and interior.contains(pair.second.location)
    ]
    firsts = db.freq_batch([p.first.location for p in inside], RADIUS_M)
    seconds = db.freq_batch([p.second.location for p in inside], RADIUS_M)
    usable = [
        (pair, PairRelease(f1, f2, pair.first.timestamp, pair.second.timestamp))
        for pair, f1, f2 in zip(inside, firsts, seconds)
        if not np.array_equal(f1, f2)
    ]
    split = len(usable) // 2
    train, test = usable[:split], usable[split:]
    print(f"{len(pairs)} release pairs, {len(usable)} usable, {len(train)} for training\n")

    print("Training the displacement regressor (duration + L1 + time-of-day)...")
    regressor = DistanceRegressor().fit(
        [rel for _, rel in train],
        np.array([pair.distance for pair, _ in train]),
        band_quantile=0.75,
    )
    print(f"learned acceptance band: +/- {regressor.tolerance_m:.0f} m (plus the 2r slack)\n")

    attack = TrajectoryAttack(db, regressor)
    n_single = n_enhanced = 0
    rescued = []
    for pair, release in test[:400]:
        outcome = attack.run(release, RADIUS_M)
        n_single += outcome.single.success
        n_enhanced += outcome.enhanced.success
        if outcome.gain:
            rescued.append((pair, outcome))
    n = min(len(test), 400)
    print(f"single-release success:   {n_single / n:.1%}")
    print(f"two-release success:      {n_enhanced / n:.1%}")
    print(f"rides cracked only via linkage: {len(rescued)}")

    if rescued:
        pair, outcome = rescued[0]
        region = outcome.enhanced.region
        assert region is not None
        miss = region.center.distance_to(pair.first.location)
        print(
            f"\nExample rescued ride: {len(outcome.single.candidates)} candidates "
            f"collapsed to 1; predicted displacement {outcome.predicted_distance_m:.0f} m "
            f"(actual {pair.distance:.0f} m); anchor lands {miss:.0f} m from the rider."
        )


if __name__ == "__main__":
    main()
