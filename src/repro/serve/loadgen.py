"""Seeded load generator and latency/throughput reporting.

Drives a :class:`~repro.serve.service.ReleaseService` either in-process
(the bench path — no socket noise in the percentiles) or over HTTP (the
CI smoke path — exercises the real edge), and reduces the run to a
:class:`LoadgenReport`: admission outcomes, terminal fates, completed
latency percentiles (p50/p95/p99), and throughput.

Profiles are seeded and deterministic: the same ``(profile, seed)``
always generates the same request stream.  The ``flood`` profile
deliberately outruns any reasonable queue so backpressure and the shed
ladder are exercised, not just the happy path.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.clock import Clock, SystemClock
from repro.core.errors import ConfigError
from repro.core.rng import derive_rng
from repro.serve.jobs import ReleaseRequest
from repro.serve.service import ReleaseService

__all__ = [
    "LOAD_PROFILES",
    "LoadProfile",
    "LoadgenReport",
    "generate_requests",
    "latency_percentiles",
    "run_loadgen",
    "run_loadgen_http",
]


@dataclass(frozen=True, slots=True)
class LoadProfile:
    """One reproducible workload shape.

    ``defense_mix`` weights the defense kinds requested; ``bounds`` is
    the square the query centers are drawn from (matching the target
    database's extent).  ``users_per_request`` < 1 concentrates many
    requests on few users, which is how the budget-refusal path gets
    exercised under load.
    """

    name: str
    n_users: int
    n_requests: int
    radius: float = 150.0
    defense_mix: tuple[tuple[str, float], ...] = (
        ("laplace", 0.6),
        ("sanitize", 0.3),
        ("raw", 0.1),
    )
    bounds: tuple[float, float, float, float] = (0.0, 0.0, 1000.0, 1000.0)
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.n_users <= 0 or self.n_requests <= 0:
            raise ConfigError("n_users and n_requests must be positive")
        if not self.defense_mix:
            raise ConfigError("defense_mix must be non-empty")
        if any(weight < 0 for _, weight in self.defense_mix):
            raise ConfigError("defense_mix weights must be non-negative")
        if sum(weight for _, weight in self.defense_mix) <= 0:
            raise ConfigError("defense_mix weights must sum to a positive value")


#: The stock profiles; ``flood`` pairs with a small queue to force shedding.
LOAD_PROFILES: dict[str, LoadProfile] = {
    "smoke": LoadProfile(name="smoke", n_users=20, n_requests=100),
    "small": LoadProfile(name="small", n_users=200, n_requests=1_000),
    "bench": LoadProfile(name="bench", n_users=10_000, n_requests=20_000),
    "flood": LoadProfile(
        name="flood",
        n_users=50,
        n_requests=2_000,
        defense_mix=(("laplace", 0.8), ("sanitize", 0.2)),
    ),
}


def generate_requests(profile: LoadProfile, seed: int) -> list[ReleaseRequest]:
    """The deterministic request stream for ``(profile, seed)``."""
    rng = derive_rng(seed, "loadgen", profile.name)
    kinds = [kind for kind, _ in profile.defense_mix]
    weights = np.array([weight for _, weight in profile.defense_mix], dtype=float)
    weights /= weights.sum()
    x0, y0, x1, y1 = profile.bounds
    users = rng.integers(0, profile.n_users, size=profile.n_requests)
    xs = rng.uniform(x0, x1, size=profile.n_requests)
    ys = rng.uniform(y0, y1, size=profile.n_requests)
    picks = rng.choice(len(kinds), size=profile.n_requests, p=weights)
    return [
        ReleaseRequest(
            user_id=f"u{int(user):06d}",
            x=float(x),
            y=float(y),
            radius=profile.radius,
            defense=kinds[int(pick)],
        )
        for user, x, y, pick in zip(users, xs, ys, picks)
    ]


def latency_percentiles(latencies: "list[float] | np.ndarray") -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` in seconds (NaN if empty)."""
    if len(latencies) == 0:
        return {"p50": float("nan"), "p95": float("nan"), "p99": float("nan")}
    arr = np.asarray(latencies, dtype=float)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}


@dataclass
class LoadgenReport:
    """One loadgen run, reduced to the numbers the bench records."""

    profile: str
    seed: int
    n_submitted: int
    outcomes: dict[str, int]
    fates: dict[str, int]
    latency_s: dict[str, float]
    throughput_rps: float
    wall_s: float
    drained: bool
    n_batches: int = 0
    faults: "dict[str, int] | None" = None

    @property
    def fates_accounted(self) -> bool:
        """The chaos invariant: every accepted request has one fate."""
        terminal = (
            self.fates["completed"]
            + self.fates["refused"]
            + self.fates["shed"]
            + self.fates["failed"]
        )
        return terminal == self.fates["accepted"]

    def as_dict(self) -> dict[str, Any]:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "n_submitted": self.n_submitted,
            "outcomes": self.outcomes,
            "fates": self.fates,
            "fates_accounted": self.fates_accounted,
            "latency_s": self.latency_s,
            "throughput_rps": self.throughput_rps,
            "wall_s": self.wall_s,
            "drained": self.drained,
            "n_batches": self.n_batches,
            "faults": self.faults,
        }


def run_loadgen(
    service: ReleaseService,
    profile: LoadProfile,
    *,
    seed: int = 0,
    clock: "Clock | None" = None,
) -> LoadgenReport:
    """Drive *service* in-process with *profile* and reduce the run."""
    clock = clock if clock is not None else SystemClock()
    requests = generate_requests(profile, seed)
    outcomes = {"queued": 0, "rejected": 0, "refused": 0, "shed": 0, "unavailable": 0}
    t0 = clock.now()
    for request in requests:
        outcome = service.submit(request)
        outcomes[outcome.status] += 1
    drained = service.drain(profile.drain_timeout_s)
    wall_s = max(clock.now() - t0, 1e-9)
    latencies = service.store.completed_latencies()
    status = service.status()
    fates = status["fates"]
    return LoadgenReport(
        profile=profile.name,
        seed=seed,
        n_submitted=len(requests),
        outcomes=outcomes,
        fates=fates,
        latency_s=latency_percentiles(latencies),
        throughput_rps=fates["completed"] / wall_s,
        wall_s=wall_s,
        drained=drained,
        n_batches=status["n_batches"],
        faults=status["faults"],
    )


# ----------------------------------------------------------------------
# HTTP mode (the CI smoke path)
# ----------------------------------------------------------------------


def _http_json(
    url: str,
    body: "dict[str, Any] | None" = None,
    timeout_s: float = 10.0,
) -> tuple[int, dict[str, Any]]:
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if body is not None else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        payload = json.loads(exc.read().decode("utf-8"))
        return exc.code, payload


def run_loadgen_http(
    base_url: str,
    profile: LoadProfile,
    *,
    seed: int = 0,
    clock: "Clock | None" = None,
    request_timeout_s: float = 10.0,
) -> LoadgenReport:
    """Drive a running server over HTTP with *profile*.

    Latencies come from the server's own per-job bookkeeping (fetched via
    ``GET /v1/jobs/<id>`` after the drain), so the in-process and HTTP
    reports measure the same quantity.
    """
    clock = clock if clock is not None else SystemClock()
    base = base_url.rstrip("/")
    requests = generate_requests(profile, seed)
    outcomes = {"queued": 0, "rejected": 0, "refused": 0, "shed": 0, "unavailable": 0}
    job_ids: list[str] = []
    t0 = clock.now()
    for request in requests:
        status, payload = _http_json(
            f"{base}/v1/submit",
            {
                "user_id": request.user_id,
                "x": request.x,
                "y": request.y,
                "radius": request.radius,
                "defense": request.defense,
            },
            timeout_s=request_timeout_s,
        )
        if status == 202:
            outcomes["queued"] += 1
            job_ids.append(payload["job_id"])
        elif status == 429:
            outcomes["refused"] += 1
        elif status == 503 and payload.get("error") == "LoadShed":
            outcomes["shed"] += 1
        elif status == 503 and payload.get("error") == "DiskPressure":
            outcomes["unavailable"] += 1
        elif status == 503:
            outcomes["rejected"] += 1
        else:
            raise ConfigError(f"unexpected submit response {status}: {payload}")
    # Poll until every accepted job is terminal (bounded by the profile).
    drained = False
    deadline = clock.now() + profile.drain_timeout_s
    status_doc: dict[str, Any] = {}
    while clock.now() < deadline:
        _, status_doc = _http_json(f"{base}/v1/status", timeout_s=request_timeout_s)
        if status_doc["fates"]["pending"] == 0:
            drained = True
            break
        clock.sleep(0.05)
    wall_s = max(clock.now() - t0, 1e-9)
    latencies: list[float] = []
    for job_id in job_ids:
        _, job_doc = _http_json(f"{base}/v1/jobs/{job_id}", timeout_s=request_timeout_s)
        if job_doc.get("fate") == "completed" and job_doc.get("latency_s") is not None:
            latencies.append(float(job_doc["latency_s"]))
    fates = status_doc.get("fates", {})
    return LoadgenReport(
        profile=profile.name,
        seed=seed,
        n_submitted=len(requests),
        outcomes=outcomes,
        fates=fates,
        latency_s=latency_percentiles(latencies),
        throughput_rps=fates.get("completed", 0) / wall_s,
        wall_s=wall_s,
        drained=drained,
        n_batches=status_doc.get("n_batches", 0),
        faults=status_doc.get("faults"),
    )
