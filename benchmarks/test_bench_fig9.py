"""Bench: Fig. 9 — non-private optimization defense, success rate vs beta.

Paper shape: a larger distortion budget beta lowers the attack success
rate markedly.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig9_10_nonprivate import run_fig9_10


def test_bench_fig9(benchmark, bench_scale):
    result = run_once(benchmark, lambda: run_fig9_10(bench_scale))
    print()
    print(result.render())

    for dataset in ("bj_tdrive", "nyc_foursquare"):
        for r_km in (0.5, 2.0):
            rows = result.filter(dataset=dataset, r_km=r_km)
            by_beta = {row["beta"]: row["success_rate"] for row in rows}
            # Success at the largest budget is well below the smallest.
            assert by_beta[0.05] <= by_beta[0.01] + 1e-9
        # Averaged over radii, the trend is strictly helpful.
        small = np.mean([r["success_rate"] for r in result.filter(dataset=dataset, beta=0.01)])
        large = np.mean([r["success_rate"] for r in result.filter(dataset=dataset, beta=0.05)])
        assert large < small
