"""``POIDatabase.freq_bounds`` must sandwich the exact ``Freq`` oracle.

The attacks prune candidate anchors with the bound sandwich: an upper
bound that fails to dominate a released vector rules the candidate out,
a lower bound that already dominates it rules the candidate in, and only
the band in between pays for exact anchor rows.  Soundness therefore
rests entirely on ``lower <= exact <= upper`` holding elementwise for
every POI and radius; these tests pin that invariant plus the cache and
validation behaviour.
"""

import numpy as np
import pytest

from repro.core.errors import DatasetError

RADII = (250.0, 500.0, 1_000.0, 2_000.0, 4_000.0)


class TestBoundSoundness:
    @pytest.mark.parametrize("radius", RADII)
    def test_sandwich_holds_for_every_poi(self, db, radius):
        exact = db.anchor_freqs(radius)
        upper = db.freq_bounds(radius)
        lower = db.freq_bounds(radius, side="lower")
        assert upper.shape == exact.shape == lower.shape
        assert (upper >= exact).all()
        assert (lower <= exact).all()

    @pytest.mark.parametrize("radius", (300.0, 1_500.0))
    def test_row_blocks_match_full_matrix(self, db, radius):
        rng = np.random.default_rng(int(radius))
        idx = rng.choice(len(db), size=40, replace=False)
        for side in ("upper", "lower"):
            full = db.freq_bounds(radius, side=side)
            block = db.freq_bounds(radius, idx, side=side)
            np.testing.assert_array_equal(block, full[idx])

    def test_bounds_are_trivial_only_when_disk_is(self, db):
        # At a radius far beyond the city, every bound equals the global
        # type histogram (the whole map is inside every disk).
        radius = 1e7
        upper = db.freq_bounds(radius)
        lower = db.freq_bounds(radius, side="lower")
        totals = np.bincount(db.type_ids, minlength=db.n_types)
        np.testing.assert_array_equal(upper, np.broadcast_to(totals, upper.shape))
        np.testing.assert_array_equal(lower, np.broadcast_to(totals, lower.shape))

    def test_lower_bound_can_be_empty_at_tiny_radius(self, db):
        # A disk smaller than a cell contains no whole cell: the inscribed
        # cell box is empty and the lower bound collapses to zero, which is
        # still sound.
        lower = db.freq_bounds(1.0, side="lower")
        assert (lower == 0).all()
        exact = db.anchor_freqs(1.0)
        assert (lower <= exact).all()


class TestBoundCache:
    def test_full_matrix_is_cached_and_read_only(self, db):
        first = db.freq_bounds(750.0)
        again = db.freq_bounds(750.0)
        assert np.shares_memory(first, again)
        assert not first.flags.writeable

    def test_clear_cache_drops_bound_matrices(self, db):
        first = db.freq_bounds(750.0)
        db.clear_cache()
        again = db.freq_bounds(750.0)
        assert not np.shares_memory(first, again)
        np.testing.assert_array_equal(first, again)

    def test_rejects_unknown_side(self, db):
        with pytest.raises(DatasetError):
            db.freq_bounds(500.0, side="middle")
