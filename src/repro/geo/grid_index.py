"""A uniform-grid spatial index for fixed point sets.

The geo-information provider's two interfaces — ``Query(l, r)`` (POIs within
range) and ``Freq(l, r)`` (their type histogram) — are the innermost
operations of every attack and defense in the paper, so range queries must
be cheap.  POI sets are static, so a uniform grid over the city's bounding
box is both simpler and faster than a rebalancing tree: a radius-``r`` query
touches only ``O((r / cell)^2)`` cells and does one vectorized distance
filter over their members.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import GeometryError
from repro.geo.bbox import BBox
from repro.geo.point import Point

__all__ = ["GridIndex"]


class GridIndex:
    """Uniform grid over a fixed set of planar points.

    Parameters
    ----------
    xy:
        Array of shape ``(n, 2)`` with point coordinates in meters.
    cell_size:
        Grid cell edge length in meters.  A good default is on the order of
        the smallest query radius; see the ablation bench for the tradeoff.
    bounds:
        Optional explicit bounding box.  Defaults to the tight bounds of the
        points (expanded by one cell so boundary points never fall outside).
    """

    def __init__(self, xy: np.ndarray, cell_size: float, bounds: BBox | None = None):
        xy = np.asarray(xy, dtype=float)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise GeometryError(f"expected (n, 2) coordinates, got shape {xy.shape}")
        if cell_size <= 0:
            raise GeometryError(f"cell_size must be positive, got {cell_size}")
        self._xy = xy
        self._cell = float(cell_size)
        if bounds is None:
            if len(xy) == 0:
                bounds = BBox(0.0, 0.0, cell_size, cell_size)
            else:
                bounds = BBox(
                    float(xy[:, 0].min()),
                    float(xy[:, 1].min()),
                    float(xy[:, 0].max()),
                    float(xy[:, 1].max()),
                ).expanded(cell_size)
        self._bounds = bounds
        self._nx = max(1, int(np.ceil(bounds.width / cell_size)))
        self._ny = max(1, int(np.ceil(bounds.height / cell_size)))

        # Bucket points by cell using a counting-sort layout: ``_order`` holds
        # point indices grouped by cell, ``_start`` delimits each cell's slice.
        n_cells = self._nx * self._ny
        if len(xy):
            cx, cy = self._cell_of_many(xy[:, 0], xy[:, 1])
            flat = cx * self._ny + cy
            order = np.argsort(flat, kind="stable")
            counts = np.bincount(flat, minlength=n_cells)
        else:
            order = np.empty(0, dtype=np.intp)
            counts = np.zeros(n_cells, dtype=np.intp)
        self._order = order
        self._start = np.concatenate([[0], np.cumsum(counts)])

    @property
    def n_points(self) -> int:
        return len(self._xy)

    @property
    def bounds(self) -> BBox:
        return self._bounds

    @property
    def cell_size(self) -> float:
        return self._cell

    def _cell_of_many(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        cx = np.clip(((xs - self._bounds.min_x) / self._cell).astype(np.intp), 0, self._nx - 1)
        cy = np.clip(((ys - self._bounds.min_y) / self._cell).astype(np.intp), 0, self._ny - 1)
        return cx, cy

    def _candidates_in_box(self, min_x: float, min_y: float, max_x: float, max_y: float) -> np.ndarray:
        """Indices of all points in cells overlapping the given box."""
        cx0 = max(0, int((min_x - self._bounds.min_x) / self._cell))
        cx1 = min(self._nx - 1, int((max_x - self._bounds.min_x) / self._cell))
        cy0 = max(0, int((min_y - self._bounds.min_y) / self._cell))
        cy1 = min(self._ny - 1, int((max_y - self._bounds.min_y) / self._cell))
        if cx1 < cx0 or cy1 < cy0:
            return np.empty(0, dtype=np.intp)
        chunks = []
        for cx in range(cx0, cx1 + 1):
            # Cells (cx, cy0..cy1) are contiguous in the flat layout.
            flat0 = cx * self._ny + cy0
            flat1 = cx * self._ny + cy1
            lo = self._start[flat0]
            hi = self._start[flat1 + 1]
            if hi > lo:
                chunks.append(self._order[lo:hi])
        if not chunks:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(chunks)

    def query_radius(self, center: Point, radius: float) -> np.ndarray:
        """Indices of points within *radius* meters of *center* (inclusive)."""
        if radius < 0:
            raise GeometryError(f"radius must be non-negative, got {radius}")
        cand = self._candidates_in_box(
            center.x - radius, center.y - radius, center.x + radius, center.y + radius
        )
        if len(cand) == 0:
            return cand
        # hypot rather than squared distances: immune to under/overflow.
        dist = np.hypot(self._xy[cand, 0] - center.x, self._xy[cand, 1] - center.y)
        return cand[dist <= radius]

    def query_box(self, box: BBox) -> np.ndarray:
        """Indices of points inside *box* (inclusive boundaries)."""
        cand = self._candidates_in_box(box.min_x, box.min_y, box.max_x, box.max_y)
        if len(cand) == 0:
            return cand
        keep = box.contains_many(self._xy[cand, 0], self._xy[cand, 1])
        return cand[keep]

    def count_radius(self, center: Point, radius: float) -> int:
        """Number of points within *radius* of *center*."""
        return int(len(self.query_radius(center, radius)))
