"""Tests for metrics and train/test splitting."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    mean_absolute_error,
    r2_score,
    root_mean_squared_error,
)
from repro.ml.model_selection import train_test_split


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_perfect_accuracy(self):
        y = np.array([1, 1, 0])
        assert accuracy_score(y, y) == 1.0

    def test_mae(self):
        assert mean_absolute_error(np.array([1.0, 2.0]), np.array([2.0, 0.0])) == 1.5

    def test_rmse(self):
        assert root_mean_squared_error(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_r2_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_r2_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        y = np.full(4, 5.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([1]), np.array([1, 2]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.array([]), np.array([]))


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(50, 2)
        y = np.arange(50)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_fraction=0.2, rng=0)
        assert len(X_te) == 10 and len(X_tr) == 40
        assert len(y_te) == 10 and len(y_tr) == 40

    def test_partition_no_overlap(self):
        X = np.arange(30).reshape(30, 1)
        y = np.arange(30)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, rng=1)
        assert set(y_tr.tolist()) | set(y_te.tolist()) == set(range(30))
        assert set(y_tr.tolist()) & set(y_te.tolist()) == set()

    def test_rows_stay_aligned(self):
        X = np.arange(40).reshape(20, 2)
        y = np.arange(20)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, rng=2)
        for row, label in zip(X_tr, y_tr):
            assert row[0] == 2 * label

    def test_deterministic_given_rng(self):
        X = np.arange(20).reshape(10, 2)
        y = np.arange(10)
        a = train_test_split(X, y, rng=7)
        b = train_test_split(X, y, rng=7)
        np.testing.assert_array_equal(a[1], b[1])

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=1.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(5))
