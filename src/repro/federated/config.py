"""Configuration for the federated aggregation backend.

One :class:`FederatedConfig` pins everything a campaign needs to be a
pure function of ``(config, seed)``: the client population size, the
distributed-DP parameters, the robustness knobs (quorum, deadlines,
retries), and the memory budget every accumulator allocation is checked
against.  The config also owns the derived quantities the round
supervisor and merger agree on — the completion quorum, the per-share
noise scale, and the accumulator cell cap the memory budget affords —
so no two modules can compute them differently.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass

from repro.core.errors import ConfigError
from repro.dp.mechanisms import PrivacyParams, distributed_gaussian_sigma

__all__ = ["FederatedConfig"]

#: float64 accumulator entries.
_BYTES_PER_ENTRY = 8

#: Fraction of the memory budget the cell accumulator may claim; the
#: rest covers the chunk fold buffers and transient per-chunk arrays.
_ACCUMULATOR_SHARE = 0.5


@dataclass(frozen=True)
class FederatedConfig:
    """Knobs for one federated aggregation campaign.

    Parameters
    ----------
    n_clients:
        Clients enrolled per round.
    n_rounds:
        Rounds the campaign runs; each committed round spends
        ``(epsilon, delta)`` from the campaign accountant.
    epsilon / delta:
        Per-round distributed-DP parameters.  The per-client noise share
        is calibrated so the *quorum-many* share sum already matches the
        centralized Gaussian mechanism at these parameters (dropouts
        above the quorum only add noise).
    clip_bound:
        L1 bound every admitted contribution payload is clipped to; one
        poisoned client cannot move the released aggregate by more.
    quorum:
        Fraction of enrolled clients that must contribute (accepted or
        clipped) for the round to commit; below it the round aborts
        without spending budget.
    deadline_s:
        Per-client response deadline on the simulated round clock;
        contributions arriving later are refused (``refused_late``).
    retries:
        Extra attempts a crashed/hung client gets before it is written
        off as ``dropped_out``.
    memory_budget_mb:
        Hard cap on aggregate-side working memory: the cell accumulator
        plus the streaming fold buffers must fit inside it, asserted at
        allocation time and re-measured by the bench.
    chunk_clients:
        How many contributions one streaming fold pass holds in memory.
    grid_nx / grid_ny:
        The level-0 spatial grid the first round aggregates on.
    max_split_depth:
        How many times a dense cell may be quartered across rounds.
    split_fraction:
        A cell splits for the next round when it holds at least this
        fraction of the round's total released mass.
    radius_m:
        The Freq query radius clients compute their local vectors at.
    """

    n_clients: int = 1_000
    n_rounds: int = 3
    epsilon: float = 1.0
    delta: float = 0.2
    clip_bound: float = 64.0
    quorum: float = 0.8
    deadline_s: float = 1.0
    retries: int = 1
    memory_budget_mb: float = 256.0
    chunk_clients: int = 2_048
    grid_nx: int = 8
    grid_ny: int = 8
    max_split_depth: int = 3
    split_fraction: float = 0.05
    radius_m: float = 1_000.0

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ConfigError(f"n_clients must be positive, got {self.n_clients}")
        if self.n_rounds < 1:
            raise ConfigError(f"n_rounds must be positive, got {self.n_rounds}")
        PrivacyParams(self.epsilon, self.delta)  # validates the pair
        if not 0.0 < self.delta < 1.0:
            raise ConfigError(
                f"the distributed Gaussian mechanism needs delta in (0, 1), got {self.delta}"
            )
        if self.clip_bound <= 0:
            raise ConfigError(f"clip_bound must be positive, got {self.clip_bound}")
        if not 0.0 < self.quorum <= 1.0:
            raise ConfigError(f"quorum must be in (0, 1], got {self.quorum}")
        if self.deadline_s <= 0:
            raise ConfigError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.retries < 0:
            raise ConfigError(f"retries must be non-negative, got {self.retries}")
        if self.memory_budget_mb <= 0:
            raise ConfigError(
                f"memory_budget_mb must be positive, got {self.memory_budget_mb}"
            )
        if self.chunk_clients < 1:
            raise ConfigError(f"chunk_clients must be positive, got {self.chunk_clients}")
        if self.grid_nx < 1 or self.grid_ny < 1:
            raise ConfigError("grid_nx and grid_ny must be positive")
        if self.max_split_depth < 0:
            raise ConfigError(
                f"max_split_depth must be non-negative, got {self.max_split_depth}"
            )
        if not 0.0 < self.split_fraction <= 1.0:
            raise ConfigError(
                f"split_fraction must be in (0, 1], got {self.split_fraction}"
            )
        if self.radius_m <= 0:
            raise ConfigError(f"radius_m must be positive, got {self.radius_m}")

    @property
    def quorum_count(self) -> int:
        """Contributions needed for a round to commit (at least 1)."""
        return max(1, math.ceil(self.quorum * self.n_clients - 1e-9))

    @property
    def memory_budget_bytes(self) -> int:
        return int(self.memory_budget_mb * 1024 * 1024)

    @property
    def accumulator_budget_bytes(self) -> int:
        """The slice of the budget the cell accumulator may occupy."""
        return int(self.memory_budget_bytes * _ACCUMULATOR_SHARE)

    def max_cells(self, n_types: int) -> int:
        """How many active cells the accumulator budget affords."""
        if n_types < 1:
            raise ConfigError(f"n_types must be positive, got {n_types}")
        return max(
            self.grid_nx * self.grid_ny,
            self.accumulator_budget_bytes // (n_types * _BYTES_PER_ENTRY),
        )

    def share_sigma(self) -> float:
        """Per-client Gaussian noise scale (quorum-calibrated).

        L1-clipping at ``clip_bound`` bounds the L2 norm by the same
        constant, so ``clip_bound`` is a sound sensitivity for the
        Gaussian calibration.
        """
        return distributed_gaussian_sigma(
            self.clip_bound, self.epsilon, self.delta, self.quorum_count
        )

    def fingerprint(self) -> str:
        """A stable key for checkpoint matching: config identity as JSON."""
        return json.dumps(asdict(self), sort_keys=True)
