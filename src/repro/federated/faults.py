"""Seeded client-level fault injection for the federated chaos suite.

Same design as the PR 1 LBS faults, PR 3 worker faults, and PR 6 serve
faults: a :class:`ClientFaultPlan` declares rates, every decision is one
seeded uniform derived per ``(seed, round, client, attempt)`` — never a
sequentially-consumed stream — and the whole fault timeline is a pure
function of the plan.  Fault classes and the fate each one drives a
client toward:

* ``crash`` — the client dies before responding; the supervisor retries
  it on a later attempt, and a client that crashes through its whole
  attempt budget is ``dropped_out``.
* ``hang`` — the client never responds within any deadline (a stalled
  device); same retry/dropout path as a crash, but the supervisor only
  learns at the deadline.
* ``malformed`` — the contribution arrives structurally damaged (wrong
  width, NaN payload, broken cell index); admission rejects it
  (``rejected_malformed``).
* ``poisoned`` — the payload is inflated by ``poison_factor``; admission
  L1-clips it, so the fate is ``clipped`` and the aggregate moves by at
  most the clip bound.
* ``duplicate`` — the client submits twice; the second submission is
  refused without touching the client's (single) fate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.core.rng import derive_rng

__all__ = ["CLIENT_FAULTS", "ClientFaultPlan"]

#: Injectable fault kinds (and ``ok`` for overrides).
CLIENT_FAULTS = ("crash", "hang", "malformed", "poisoned", "duplicate", "ok")

_RATE_FIELDS = (
    "crash_rate",
    "hang_rate",
    "malformed_rate",
    "poisoned_rate",
    "duplicate_rate",
)


@dataclass(frozen=True)
class ClientFaultPlan:
    """Declarative, deterministic client faults for one campaign.

    The five rates are mutually exclusive per draw (one uniform decides),
    so their sum must be at most 1.  ``overrides`` pins ``(round, client)``
    pairs to a fate; unlisted pairs roll the rates.  Attempts beyond
    ``max_faults_per_client`` are always healthy, which is how tests
    prove a crashed client deterministically succeeds on retry.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    malformed_rate: float = 0.0
    poisoned_rate: float = 0.0
    duplicate_rate: float = 0.0
    seed: int = 0
    max_faults_per_client: int = 1
    poison_factor: float = 1e6
    overrides: tuple = ()

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if sum(getattr(self, name) for name in _RATE_FIELDS) > 1.0 + 1e-12:
            raise ConfigError("client fault rates exceed 1")
        if self.max_faults_per_client < 0:
            raise ConfigError("max_faults_per_client must be non-negative")
        if self.poison_factor <= 1.0:
            raise ConfigError(
                f"poison_factor must exceed 1 (an inflation), got {self.poison_factor}"
            )
        for entry in self.overrides:
            if len(entry) != 3 or entry[2] not in CLIENT_FAULTS:
                raise ConfigError(
                    "overrides entries must be (round, client, fate) with "
                    f"fate in {CLIENT_FAULTS}"
                )

    @property
    def any_faults(self) -> bool:
        return any(getattr(self, name) > 0 for name in _RATE_FIELDS) or bool(
            self.overrides
        )

    def decide(self, round_id: int, client_id: int, attempt: int) -> "str | None":
        """Fate of this ``(round, client, attempt)``: None (healthy) or a fault."""
        if attempt > self.max_faults_per_client:
            return None
        for rnd, client, fate in self.overrides:
            if rnd == round_id and client == client_id:
                return None if fate == "ok" else fate
        u = float(
            derive_rng(self.seed, "client-fault", round_id, client_id, attempt).random()
        )
        edge = 0.0
        for name in _RATE_FIELDS:
            edge += getattr(self, name)
            if u < edge:
                return name.removesuffix("_rate")
        return None
