"""Tests for disk-intersection feasible regions."""

import math

import pytest

from repro.core.errors import GeometryError
from repro.geo.disk import Disk, lens_area
from repro.geo.point import Point
from repro.geo.region import DiskIntersection


class TestDiskIntersection:
    def test_no_constraints_is_base_area(self):
        region = DiskIntersection(Disk(Point(0, 0), 10.0))
        assert region.area() == pytest.approx(100 * math.pi)

    def test_contains_requires_all_disks(self):
        region = DiskIntersection(
            Disk(Point(0, 0), 10.0), (Disk(Point(15, 0), 10.0),)
        )
        assert region.contains(Point(7, 0))
        assert not region.contains(Point(-7, 0))  # outside constraint
        assert not region.contains(Point(16, 0))  # outside base

    def test_monte_carlo_matches_lens_area(self):
        base = Disk(Point(0, 0), 100.0)
        other = Disk(Point(120, 0), 100.0)
        region = DiskIntersection(base, (other,))
        exact = lens_area(base, other)
        estimate = region.area(n_samples=60_000, rng=3)
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_empty_intersection_has_zero_area(self):
        region = DiskIntersection(
            Disk(Point(0, 0), 10.0), (Disk(Point(100, 0), 10.0),)
        )
        assert region.area(n_samples=5_000, rng=1) == 0.0

    def test_area_decreases_with_more_constraints(self):
        base = Disk(Point(0, 0), 100.0)
        r1 = DiskIntersection(base, (Disk(Point(50, 0), 100.0),))
        r2 = r1.with_constraint(Disk(Point(0, 80), 100.0))
        a1 = r1.area(n_samples=30_000, rng=5)
        a2 = r2.area(n_samples=30_000, rng=5)
        assert a2 <= a1

    def test_centroid_inside_region(self):
        base = Disk(Point(0, 0), 100.0)
        region = DiskIntersection(base, (Disk(Point(120, 0), 100.0),))
        c = region.centroid(n_samples=20_000, rng=2)
        assert c is not None
        assert region.contains(c)

    def test_centroid_none_for_empty_region(self):
        region = DiskIntersection(
            Disk(Point(0, 0), 1.0), (Disk(Point(100, 0), 1.0),)
        )
        assert region.centroid(n_samples=2_000, rng=2) is None

    def test_invalid_sample_count_raises(self):
        region = DiskIntersection(Disk(Point(0, 0), 1.0))
        with pytest.raises(GeometryError):
            region.area(n_samples=0)
