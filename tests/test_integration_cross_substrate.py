"""Cross-substrate integration: road traces through the full attack stack.

End-to-end path no single unit test covers: synthesize a road network,
route taxis along it, release aggregates through the LBS entities, and
track the drivers with the continuous tracker — every substrate touching
every other.
"""

import numpy as np
import pytest

from repro.attacks.tracker import ContinuousTracker, TimedRelease
from repro.core.rng import derive_rng
from repro.datasets.roads import (
    RoadFleetConfig,
    RoadNetwork,
    synthesize_road_trajectories,
)
from repro.lbs.entities import GeoServiceProvider, MobileUser, POIService


@pytest.fixture(scope="module")
def road_setup(db):
    network = RoadNetwork.synthesize(db, n_intersections=100, rng=derive_rng(1, "xsub"))
    config = RoadFleetConfig(n_taxis=6, trips_per_taxi=3, gps_noise_m=5.0)
    trajectories = synthesize_road_trajectories(db, network, config, derive_rng(2, "xsub"))
    return network, trajectories


class TestRoadTracesThroughTheStack:
    RADIUS = 700.0

    def test_releases_flow_through_lbs_entities(self, db, road_setup):
        _, trajectories = road_setup
        gsp = GeoServiceProvider(db)
        service = POIService(curious=True)
        for traj in trajectories:
            user = MobileUser(traj.user_id, gsp, rng=derive_rng(3, "u", traj.user_id))
            for release in user.walk(traj, self.RADIUS):
                service.recommend(release)
        assert len(service.observed_releases) == sum(len(t) for t in trajectories)

    def test_tracker_consumes_road_traces(self, db, road_setup):
        _, trajectories = road_setup
        tracker = ContinuousTracker(db, max_speed_mps=25.0)
        n_unique = n_correct = 0
        for traj in trajectories:
            releases = [
                TimedRelease(db.freq(p.location, self.RADIUS), p.timestamp)
                for p in traj.points
            ]
            result = tracker.track(releases, self.RADIUS)
            for step in result.unique_steps:
                n_unique += 1
                anchor = result.candidate_at(step)
                dist = db.location_of(anchor).distance_to(traj.points[step].location)
                n_correct += dist <= self.RADIUS + 1e-6
        # Soundness holds on road-constrained motion too.
        assert n_correct == n_unique

    def test_road_speeds_respect_tracker_bound(self, road_setup):
        """The tracker's 25 m/s bound is actually sound for this fleet."""
        _, trajectories = road_setup
        for traj in trajectories:
            for a, b in zip(traj.points, traj.points[1:]):
                dt = b.timestamp - a.timestamp
                if dt <= 0:
                    continue
                assert a.location.distance_to(b.location) / dt <= 25.0
