"""PL002 positive case *inside* defense/: a free-function mechanism call.

Mechanism invocations in repro.defense must live inside Defense classes so
the BudgetedDefense/PrivacyAccountant wrapper can guard the release path;
a module-level helper bypasses that structure.
"""

import numpy as np

from repro.dp.mechanisms import laplace_mechanism


def helper_outside_any_class(freq: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    return laplace_mechanism(freq, 1.0, 0.5, rng)  # PL002
