"""Tests for the trajectory model and pair extraction."""

import pytest

from repro.core.errors import DatasetError
from repro.datasets.trajectory import (
    ReleasePair,
    Trajectory,
    TrajectoryPoint,
    extract_release_pairs,
)
from repro.geo.point import Point


def tp(x, y, t):
    return TrajectoryPoint(Point(x, y), t)


class TestTrajectoryPoint:
    def test_hour_of_day(self):
        assert tp(0, 0, 0.0).hour_of_day == 0
        assert tp(0, 0, 3 * 3600 + 100).hour_of_day == 3
        assert tp(0, 0, 25 * 3600).hour_of_day == 1

    def test_day_of_week(self):
        assert tp(0, 0, 0.0).day_of_week == 0
        assert tp(0, 0, 86400.0 * 8).day_of_week == 1


class TestTrajectory:
    def test_requires_time_order(self):
        with pytest.raises(DatasetError, match="time-ordered"):
            Trajectory(0, (tp(0, 0, 10.0), tp(1, 1, 5.0)))

    def test_duration(self):
        traj = Trajectory(0, (tp(0, 0, 100.0), tp(1, 1, 160.0), tp(2, 2, 400.0)))
        assert traj.duration == 300.0
        assert len(traj) == 3

    def test_single_point_duration_zero(self):
        assert Trajectory(0, (tp(0, 0, 5.0),)).duration == 0.0


class TestReleasePair:
    def test_duration_and_distance(self):
        pair = ReleasePair(tp(0, 0, 100.0), tp(30, 40, 160.0))
        assert pair.duration == 60.0
        assert pair.distance == pytest.approx(50.0)


class TestExtractReleasePairs:
    def test_respects_max_gap(self):
        traj = Trajectory(
            0, (tp(0, 0, 0.0), tp(100, 0, 300.0), tp(200, 0, 2_000.0))
        )
        pairs = extract_release_pairs([traj], max_gap_s=600.0)
        assert len(pairs) == 1
        assert pairs[0].duration == 300.0

    def test_skips_stationary_pairs(self):
        traj = Trajectory(0, (tp(0, 0, 0.0), tp(0, 0, 100.0), tp(50, 0, 200.0)))
        pairs = extract_release_pairs([traj], min_distance_m=1.0)
        assert len(pairs) == 1
        assert pairs[0].distance == pytest.approx(50.0)

    def test_multiple_trajectories(self):
        t1 = Trajectory(0, (tp(0, 0, 0.0), tp(10, 0, 60.0)))
        t2 = Trajectory(1, (tp(5, 5, 0.0), tp(5, 25, 120.0)))
        assert len(extract_release_pairs([t1, t2])) == 2

    def test_invalid_gap_raises(self):
        with pytest.raises(DatasetError):
            extract_release_pairs([], max_gap_s=0.0)

    def test_empty_input(self):
        assert extract_release_pairs([]) == []
