"""Location-uniqueness measurement (the phenomenon behind the paper).

Cao et al. [IMWUT'18] introduced *location uniqueness*: the fraction of a
city whose POI type combination within radius ``r`` identifies it.  This
module measures that phenomenon directly on a :class:`POIDatabase` —
sampling-based rates, a spatial uniqueness map, and statistics about which
types act as the identifying anchors.  The experiment runners use the
attacks; this module answers the *why* questions around them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import Release
from repro.attacks.region import RegionAttack
from repro.core.errors import ConfigError
from repro.core.rng import RngLike, as_generator
from repro.geo.bbox import BBox
from repro.poi.database import POIDatabase

__all__ = [
    "uniqueness_rate",
    "UniquenessMap",
    "uniqueness_map",
    "AnchorStatistics",
    "anchor_statistics",
]


def uniqueness_rate(
    database: POIDatabase,
    radius: float,
    n_samples: int = 500,
    bounds: "BBox | None" = None,
    rng: RngLike = None,
) -> float:
    """Fraction of sampled locations that are uniquely re-identifiable.

    Samples uniform locations in *bounds* (default: the city) and runs the
    region attack on their true aggregates; since the attack has no false
    negatives on honest releases, "unique" and "attack succeeds" coincide.
    """
    if n_samples <= 0:
        raise ConfigError(f"n_samples must be positive, got {n_samples}")
    gen = as_generator(rng)
    area = bounds if bounds is not None else database.bounds
    attack = RegionAttack(database)
    locations = [area.sample_point(gen) for _ in range(n_samples)]
    freqs = database.freq_batch(locations, radius)
    outcomes = attack.run_batch([Release(f, radius) for f in freqs])
    return sum(o.success for o in outcomes) / n_samples


@dataclass(frozen=True)
class UniquenessMap:
    """A raster of per-cell uniqueness over the city.

    ``grid[i, j]`` is True when the center of cell (row i from the south,
    column j from the west) is uniquely re-identifiable at the map's
    radius.
    """

    grid: np.ndarray
    bounds: BBox
    radius: float

    @property
    def rate(self) -> float:
        """Fraction of unique cells."""
        return float(self.grid.mean()) if self.grid.size else 0.0

    def to_ascii(self, unique_char: str = "#", other_char: str = ".") -> str:
        """Render north-up: one character per cell."""
        rows = []
        for row in self.grid[::-1]:  # north on top
            rows.append("".join(unique_char if c else other_char for c in row))
        return "\n".join(rows)


def uniqueness_map(
    database: POIDatabase,
    radius: float,
    cell_m: float = 2_000.0,
    bounds: "BBox | None" = None,
) -> UniquenessMap:
    """Evaluate uniqueness on a regular grid of cell centers."""
    if cell_m <= 0:
        raise ConfigError(f"cell_m must be positive, got {cell_m}")
    area = bounds if bounds is not None else database.bounds
    nx = max(1, int(area.width // cell_m))
    ny = max(1, int(area.height // cell_m))
    attack = RegionAttack(database)
    xs = area.min_x + (np.arange(nx) + 0.5) * cell_m
    ys = area.min_y + (np.arange(ny) + 0.5) * cell_m
    # Row-major centers (row i from the south, column j from the west),
    # matching the grid layout documented on UniquenessMap.
    centers = np.column_stack(
        [np.tile(xs, ny), np.repeat(ys, nx)]
    )
    freqs = database.freq_batch(centers, radius)
    outcomes = attack.run_batch([Release(f, radius) for f in freqs])
    grid = np.fromiter((o.success for o in outcomes), dtype=bool, count=ny * nx)
    return UniquenessMap(grid=grid.reshape(ny, nx), bounds=area, radius=radius)


@dataclass(frozen=True)
class AnchorStatistics:
    """Which POI types anchor successful re-identifications."""

    anchor_counts: dict[int, int]
    n_success: int
    median_anchor_city_count: float
    median_anchor_rank: float

    def top_anchor_types(self, n: int = 5) -> list[tuple[int, int]]:
        """The *n* most frequently used anchor types as (type_id, uses)."""
        return sorted(self.anchor_counts.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


def anchor_statistics(
    database: POIDatabase,
    radius: float,
    n_samples: int = 500,
    bounds: "BBox | None" = None,
    rng: RngLike = None,
) -> AnchorStatistics:
    """Profile the anchor types of successful attacks.

    The result quantifies the paper's intuition that rare types carry the
    identification signal: the median anchor's city-wide count is tiny and
    its infrequency rank is near 1.
    """
    if n_samples <= 0:
        raise ConfigError(f"n_samples must be positive, got {n_samples}")
    gen = as_generator(rng)
    area = bounds if bounds is not None else database.bounds
    attack = RegionAttack(database)
    counts: dict[int, int] = {}
    city_counts: list[int] = []
    ranks: list[int] = []
    locations = [area.sample_point(gen) for _ in range(n_samples)]
    freqs = database.freq_batch(locations, radius)
    for outcome in attack.run_batch([Release(f, radius) for f in freqs]):
        if not outcome.success or outcome.anchor_type is None:
            continue
        t = outcome.anchor_type
        counts[t] = counts.get(t, 0) + 1
        city_counts.append(int(database.city_frequency[t]))
        ranks.append(int(database.infrequent_ranks[t]))
    return AnchorStatistics(
        anchor_counts=counts,
        n_success=len(city_counts),
        median_anchor_city_count=float(np.median(city_counts)) if city_counts else float("nan"),
        median_anchor_rank=float(np.median(ranks)) if ranks else float("nan"),
    )
