"""Figures 9 & 10 — the non-private optimization defense (Eq. 7).

BJ T-drive and NYC Foursquare targets, beta swept over {0.01..0.05} for
each query range.  Fig. 9 reports the attack success rate after the
defense (lower is better); Fig. 10 the Top-10 Jaccard utility.  The paper
finds success falling substantially with beta while utility decreases only
slightly.  One runner computes both figures since they share every release.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.attacks.base import Release
from repro.attacks.region import RegionAttack
from repro.core.rng import derive_rng
from repro.defense.nonprivate import NonPrivateOptimizationDefense
from repro.defense.utility import top_k_jaccard
from repro.experiments.common import RADII_M, targets_for
from repro.experiments.results import ExperimentResult
from repro.experiments.scale import SCALES, ExperimentScale

__all__ = ["run_fig9_10", "DEFAULT_BETAS"]

DEFAULT_BETAS = (0.01, 0.02, 0.03, 0.04, 0.05)

_DATASETS = ("bj_tdrive", "nyc_foursquare")


def run_fig9_10(
    scale: ExperimentScale = SCALES["ci"],
    radii: Sequence[float] = RADII_M,
    datasets: Sequence[str] = _DATASETS,
    betas: Sequence[float] = DEFAULT_BETAS,
    top_k: int = 10,
) -> ExperimentResult:
    """Sweep beta and record defense success rate plus Top-K Jaccard."""
    result = ExperimentResult(
        experiment_id="fig9_10",
        title="Non-private optimization defense: success rate and utility",
        config={"scale": scale.name, "n_targets": scale.n_targets, "top_k": top_k},
        notes=(
            "Paper reference: success rate falls markedly as beta grows "
            "(Fig. 9) while Top-10 Jaccard decreases only slightly (Fig. 10)."
        ),
    )
    for dataset in datasets:
        for radius in radii:
            city, targets = targets_for(dataset, radius, scale)
            db = city.database
            attack = RegionAttack(db)
            originals = db.freq_batch(targets, radius)
            for beta in betas:
                defense = NonPrivateOptimizationDefense(beta)
                rng = derive_rng(scale.seed, "fig9", dataset, radius, beta)
                n_success = n_correct = 0
                jaccards: list[float] = []
                released_all = [
                    defense.release(db, target, radius, rng) for target in targets
                ]
                outcomes = attack.run_batch(
                    [Release(v, radius) for v in released_all]
                )
                for target, original, released, outcome in zip(
                    targets, originals, released_all, outcomes
                ):
                    if outcome.success:
                        n_success += 1
                        region = outcome.region
                        if region is not None and region.disk.contains(target):
                            n_correct += 1
                    jaccards.append(top_k_jaccard(original, released, k=top_k))
                result.add_row(
                    dataset=dataset,
                    r_km=radius / 1000.0,
                    beta=beta,
                    success_rate=n_success / len(targets),
                    correct_rate=n_correct / len(targets),
                    jaccard=float(np.mean(jaccards)),
                )
    return result
