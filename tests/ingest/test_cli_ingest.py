"""`poiagg ingest` CLI contract: detection, policies, exit codes, reports."""

import json

import pytest

from repro.cli import main


def damage_row(path, row_index: int, new_line: str) -> None:
    lines = path.read_text().splitlines()
    lines[1 + row_index] = new_line
    path.write_text("\n".join(lines) + "\n")


class TestExitCodes:
    def test_clean_csv_exits_zero_with_report(self, poi_csv, capsys):
        assert main(["ingest", str(poi_csv)]) == 0
        out = capsys.readouterr().out
        assert "poi-csv" in out
        assert "6 records" in out
        assert "6 ok" in out

    def test_strict_rejection_exits_one(self, poi_csv, capsys):
        damage_row(poi_csv, 1, "1,NOT#A#NUM,100.000,a")
        assert main(["ingest", str(poi_csv)]) == 1
        err = capsys.readouterr().err
        assert "REJECTED [SchemaDriftError]" in err
        assert "record 2" in err

    def test_missing_source_exits_one(self, tmp_path, capsys):
        assert main(["ingest", str(tmp_path / "absent.csv")]) == 1
        assert "REJECTED" in capsys.readouterr().err

    def test_undetectable_format_exits_two(self, tmp_path, capsys):
        mystery = tmp_path / "mystery.dat"
        mystery.write_text("a;b;c\n1;2;3\n")
        assert main(["ingest", str(mystery)]) == 2
        assert "cannot detect" in capsys.readouterr().err

    def test_trajectory_with_cache_dir_exits_two(
        self, trajectory_log, tmp_path, capsys
    ):
        code = main(
            ["ingest", str(trajectory_log), "--cache-dir", str(tmp_path / "c")]
        )
        assert code == 2
        assert "POI databases only" in capsys.readouterr().err


class TestFormatDetection:
    def test_osm_by_suffix(self, osm_file, capsys):
        assert main(["ingest", str(osm_file)]) == 0
        assert "osm-xml" in capsys.readouterr().out

    def test_trajectory_by_header(self, trajectory_log, capsys):
        assert main(["ingest", str(trajectory_log)]) == 0
        assert "trajectory-log" in capsys.readouterr().out

    def test_explicit_format_overrides_detection(self, trajectory_log, capsys):
        # Forcing the wrong format is a typed rejection, not a crash.
        assert main(["ingest", str(trajectory_log), "--format", "poi-csv"]) == 1
        assert "REJECTED" in capsys.readouterr().err


class TestPolicies:
    def test_repair_policy_fixes_and_exits_zero(self, poi_csv, capsys):
        damage_row(poi_csv, 1, "1,1200.000,100.000,a")
        assert main(["ingest", str(poi_csv), "--policy", "repair"]) == 0
        assert "1 repaired" in capsys.readouterr().out

    def test_quarantine_policy_diverts(self, poi_csv, tmp_path, capsys):
        damage_row(poi_csv, 1, "1,NOT#A#NUM,100.000,a")
        qpath = tmp_path / "diverted.jsonl"
        code = main(
            [
                "ingest",
                str(poi_csv),
                "--policy",
                "quarantine",
                "--quarantine",
                str(qpath),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 quarantined" in out
        assert str(qpath) in out
        assert qpath.exists()


class TestReportAndCache:
    def test_report_json_is_written_atomically(self, poi_csv, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(["ingest", str(poi_csv), "--report", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        assert payload["counts"]["ok"] == 6
        assert payload["format"] == "poi-csv"
        assert len(payload["source_sha256"]) == 64
        assert not list(tmp_path.glob("*.tmp"))

    @pytest.mark.parametrize("fixture_name", ["poi_csv", "osm_file"])
    def test_cache_miss_then_hit(self, fixture_name, tmp_path, capsys, request):
        source = request.getfixturevalue(fixture_name)
        cache_dir = tmp_path / "cache"
        assert main(["ingest", str(source), "--cache-dir", str(cache_dir)]) == 0
        assert "cache miss" in capsys.readouterr().out
        assert main(["ingest", str(source), "--cache-dir", str(cache_dir)]) == 0
        assert "cache hit" in capsys.readouterr().out
