"""End-to-end simulation of the LBS architecture under attack.

:func:`simulate_sessions` wires the whole paper together: a fleet of
users walks trajectories, each releasing (defended) aggregates to a
curious POI service; the adversary then replays the service's log through
the single-release and trajectory attacks.  The result quantifies, for a
given defense, how many users were re-identified and how precisely —
the same bottom line as the paper's evaluation, but as one library call.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.attacks.region import RegionAttack
from repro.attacks.trajectory import DistanceRegressor, PairRelease, TrajectoryAttack
from repro.core.rng import as_generator, spawn_rngs
from repro.datasets.trajectory import Trajectory
from repro.defense.base import Defense
from repro.lbs.entities import GeoServiceProvider, MobileUser, POIService
from repro.poi.database import POIDatabase

__all__ = ["SessionReport", "simulate_sessions"]


@dataclass(frozen=True)
class SessionReport:
    """Outcome of one simulated deployment."""

    n_users: int
    n_releases: int
    n_users_exposed_single: int
    n_users_exposed_linked: int
    defense_name: str

    @property
    def single_exposure_rate(self) -> float:
        """Users re-identified (correctly) from at least one single release."""
        return self.n_users_exposed_single / self.n_users if self.n_users else 0.0

    @property
    def linked_exposure_rate(self) -> float:
        """Exposure when the adversary additionally links successive releases."""
        return self.n_users_exposed_linked / self.n_users if self.n_users else 0.0


def simulate_sessions(
    database: POIDatabase,
    trajectories: Sequence[Trajectory],
    radius: float,
    defense: "Defense | None" = None,
    distance_regressor: "DistanceRegressor | None" = None,
    max_link_gap_s: float = 600.0,
    rng=None,
) -> SessionReport:
    """Run the full architecture and the adversary's post-hoc analysis.

    Parameters
    ----------
    database:
        The city's POI map (shared by the GSP and the adversary).
    trajectories:
        One trajectory per user; each sample triggers one release.
    radius:
        The query range all users use (part of release metadata).
    defense:
        The release mechanism every user applies; ``None`` = undefended.
    distance_regressor:
        Optional pre-trained displacement regressor; enables the linked
        (trajectory-uniqueness) stage of the adversary.
    max_link_gap_s:
        Maximum gap between two releases the adversary tries to link.
    """
    gen = as_generator(rng)
    gsp = GeoServiceProvider(database)
    service = POIService(curious=True)

    user_rngs = spawn_rngs(gen, len(trajectories))
    for trajectory, user_rng in zip(trajectories, user_rngs):
        user = MobileUser(trajectory.user_id, gsp, defense=defense, rng=user_rng)
        for release in user.walk(trajectory, radius):
            service.recommend(release)

    # --- the adversary's offline analysis over the captured log ---
    region_attack = RegionAttack(database)
    trajectory_attack = (
        TrajectoryAttack(database, distance_regressor)
        if distance_regressor is not None
        else None
    )
    by_location = {t.user_id: {p.timestamp: p.location for p in t.points} for t in trajectories}

    exposed_single: set[int] = set()
    exposed_linked: set[int] = set()
    n_releases = 0
    for trajectory in trajectories:
        uid = trajectory.user_id
        releases = service.releases_of(uid)
        n_releases += len(releases)
        for release in releases:
            outcome = region_attack.run(np.asarray(release.frequency_vector), radius)
            true_location = by_location[uid][release.timestamp]
            if outcome.success and outcome.locates(true_location):
                exposed_single.add(uid)
                exposed_linked.add(uid)
        if trajectory_attack is None or uid in exposed_linked:
            continue
        for first, second in zip(releases, releases[1:]):
            gap = second.timestamp - first.timestamp
            if not 0 < gap <= max_link_gap_s:
                continue
            pair = PairRelease(
                np.asarray(first.frequency_vector),
                np.asarray(second.frequency_vector),
                first.timestamp,
                second.timestamp,
            )
            outcome = trajectory_attack.run(pair, radius)
            true_location = by_location[uid][first.timestamp]
            if outcome.enhanced.success and outcome.enhanced.regions[0].disk.contains(
                true_location
            ):
                exposed_linked.add(uid)
                break

    defense_name = defense.name if defense is not None else "NoDefense"
    return SessionReport(
        n_users=len(trajectories),
        n_releases=n_releases,
        n_users_exposed_single=len(exposed_single),
        n_users_exposed_linked=len(exposed_linked),
        defense_name=defense_name,
    )
