"""Trajectory log persistence (CSV: ``user_id,t,x,y``).

Lets a synthesized fleet (T-drive, road-network, check-ins) be exported
and reloaded exactly — and lets users plug in real mobility logs in the
same format.  Mirrors :mod:`repro.poi.io`: :func:`save_trajectory_log`
writes atomically (temp-file + rename), and :func:`load_trajectory_log`
is a thin wrapper over the validating streaming loader in
:mod:`repro.ingest.loaders`, so malformed rows surface as typed
:class:`~repro.core.errors.IngestError` subtypes carrying the file path
and 1-based row number.

Floats are serialized with :func:`repr` precision, so a save/load
round-trip reproduces every coordinate and timestamp bit-identically.
"""

from __future__ import annotations

import csv
from collections.abc import Sequence
from pathlib import Path

from repro.datasets.trajectory import Trajectory
from repro.ingest.atomic import atomic_writer
from repro.ingest.loaders import TRAJECTORY_LOG_HEADER, ingest_trajectory_log

__all__ = ["save_trajectory_log", "load_trajectory_log"]


def save_trajectory_log(trajectories: Sequence[Trajectory], path: "str | Path") -> None:
    """Write *trajectories* to *path* as ``user_id,t,x,y`` rows, atomically.

    Rows are emitted per trajectory in sample order; coordinates and
    timestamps keep full ``repr`` precision so the log round-trips
    bit-identically through :func:`load_trajectory_log`.
    """
    path = Path(path)
    with atomic_writer(path, "w") as fh:
        writer = csv.writer(fh)
        writer.writerow(TRAJECTORY_LOG_HEADER)
        for traj in trajectories:
            for point in traj.points:
                writer.writerow(
                    [
                        traj.user_id,
                        repr(float(point.timestamp)),
                        repr(float(point.location.x)),
                        repr(float(point.location.y)),
                    ]
                )


def load_trajectory_log(
    path: "str | Path",
    *,
    policy: str = "strict",
    quarantine_path: "str | Path | None" = None,
) -> list[Trajectory]:
    """Load a log written by :func:`save_trajectory_log`.

    Every record is validated under *policy* (``strict`` / ``repair`` /
    ``quarantine``, see :mod:`repro.ingest`); the per-run
    :class:`~repro.ingest.report.IngestReport` flows to the provenance
    collector.
    """
    trajectories, _report = ingest_trajectory_log(
        path, policy=policy, quarantine_path=quarantine_path
    )
    return trajectories
