"""City presets calibrated to the paper's dataset statistics (§II-E).

The paper's OSM extracts: Beijing — 10,249 POIs, 177 types; New York City —
30,056 POIs, 272 types.  The presets below generate synthetic cities with
exactly those counts (see :mod:`repro.poi.generator` for why the synthetic
distribution preserves the phenomena under study).  A ``small`` preset is
provided for tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.geo.bbox import BBox
from repro.poi.database import POIDatabase
from repro.poi.generator import SyntheticCityConfig, generate_city

__all__ = [
    "City",
    "beijing",
    "new_york",
    "small_city",
    "CITY_BUILDERS",
    "install_attached_city",
    "clear_attached_cities",
]

#: Default seed used by experiment configs; any seed works.
DEFAULT_SEED = 20210414  # ICDCS 2021 notification-ish date; arbitrary.

# Type-count profiles are calibrated so the number of rare types (city
# frequency <= 10) matches the paper's sanitization counts — 90 of 177
# types in Beijing, 138 of 272 in NYC (paper §III-A) — while keeping a
# singleton tail, which drives large-radius location uniqueness.
BEIJING_CONFIG = SyntheticCityConfig(
    name="beijing",
    extent_m=40_000.0,
    n_pois=10_249,
    n_types=177,
    n_clusters=70,
    n_rare_types=90,
)

NEW_YORK_CONFIG = SyntheticCityConfig(
    name="nyc",
    extent_m=36_000.0,
    n_pois=30_056,
    n_types=272,
    n_clusters=90,
    n_rare_types=138,
)

SMALL_CONFIG = SyntheticCityConfig(
    name="small",
    extent_m=10_000.0,
    n_pois=1_500,
    n_types=40,
    n_clusters=15,
    cluster_sigma_min=150.0,
    cluster_sigma_max=800.0,
    n_rare_types=18,
)


@dataclass(frozen=True)
class City:
    """A named city: its POI database plus sampling helpers."""

    name: str
    database: POIDatabase
    seed: int

    @property
    def bounds(self) -> BBox:
        return self.database.bounds

    def interior(self, margin: float) -> BBox:
        """The city bounds shrunk by *margin* on every side.

        Experiment targets are sampled from the interior so a query disk of
        radius ``margin`` never leaves the mapped area, avoiding boundary
        artefacts the paper's OSM extracts do not have.
        """
        b = self.bounds
        margin = min(margin, (b.width / 2) * 0.49, (b.height / 2) * 0.49)
        return BBox(
            b.min_x + margin, b.min_y + margin, b.max_x - margin, b.max_y - margin
        )


# Shared-memory attachments: when a shard worker has attached a city from
# a SharedCityHandle (see repro.poi.shared), the builders below return the
# attached zero-copy instance instead of regenerating the city.  Keyed by
# (name, seed) so mixed-seed workloads never cross wires.
_ATTACHED: dict[tuple[str, int], City] = {}


def install_attached_city(city: City) -> None:
    """Make the city builders return *city* for its ``(name, seed)``.

    Called by :func:`repro.poi.shared.attach_and_install` in shard workers
    so that every in-process path that asks for ``beijing(seed)`` etc. gets
    the shared-memory instance.
    """
    _ATTACHED[(city.name, city.seed)] = city


def clear_attached_cities() -> None:
    """Drop all shared-memory attachments (builders regenerate again)."""
    _ATTACHED.clear()


@lru_cache(maxsize=8)
def _build_beijing(seed: int) -> City:
    return City("beijing", generate_city(BEIJING_CONFIG, seed), seed)


@lru_cache(maxsize=8)
def _build_new_york(seed: int) -> City:
    return City("nyc", generate_city(NEW_YORK_CONFIG, seed), seed)


@lru_cache(maxsize=8)
def _build_small_city(seed: int) -> City:
    return City("small", generate_city(SMALL_CONFIG, seed), seed)


def beijing(seed: int = DEFAULT_SEED) -> City:
    """The Beijing preset: 10,249 POIs, 177 types over a 40 km square."""
    return _ATTACHED.get(("beijing", seed)) or _build_beijing(seed)


def new_york(seed: int = DEFAULT_SEED) -> City:
    """The NYC preset: 30,056 POIs, 272 types over a 36 km square."""
    return _ATTACHED.get(("nyc", seed)) or _build_new_york(seed)


def small_city(seed: int = DEFAULT_SEED) -> City:
    """A small city for fast tests: 1,500 POIs, 40 types over 10 km."""
    return _ATTACHED.get(("small", seed)) or _build_small_city(seed)


#: Name → builder map used by the CLI and experiment registry.
CITY_BUILDERS = {"beijing": beijing, "nyc": new_york, "small": small_city}
