"""The crash-point sweep harness: correct writers pass at every point,
and — the negative control — a writer with a real torn-commit bug is
caught, proving the harness has teeth."""

import json

import pytest

from repro.core.crashsweep import (
    SWEEP_MODES,
    SweepScenario,
    render_report,
    run_sweep,
    run_sweeps,
)
from repro.core.errors import ConfigError
from repro.core.vfs import get_vfs
from repro.ingest.atomic import atomic_write_text

PAYLOAD = {"round": 2, "value": [1, 2, 3]}


def atomic_scenario():
    """A correct writer: atomic_write_text, old-or-new recovery."""

    def setup(ctx, root):
        atomic_write_text(root / "state.json", json.dumps({"round": 1}))

    def run(ctx, root):
        atomic_write_text(root / "state.json", json.dumps(PAYLOAD))

    def check(ctx, root):
        raw = (root / "state.json").read_text()
        try:
            state = json.loads(raw)
        except json.JSONDecodeError:
            # Detection contract: a lying fsync can defeat rename
            # atomicity itself; the reader surfacing the damage is the
            # strongest available guarantee (module docstring).
            assert ctx["mode"] == "fsync-lie", "torn JSON under an honest disk"
            return
        assert state in ({"round": 1}, PAYLOAD), state

    return SweepScenario(
        name="atomic-overwrite", setup=setup, run=run, check=check
    )


def broken_scenario():
    """A writer with the bug PL014/this harness exists for: tmp-then-
    rename with no fsync — the published name's data never hit disk."""

    def setup(ctx, root):
        atomic_write_text(root / "state.json", json.dumps({"round": 1}))

    def run(ctx, root):
        vfs = get_vfs()
        tmp = root / "state.json.tmp"
        with vfs.open(tmp, "w") as fh:
            fh.write(json.dumps(PAYLOAD))
        vfs.replace(tmp, root / "state.json")  # commit without fsync

    def check(ctx, root):
        state = json.loads((root / "state.json").read_text())
        assert state in ({"round": 1}, PAYLOAD), state

    return SweepScenario(name="broken-overwrite", setup=setup, run=run, check=check)


def test_correct_writer_survives_every_crash_point():
    report = run_sweep(atomic_scenario(), seed=0)
    assert report.control_ok
    assert report.n_ops >= 4  # open, write, fsync, replace at minimum
    assert report.n_points >= report.n_ops
    assert report.passed, [p.as_dict() for p in report.failures]


def test_sweep_enumerates_all_three_schedules():
    report = run_sweep(atomic_scenario(), seed=0)
    modes = {p.mode for p in report.points}
    assert modes == set(SWEEP_MODES)
    # One kill per op plus the post-completion kill, one torn per write
    # op, one lie per fsync.
    assert sum(1 for p in report.points if p.mode == "kill") == report.n_ops + 1
    assert sum(1 for p in report.points if p.mode == "fsync-lie") == report.n_fsyncs


def test_broken_writer_is_caught():
    """The negative control: a green sweep must not be vacuous."""
    report = run_sweep(broken_scenario(), seed=0)
    assert report.control_ok  # the bug is invisible without a crash
    assert not report.passed
    # The post-completion kill is the schedule that exposes it: the
    # rename's metadata journals, the never-fsynced data does not.
    post = next(p for p in report.failures if p.op_index == report.n_ops + 1)
    assert post.mode == "kill" and not post.crashed


def test_oracles_see_the_crash_schedule():
    seen = []

    def setup(ctx, root):
        atomic_write_text(root / "s.json", "{}")

    def run(ctx, root):
        atomic_write_text(root / "s.json", json.dumps(PAYLOAD))

    def check(ctx, root):
        seen.append(ctx["mode"])

    run_sweep(SweepScenario(name="probe", setup=setup, run=run, check=check))
    assert seen[0] == "control"
    assert set(seen) >= {"control", "kill", "torn", "fsync-lie"}


def test_control_failure_short_circuits():
    def bad_check(ctx, root):
        raise AssertionError("broken oracle")

    scenario = atomic_scenario()
    report = run_sweep(
        SweepScenario(
            name="bad", setup=scenario.setup, run=scenario.run, check=bad_check
        )
    )
    assert not report.control_ok
    assert "broken oracle" in report.control_error
    assert not report.passed
    assert report.points == []  # no point sweeping against a broken oracle


def test_aggregate_report_and_rendering(tmp_path):
    aggregate = run_sweeps([atomic_scenario()], seed=1)
    assert aggregate["seed"] == 1
    assert aggregate["n_scenarios"] == 1
    assert aggregate["passed"] is True
    text = render_report(aggregate)
    assert "PASS" in text and "atomic-overwrite" in text
    # JSON round-trip: the aggregate is what the CI artifact stores.
    assert json.loads(json.dumps(aggregate)) == aggregate


def test_run_sweeps_refuses_an_empty_battery():
    with pytest.raises(ConfigError):
        run_sweeps([])


def test_failures_are_located(tmp_path):
    report = run_sweep(broken_scenario(), seed=0)
    failure = report.failures[0]
    d = failure.as_dict()
    assert d["mode"] in SWEEP_MODES
    assert d["op_index"] >= 1
    assert d["error"]
    rendered = render_report(run_sweeps([broken_scenario()], seed=0))
    assert "FAIL" in rendered
