"""Ablation bench: attack exposure vs release-stream fault rate.

Extension beyond the paper (robustness testbed): the deployment
simulation runs under seeded fault injection, sweeping release-drop and
corruption rates.  The bench asserts the claims that make faults a
*defense-relevant* phenomenon:

* delivery decays as the fault rate rises (sanity);
* linked exposure decreases monotonically (within tolerance) along the
  drop sweep — fewer surviving releases mean fewer chances to be unique;
* linkable-pair survival decays *faster* than release survival — a pair
  needs two consecutive survivors, so the trajectory-linkage stage is
  starved superlinearly (the quadratic-vs-linear gap).
"""

from benchmarks.conftest import run_once
from repro.experiments.ablation_faults import run_ablation_faults

#: Seed noise allowance on per-rate exposure comparisons (rates are over
#: ~40 users, so one user is 0.025).
_TOLERANCE = 0.06


def test_bench_ablation_faults(benchmark, bench_scale):
    result = run_once(benchmark, lambda: run_ablation_faults(bench_scale))
    print()
    print(result.render())

    drops = result.filter(mode="drop")
    corrupts = result.filter(mode="corrupt")
    assert len(drops) >= 3 and len(corrupts) >= 2

    # Delivery decays with the fault rate (strictly: the fault sets nest).
    for rows in (drops, corrupts):
        deliveries = [row["delivery_rate"] for row in rows]
        assert all(b < a for a, b in zip(deliveries, deliveries[1:]))

    # Exposure starvation: linked exposure decreases monotonically
    # (within tolerance) as the drop rate rises, and the extreme rates
    # differ substantially.
    linked = [row["linked_rate"] for row in drops]
    assert all(b <= a + _TOLERANCE for a, b in zip(linked, linked[1:]))
    assert linked[-1] < linked[0] - 0.2
    singles = [row["single_rate"] for row in drops]
    assert all(b <= a + _TOLERANCE for a, b in zip(singles, singles[1:]))

    # Pair starvation is superlinear: surviving linkable pairs decay
    # faster than surviving releases (a pair needs 2 consecutive hits).
    base = drops[0]
    assert base["n_linkable_pairs"] > 0
    for row in drops[1:]:
        release_survival = row["n_releases"] / base["n_releases"]
        pair_survival = row["n_linkable_pairs"] / base["n_linkable_pairs"]
        assert pair_survival <= release_survival + 1e-9

    # Corrupted releases are rejected at ingest: they behave like drops
    # for the adversary and never reach the log.
    for row in corrupts[1:]:
        assert row["n_rejected"] > 0
        assert row["linked_rate"] <= corrupts[0]["linked_rate"] + _TOLERANCE
