"""Seeded simulated clients contributing locally-noised frequency vectors.

Each client sits at a fixed location in the city, computes its local
``Freq(location, radius)`` vector against the public POI database, L1-clips
it to the config's ``clip_bound``, maps its location onto the round's
published :class:`~repro.federated.merger.AdaptiveGrid` cell, and submits
``(cell, payload)`` together with its protocol-layer Gaussian noise share.
The server never sees a location or an un-noised per-cell row.

**Noise shares span the full domain.**  Each contributing client's share
is an i.i.d. Gaussian matrix over the whole ``(n_cells, n_types)`` grid
with scale :meth:`~repro.federated.config.FederatedConfig.share_sigma`,
so *every* entry of the released heatmap carries the sum of the
contributors' shares — at the completion quorum that sum already matches
the centralized Gaussian mechanism at the configured ``(epsilon,
delta)``, and extra survivors only add noise.  (Per-own-cell shares
would be unsound: a sparsely occupied cell would get less noise than the
central calibration requires.)  The simulation never materializes
``O(clients x cells x types)``: shares are generated chunk-keyed and
position-indexed in memory-bounded sub-batches and folded straight into
the accumulator-sized sum (:meth:`ClientPopulation.noise_share_sum`).

Everything is derived per ``(seed, label, chunk)`` — locations per
chunk, shares per ``(round, chunk)`` position-indexed, arrivals per
``(round, chunk, attempt)`` — so any client's contribution is
recomputable in isolation (the retry path) while the bulk path stays
vectorized and streamed.  A client's share is a function of ``(seed,
round, chunk, position)`` only — not of its payload and not of the
attempt — which the chaos suite exploits: a poisoned client
re-simulated with a zeroed payload carries the *same* noise, so the
released-aggregate displacement is exactly the clipped payload and
provably at most the clip bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.core.rng import derive_rng
from repro.federated.config import FederatedConfig
from repro.federated.faults import ClientFaultPlan
from repro.federated.merger import AdaptiveGrid
from repro.poi.database import POIDatabase

__all__ = ["ClientPopulation", "ContributionBatch", "clip_l1"]


def clip_l1(vectors: np.ndarray, bound: float) -> np.ndarray:
    """Scale rows of *vectors* down to L1 norm at most *bound*.

    Rows already inside the bound are returned untouched (no rescaling
    noise); the scaling is the standard norm-clip, so a row's direction
    is preserved.  Also the admission-side outlier clamp: since the L2
    norm is bounded by the L1 norm, a clip bound of ``C`` is a sound
    sensitivity for the Gaussian calibration.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    norms = np.abs(vectors).sum(axis=-1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        scale = np.where(norms > bound, bound / norms, 1.0)
    return vectors * scale


@dataclass
class ContributionBatch:
    """One chunk of client submissions as the aggregator receives them.

    ``payloads`` is the client-controlled half of the submission — what
    admission range-checks and clips.  The Gaussian noise share is
    protocol-layer state, not a batch field: the supervisor folds the
    admitted clients' share sum separately via
    :meth:`ClientPopulation.noise_share_sum` (the secure-aggregation
    split of the real protocol).  ``damage`` marks rows the fault
    injector structurally broke (``malformed``), inflated
    (``poisoned``), or resubmitted (``duplicate``); healthy rows hold
    ``""``.
    """

    round_id: int
    client_ids: np.ndarray  # (k,) int64
    cells: np.ndarray  # (k,) int64 — grid cell index, client-computed
    payloads: np.ndarray  # (k, n_types) float64 — client-controlled data
    arrivals_s: np.ndarray  # (k,) float64 — simulated round-clock arrival
    damage: list[str]

    def __len__(self) -> int:
        return len(self.client_ids)


class ClientPopulation:
    """The seeded client fleet of one campaign.

    A population is cheap to construct and stateless across calls: all
    client attributes are derived on demand, chunk by chunk, from
    ``(seed, config)``.
    """

    def __init__(
        self, database: POIDatabase, config: FederatedConfig, seed: int
    ) -> None:
        self._db = database
        self._config = config
        self._seed = seed

    @property
    def config(self) -> FederatedConfig:
        return self._config

    @property
    def n_types(self) -> int:
        return int(self._db.n_types)

    @property
    def n_clients(self) -> int:
        return self._config.n_clients

    @property
    def n_chunks(self) -> int:
        chunk = self._config.chunk_clients
        return (self.n_clients + chunk - 1) // chunk

    def chunk_client_ids(self, chunk: int) -> np.ndarray:
        """The client ids materialized by chunk *chunk* (ascending)."""
        if not 0 <= chunk < self.n_chunks:
            raise ConfigError(f"chunk {chunk} out of range [0, {self.n_chunks})")
        lo = chunk * self._config.chunk_clients
        hi = min(lo + self._config.chunk_clients, self.n_clients)
        return np.arange(lo, hi, dtype=np.int64)

    def locations(self, chunk: int) -> np.ndarray:
        """Client locations of one chunk: ``(k, 2)``, fixed across rounds."""
        ids = self.chunk_client_ids(chunk)
        rng = derive_rng(self._seed, "fed-loc", chunk)
        bounds = self._db.bounds
        xy = np.empty((len(ids), 2), dtype=np.float64)
        xy[:, 0] = rng.uniform(bounds.min_x, bounds.max_x, size=len(ids))
        xy[:, 1] = rng.uniform(bounds.min_y, bounds.max_y, size=len(ids))
        return xy

    def payloads(self, chunk: int) -> np.ndarray:
        """Clipped local frequency vectors of one chunk: ``(k, n_types)``."""
        xy = self.locations(chunk)
        freqs = self._db.freq_batch(xy, self._config.radius_m).astype(np.float64)
        return clip_l1(freqs, self._config.clip_bound)

    def noise_share_sum(
        self,
        round_id: int,
        chunk: int,
        contributor_ids: np.ndarray,
        n_cells: int,
    ) -> np.ndarray:
        """Sum of the chunk's contributing clients' full-domain shares.

        Returns an ``(n_cells, n_types)`` matrix: the sum, over this
        chunk's clients in *contributor_ids*, of each one's i.i.d.
        ``N(0, share_sigma)`` domain share.  The per-client share is
        position-indexed in a ``(seed, round, chunk)``-keyed stream —
        every chunk member's share is always generated (and discarded if
        it did not contribute) — so a client's noise is independent of
        its payload, of its delivery attempt, and of *which other*
        clients contributed.  Generation runs in sub-batches sized to a
        quarter of the memory budget, never ``O(clients x cells)`` at
        once, and the sub-batch boundary cannot change the values (a
        numpy ``Generator`` stream is continuation-consistent across
        calls).
        """
        if n_cells < 1:
            raise ConfigError(f"n_cells must be positive, got {n_cells}")
        ids = self.chunk_client_ids(chunk)
        contributed = np.isin(ids, np.asarray(contributor_ids, dtype=np.int64))
        rng = derive_rng(self._seed, "fed-share", round_id, chunk)
        sigma = self._config.share_sigma()
        row_bytes = n_cells * self.n_types * 8
        rows = max(1, (self._config.memory_budget_bytes // 4) // row_bytes)
        total = np.zeros((n_cells, self.n_types), dtype=np.float64)
        for lo in range(0, len(ids), rows):
            b = min(rows, len(ids) - lo)
            shares = rng.normal(0.0, sigma, size=(b, n_cells, self.n_types))
            mask = contributed[lo : lo + b]
            if mask.any():
                total += shares[mask].sum(axis=0)
        return total

    def arrivals(self, round_id: int, chunk: int, attempt: int) -> np.ndarray:
        """Simulated arrival times for one delivery attempt: ``(k,)``.

        Lognormal with a median well inside the deadline, so under a
        healthy fleet essentially every contribution is on time; the
        straggler tail (and any chaos-shrunk ``deadline_s``) is what the
        late-refusal path exists for.
        """
        ids = self.chunk_client_ids(chunk)
        rng = derive_rng(self._seed, "fed-arrival", round_id, chunk, attempt)
        median = self._config.deadline_s * 0.2
        return rng.lognormal(mean=np.log(median), sigma=0.5, size=len(ids))

    def contribution_batch(
        self,
        round_id: int,
        chunk: int,
        grid: AdaptiveGrid,
        *,
        attempt: int = 1,
        only_clients: "np.ndarray | None" = None,
        fault_plan: "ClientFaultPlan | None" = None,
        zero_payload_clients: "frozenset[int] | None" = None,
    ) -> tuple[ContributionBatch, np.ndarray]:
        """One chunk's submissions for one delivery attempt.

        Returns ``(batch, silent)``: *batch* holds the contributions that
        arrived (on whatever schedule), *silent* the client ids that
        produced nothing this attempt (crashed or hung) and are the
        supervisor's retry set.  *only_clients* restricts the chunk to a
        subset (the retry path).  *zero_payload_clients* replaces those
        clients' payloads with zeros — their noise shares, generated
        separately and payload-independently, are untouched — the chaos
        suite's displacement probe, never used in production.
        """
        ids = self.chunk_client_ids(chunk)
        mask = np.ones(len(ids), dtype=bool)
        if only_clients is not None:
            mask = np.isin(ids, only_clients)
        payloads = self.payloads(chunk)[mask]
        arrivals = self.arrivals(round_id, chunk, attempt)[mask]
        cells = grid.locate_batch(self.locations(chunk)[mask])
        ids = ids[mask]

        if zero_payload_clients:
            zeroed = np.isin(ids, np.fromiter(zero_payload_clients, dtype=np.int64))
            payloads = payloads.copy()
            payloads[zeroed] = 0.0

        damage = [""] * len(ids)
        keep = np.ones(len(ids), dtype=bool)
        if fault_plan is not None and fault_plan.any_faults:
            values_dirty = False
            for i, client_id in enumerate(ids):
                fate = fault_plan.decide(round_id, int(client_id), attempt)
                if fate is None:
                    continue
                if fate in ("crash", "hang"):
                    keep[i] = False
                elif fate == "malformed":
                    damage[i] = "malformed"
                elif fate == "poisoned":
                    if not values_dirty:
                        payloads = payloads.copy()
                        values_dirty = True
                    payloads[i] *= fault_plan.poison_factor
                    damage[i] = "poisoned"
                elif fate == "duplicate":
                    damage[i] = "duplicate"

        batch = ContributionBatch(
            round_id=round_id,
            client_ids=ids[keep],
            cells=cells[keep],
            payloads=payloads[keep].copy(),
            arrivals_s=arrivals[keep],
            damage=[d for d, k in zip(damage, keep) if k],
        )
        # Structural damage is applied *after* assembly so it cannot
        # perturb any other row: a malformed submission carries NaNs and
        # a broken cell index, exactly what admission must catch.
        for i, d in enumerate(batch.damage):
            if d == "malformed":
                batch.payloads[i] = np.nan
                batch.cells[i] = -1
        return batch, ids[~keep]
