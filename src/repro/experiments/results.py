"""Experiment result records, JSON persistence, and table rendering.

Every figure runner returns an :class:`ExperimentResult`: a named grid of
rows (dicts of scalars) plus the run's configuration, with helpers to
render the same rows/series the paper reports and to persist them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["ExperimentResult", "render_table"]


@dataclass
class ExperimentResult:
    """The output of one experiment runner."""

    experiment_id: str
    title: str
    config: dict = field(default_factory=dict)
    rows: list[dict] = field(default_factory=list)
    notes: str = ""
    #: Execution metadata that is *not* part of the scientific result:
    #: how the rows were produced (sharding layout, per-shard supervision
    #: reports, resume information).  Rows are compared bit-for-bit across
    #: serial/sharded/resumed runs; provenance is allowed to differ.
    provenance: dict = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        """Append one result row."""
        self.rows.append(values)

    def column(self, name: str) -> list:
        """Extract one column across all rows (missing values become None)."""
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: object) -> list[dict]:
        """Rows matching all ``column=value`` criteria."""
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in criteria.items())
        ]

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, default=float)

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "ExperimentResult":
        data = json.loads(Path(path).read_text())
        return cls(**data)

    def render(self) -> str:
        """Human-readable report: title, config, and the row table."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.config:
            cfg = ", ".join(f"{k}={v}" for k, v in self.config.items())
            lines.append(f"config: {cfg}")
        lines.append(render_table(self.rows))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(rows: list[dict]) -> str:
    """Render rows as an aligned ASCII table with a union-of-keys header."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    grid = [[_format_cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in grid)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = ["  ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in grid]
    return "\n".join([header, sep, *body])
