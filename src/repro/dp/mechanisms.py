"""Scalar/vector differential-privacy mechanisms (paper §II-C).

Implements the Gaussian mechanism with the classic calibration of
Definition 2 — ``sigma >= sqrt(2 ln(1.25/delta)) * Delta / epsilon`` gives
``(epsilon, delta)``-DP — plus the Laplace mechanism for completeness and a
helper for per-dimension sensitivities, which the paper's defense uses
(``Delta_i = max_d F_d[i]``, proof of Theorem 4).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.errors import PrivacyError
from repro.core.rng import RngLike, as_generator

__all__ = [
    "gaussian_sigma",
    "gaussian_mechanism",
    "distributed_gaussian_sigma",
    "laplace_mechanism",
    "PrivacyParams",
]

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PrivacyParams:
    """An ``(epsilon, delta)`` differential-privacy budget."""

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {self.epsilon}")
        if not 0.0 <= self.delta < 1.0:
            raise PrivacyError(f"delta must be in [0, 1), got {self.delta}")


def gaussian_sigma(sensitivity: float, epsilon: float, delta: float) -> float:
    """The calibrated Gaussian noise scale of Definition 2.

    ``sigma = sqrt(2 ln(1.25/delta)) * sensitivity / epsilon``.
    """
    if sensitivity < 0:
        raise PrivacyError(f"sensitivity must be non-negative, got {sensitivity}")
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise PrivacyError(f"the Gaussian mechanism needs delta in (0, 1), got {delta}")
    return math.sqrt(2.0 * math.log(1.25 / delta)) * sensitivity / epsilon


def gaussian_mechanism(
    value: np.ndarray,
    sensitivity: "float | np.ndarray",
    epsilon: float,
    delta: float,
    rng: RngLike = None,
) -> np.ndarray:
    """Add calibrated Gaussian noise to *value*.

    *sensitivity* may be a scalar (uniform across dimensions) or an array
    of per-dimension sensitivities; in the latter case each dimension gets
    its own calibrated ``sigma_i``, which is how the paper's defense
    handles the per-type sensitivity ``max_d F_d[i]``.
    """
    gen = as_generator(rng)
    value = np.asarray(value, dtype=float)
    sens = np.broadcast_to(np.asarray(sensitivity, dtype=float), value.shape)
    if np.any(sens < 0):
        raise PrivacyError("sensitivities must be non-negative")
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise PrivacyError(f"the Gaussian mechanism needs delta in (0, 1), got {delta}")
    scale = math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon
    return value + gen.normal(0.0, 1.0, size=value.shape) * sens * scale


def distributed_gaussian_sigma(
    sensitivity: float, epsilon: float, delta: float, n_shares: int
) -> float:
    """Per-share noise scale for a distributed Gaussian mechanism.

    Each of *n_shares* contributors adds independent ``N(0, sigma_share^2)``
    noise locally; because Gaussian variances add, the *sum* of the shares
    carries ``sigma_share * sqrt(n_shares) == gaussian_sigma(...)`` — the
    centralized mechanism's calibrated noise at the same ``(epsilon,
    delta)``.  The aggregator never holds a less-noisy intermediate.

    Calibrate *n_shares* to the **minimum** number of shares that will be
    summed (the completion quorum, not the enrollment): with ``m >=
    n_shares`` survivors the aggregate noise is ``sigma_share * sqrt(m) >=``
    the centralized sigma, so dropouts down to the quorum can only make
    the release *more* private, never less.
    """
    if n_shares < 1:
        raise PrivacyError(f"n_shares must be at least 1, got {n_shares}")
    return gaussian_sigma(sensitivity, epsilon, delta) / math.sqrt(n_shares)


def laplace_mechanism(
    value: np.ndarray,
    sensitivity: float,
    epsilon: float,
    rng: RngLike = None,
) -> np.ndarray:
    """Add Laplace noise with scale ``sensitivity / epsilon`` (pure eps-DP)."""
    if sensitivity < 0:
        raise PrivacyError(f"sensitivity must be non-negative, got {sensitivity}")
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    gen = as_generator(rng)
    value = np.asarray(value, dtype=float)
    return value + gen.laplace(0.0, sensitivity / epsilon, size=value.shape)
