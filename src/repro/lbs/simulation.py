"""End-to-end simulation of the LBS architecture under attack.

:func:`simulate_sessions` wires the whole paper together: a fleet of
users walks trajectories, each releasing (defended) aggregates to a
curious POI service; the adversary then replays the service's log through
the single-release and trajectory attacks.  The result quantifies, for a
given defense, how many users were re-identified and how precisely —
the same bottom line as the paper's evaluation, but as one library call.

Beyond the paper's perfect world, the simulation optionally runs under an
injected fault model (:mod:`repro.lbs.faults`) with resilience policies
(:mod:`repro.lbs.resilience`): geo-queries fail and time out, releases
drop or arrive corrupted, users retry/degrade/skip — and the
:class:`SessionReport` additionally accounts for every release's fate,
so one can measure how deployment imperfections change exposure.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.attacks.base import Release
from repro.attacks.region import RegionAttack
from repro.attacks.trajectory import DistanceRegressor, PairRelease, TrajectoryAttack
from repro.core.clock import SimulatedClock
from repro.core.errors import DatasetError, ReleaseValidationError
from repro.core.rng import RngLike, as_generator, spawn_rngs
from repro.datasets.trajectory import Trajectory
from repro.defense.base import Defense
from repro.geo.point import Point
from repro.lbs.entities import GeoServiceProvider, MobileUser, POIService
from repro.lbs.faults import FaultInjector, FaultPlan
from repro.lbs.resilience import ResilienceConfig, UserSessionStats
from repro.poi.database import POIDatabase

__all__ = ["SessionReport", "simulate_sessions"]


@dataclass(frozen=True)
class SessionReport:
    """Outcome of one simulated deployment.

    The release-fate counters satisfy ``n_releases_attempted =
    n_releases + n_releases_dropped + n_releases_rejected +
    n_releases_skipped`` (degraded releases are delivered, so they count
    into ``n_releases`` too).  In a fault-free run every attempt is
    delivered and all fault counters are zero.
    """

    n_users: int
    n_releases: int
    n_users_exposed_single: int
    n_users_exposed_linked: int
    defense_name: str
    n_releases_attempted: int = 0
    n_releases_dropped: int = 0
    n_releases_rejected: int = 0
    n_releases_degraded: int = 0
    n_releases_skipped: int = 0
    n_retries: int = 0
    n_breaker_opens: int = 0
    n_linkable_pairs: int = 0

    @property
    def single_exposure_rate(self) -> float:
        """Users re-identified (correctly) from at least one single release."""
        return self.n_users_exposed_single / self.n_users if self.n_users else 0.0

    @property
    def linked_exposure_rate(self) -> float:
        """Exposure when the adversary additionally links successive releases."""
        return self.n_users_exposed_linked / self.n_users if self.n_users else 0.0

    @property
    def delivery_rate(self) -> float:
        """Fraction of attempted releases the service actually logged."""
        if not self.n_releases_attempted:
            return 1.0
        return self.n_releases / self.n_releases_attempted


def _locations_by_time(
    trajectories: Sequence[Trajectory],
) -> dict[int, dict[float, Point]]:
    """Index each user's true location by release timestamp.

    Duplicate timestamps at the *same* location are deduplicated; a
    duplicate at a different location is a corrupt trajectory, rejected
    here with a clear error instead of silently keeping the last sample.
    """
    index: dict[int, dict[float, Point]] = {}
    for trajectory in trajectories:
        per_user = index.setdefault(trajectory.user_id, {})
        for point in trajectory.points:
            known = per_user.get(point.timestamp)
            if known is not None and known != point.location:
                raise DatasetError(
                    f"user {trajectory.user_id} has two samples at "
                    f"t={point.timestamp} with different locations"
                )
            per_user[point.timestamp] = point.location
    return index


def _true_location(
    by_time: dict[int, dict[float, Point]], user_id: int, timestamp: float
) -> Point:
    try:
        return by_time[user_id][timestamp]
    except KeyError:
        raise DatasetError(
            f"release of user {user_id} at t={timestamp} matches no trajectory "
            "sample; the ground-truth index cannot score it"
        ) from None


def simulate_sessions(
    database: POIDatabase,
    trajectories: Sequence[Trajectory],
    radius: float,
    defense: "Defense | None" = None,
    distance_regressor: "DistanceRegressor | None" = None,
    max_link_gap_s: float = 600.0,
    rng: RngLike = None,
    fault_plan: "FaultPlan | None" = None,
    resilience: "ResilienceConfig | None" = None,
    stale_database: "POIDatabase | None" = None,
) -> SessionReport:
    """Run the full architecture and the adversary's post-hoc analysis.

    Parameters
    ----------
    database:
        The city's POI map (shared by the GSP and the adversary).
    trajectories:
        One trajectory per user; each sample triggers one release.
    radius:
        The query range all users use (part of release metadata).
    defense:
        The release mechanism every user applies; ``None`` = undefended.
    distance_regressor:
        Optional pre-trained displacement regressor; enables the linked
        (trajectory-uniqueness) stage of the adversary.
    max_link_gap_s:
        Maximum gap between two releases the adversary tries to link.
    fault_plan:
        Optional :class:`~repro.lbs.faults.FaultPlan`; when given, the GSP
        and POI service run behind a seeded fault injector, and users
        apply the resilience ladder.  The same ``(rng seed, fault_plan)``
        yields a byte-identical report.
    resilience:
        Retry/breaker configuration; defaults to
        :class:`~repro.lbs.resilience.ResilienceConfig` when faults are
        injected, and to none (perfect world) otherwise.
    stale_database:
        The outdated map snapshot served on stale-snapshot faults.
    """
    gen = as_generator(rng)
    clock = SimulatedClock()
    gsp = GeoServiceProvider(database)
    service = POIService(curious=True, n_types=database.n_types)

    user_rngs = spawn_rngs(gen, len(trajectories))
    gsp_front, service_front = gsp, service
    injector = None
    if fault_plan is not None and fault_plan.any_faults:
        # Drawn after the user streams so a fault-free call sequence is
        # byte-compatible with the pre-fault-model simulation.
        injector = FaultInjector(fault_plan, spawn_rngs(gen, 1)[0], clock=clock)
        gsp_front = injector.wrap_gsp(gsp, stale_database)
        service_front = injector.wrap_service(service)
        if resilience is None:
            resilience = ResilienceConfig()
    breaker = resilience.build_breaker(clock) if resilience is not None else None
    retry_policy = resilience.retry if resilience is not None else None

    fleet_stats = UserSessionStats()
    n_dropped = 0
    n_rejected = 0
    for trajectory, user_rng in zip(trajectories, user_rngs):
        user = MobileUser(
            trajectory.user_id,
            gsp_front,
            defense=defense,
            rng=user_rng,
            retry_policy=retry_policy,
            breaker=breaker,
            clock=clock,
        )
        for release in user.walk(trajectory, radius):
            try:
                served = service_front.recommend(release)
            except ReleaseValidationError:
                n_rejected += 1  # corrupted in transit; validation refused it
            else:
                if served is None:
                    n_dropped += 1  # lost in transit; never reached the service
        fleet_stats.add(user.stats)

    # --- the adversary's offline analysis over the captured log ---
    region_attack = RegionAttack(database)
    trajectory_attack = (
        TrajectoryAttack(database, distance_regressor)
        if distance_regressor is not None
        else None
    )
    by_time = _locations_by_time(trajectories)

    exposed_single: set[int] = set()
    exposed_linked: set[int] = set()
    n_releases = 0
    n_linkable_pairs = 0
    for trajectory in trajectories:
        uid = trajectory.user_id
        releases = service.releases_of(uid)
        n_releases += len(releases)
        n_linkable_pairs += sum(
            1
            for first, second in zip(releases, releases[1:])
            if 0 < second.timestamp - first.timestamp <= max_link_gap_s
        )
        for release in releases:
            outcome = region_attack.run(
                Release(np.asarray(release.frequency_vector), radius)
            )
            true_location = _true_location(by_time, uid, release.timestamp)
            if outcome.success and outcome.locates(true_location):
                exposed_single.add(uid)
                exposed_linked.add(uid)
        if trajectory_attack is None or uid in exposed_linked:
            continue
        for first, second in zip(releases, releases[1:]):
            gap = second.timestamp - first.timestamp
            if not 0 < gap <= max_link_gap_s:
                continue
            pair = PairRelease(
                np.asarray(first.frequency_vector),
                np.asarray(second.frequency_vector),
                first.timestamp,
                second.timestamp,
            )
            outcome = trajectory_attack.run(pair, radius)
            true_location = _true_location(by_time, uid, first.timestamp)
            if outcome.enhanced.success and outcome.enhanced.regions[0].disk.contains(
                true_location
            ):
                exposed_linked.add(uid)
                break

    defense_name = defense.name if defense is not None else "NoDefense"
    return SessionReport(
        n_users=len(trajectories),
        n_releases=n_releases,
        n_users_exposed_single=len(exposed_single),
        n_users_exposed_linked=len(exposed_linked),
        defense_name=defense_name,
        n_releases_attempted=fleet_stats.n_attempted,
        n_releases_dropped=n_dropped,
        n_releases_rejected=n_rejected,
        n_releases_degraded=fleet_stats.n_degraded,
        n_releases_skipped=fleet_stats.n_skipped,
        n_retries=fleet_stats.n_retries,
        n_breaker_opens=breaker.n_opens if breaker is not None else 0,
        n_linkable_pairs=n_linkable_pairs,
    )
