"""The ISSUE acceptance battery: every durable writer in the repo
survives a SIGKILL at every step of its commit protocol."""

import json

import pytest

from repro.core.crashsweep import run_sweep, run_sweeps, save_report
from repro.experiments.durability import default_scenarios

EXPECTED_WRITERS = {
    "checkpoint-overwrite",
    "dataset-cache-put",
    "budget-ledger",
    "shard-checkpoint-gc",
    "quarantine-sidecar",
}


def test_battery_covers_every_durable_writer():
    names = {s.name for s in default_scenarios()}
    assert names == EXPECTED_WRITERS


@pytest.mark.parametrize("name", sorted(EXPECTED_WRITERS))
def test_writer_survives_every_crash_point(name):
    scenario = next(s for s in default_scenarios() if s.name == name)
    report = run_sweep(scenario, seed=0)
    assert report.control_ok, report.control_error
    assert report.n_ops >= 2  # the sweep actually enumerated a protocol
    assert report.passed, "\n".join(
        f"{p.mode}@{p.op_index} ({p.op}): {p.error}" for p in report.failures
    )


def test_aggregate_battery_report_round_trips(tmp_path):
    aggregate = run_sweeps(default_scenarios(), seed=0)
    assert aggregate["passed"] is True
    assert aggregate["n_scenarios"] == len(EXPECTED_WRITERS)
    out = save_report(aggregate, tmp_path / "sweep.json")
    assert json.loads(out.read_text()) == aggregate
