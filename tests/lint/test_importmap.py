"""Alias-resolution coverage for ImportMap and ProjectIndex.

Satellite for the dataflow PR: the project-wide analyses lean on
ImportMap resolving relative imports and aliased names to canonical
dotted paths, and on ProjectIndex chasing ``__init__`` re-export
chains back to the defining module.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.callgraph import ProjectIndex
from repro.lint.engine import ImportMap


def imap(source: str, *, module: str = "", is_package: bool = False) -> ImportMap:
    return ImportMap(ast.parse(source), module=module, is_package=is_package)


def resolve(m: ImportMap, dotted: str) -> str | None:
    """Resolve a dotted spelling the way a rule would: as an AST chain."""
    return m.resolve(ast.parse(dotted, mode="eval").body)


class TestAbsoluteImports:
    def test_plain_import(self):
        m = imap("import numpy")
        assert resolve(m, "numpy") == "numpy"

    def test_aliased_import(self):
        m = imap("import numpy as np")
        assert resolve(m, "np") == "numpy"
        assert resolve(m, "numpy") is None

    def test_dotted_import_binds_root(self):
        m = imap("import os.path")
        assert resolve(m, "os") == "os"

    def test_from_import_with_alias(self):
        m = imap("from numpy import random as npr")
        assert resolve(m, "npr") == "numpy.random"

    def test_from_import_symbol_alias(self):
        m = imap("from repro.poi.database import POIDatabase as DB")
        assert resolve(m, "DB") == "repro.poi.database.POIDatabase"

    def test_attribute_resolution(self):
        m = imap("from repro import defense")
        assert resolve(m, "defense.LaplaceMechanism") == (
            "repro.defense.LaplaceMechanism"
        )


class TestRelativeImports:
    def test_sibling_module(self):
        m = imap(
            "from .sibling import helper",
            module="repro.pkg.mod",
        )
        assert resolve(m, "helper") == "repro.pkg.sibling.helper"

    def test_bare_relative_import(self):
        m = imap("from . import sibling", module="repro.pkg.mod")
        assert resolve(m, "sibling") == "repro.pkg.sibling"

    def test_package_init_anchors_at_itself(self):
        m = imap(
            "from .database import POIDatabase",
            module="repro.poi",
            is_package=True,
        )
        assert resolve(m, "POIDatabase") == "repro.poi.database.POIDatabase"

    def test_two_level_ascent(self):
        m = imap(
            "from ..core.rng import make_rng",
            module="repro.serve.handlers",
        )
        assert resolve(m, "make_rng") == "repro.core.rng.make_rng"

    def test_ascent_past_root_is_unresolved(self):
        m = imap("from ...nowhere import thing", module="repro.mod")
        assert resolve(m, "thing") is None

    def test_relative_without_module_context_is_unresolved(self):
        m = imap("from .sibling import helper")
        assert resolve(m, "helper") is None


def build_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        dest = tmp_path / "src" / "repro" / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(source)
    return tmp_path


class TestProjectIndexCanonicalization:
    def test_init_reexport_chain(self, tmp_path):
        """A symbol re-exported through two __init__ hops canonicalizes to
        its defining module."""
        root = build_tree(
            tmp_path,
            {
                "__init__.py": "from repro.inner import Thing\n",
                "inner/__init__.py": "from .impl import Thing\n",
                "inner/impl.py": "class Thing:\n    pass\n",
            },
        )
        files = sorted(root.rglob("*.py"))
        index = ProjectIndex(files)
        assert index.canonicalize("repro.Thing") == "repro.inner.impl.Thing"
        assert index.canonicalize("repro.inner.Thing") == "repro.inner.impl.Thing"
        assert "repro.inner.impl.Thing" in index.classes

    def test_aliased_reexport(self, tmp_path):
        root = build_tree(
            tmp_path,
            {
                "__init__.py": "from .impl import Thing as PublicThing\n",
                "impl.py": "class Thing:\n    pass\n",
            },
        )
        index = ProjectIndex(sorted(root.rglob("*.py")))
        assert index.canonicalize("repro.PublicThing") == "repro.impl.Thing"

    def test_unknown_name_is_left_alone(self, tmp_path):
        root = build_tree(tmp_path, {"impl.py": "class Thing:\n    pass\n"})
        index = ProjectIndex(sorted(root.rglob("*.py")))
        assert index.canonicalize("numpy.ndarray") == "numpy.ndarray"
