"""PL004 negative cases: module-level workers are re-executable."""

from concurrent.futures import ProcessPoolExecutor
from functools import partial


def module_level_worker(shard: int) -> int:
    return shard * 2


def run(shards: list[int]) -> list[int]:
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(module_level_worker, s) for s in shards]
        return [f.result() for f in futures]


def run_with_partial(shards: list[int]) -> list[int]:
    bound = partial(module_level_worker)
    with ProcessPoolExecutor() as pool:
        return list(pool.map(bound, shards))


def plain_builtin_map(shards: list[int]) -> list[int]:
    # builtins.map with a lambda never crosses a process boundary.
    return list(map(lambda s: s * 2, shards))
