"""Round supervision: quorum boundaries, atomic commits, and resume.

The satellite-3 suite: exactly-quorum commits, quorum-1 aborts with the
budget unspent, and a SIGKILLed aggregator resumes the campaign
bit-identically with each round's budget spent exactly once.
"""

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.dp.mechanisms import PrivacyParams
from repro.federated import (
    ClientFaultPlan,
    FederatedConfig,
    round_checkpoint_path,
    run_campaign,
)

CONFIG = FederatedConfig(
    n_clients=100,
    n_rounds=1,
    chunk_clients=64,
    memory_budget_mb=64.0,
    clip_bound=32.0,
    quorum=0.8,
    retries=1,
)

SEED = 11


def crash_plan(n_crashed, *, max_faults=99):
    """Crash exactly the first *n_crashed* clients through every attempt."""
    return ClientFaultPlan(
        seed=5,
        max_faults_per_client=max_faults,
        overrides=tuple((0, c, "crash") for c in range(n_crashed)),
    )


class TestQuorumBoundary:
    def test_exactly_quorum_commits(self, db):
        """quorum_count contributions are enough — not one more."""
        n_crashed = CONFIG.n_clients - CONFIG.quorum_count  # 20
        result = run_campaign(db, CONFIG, SEED, fault_plan=crash_plan(n_crashed))
        (outcome,) = result.rounds
        assert outcome.committed
        assert outcome.ledger.contributed == CONFIG.quorum_count
        assert outcome.ledger.dropped_out == n_crashed
        assert result.accountant.total_epsilon == pytest.approx(CONFIG.epsilon)

    def test_one_below_quorum_aborts_with_budget_unspent(self, db):
        n_crashed = CONFIG.n_clients - CONFIG.quorum_count + 1  # 21
        result = run_campaign(db, CONFIG, SEED, fault_plan=crash_plan(n_crashed))
        (outcome,) = result.rounds
        assert not outcome.committed
        assert "quorum not met" in outcome.abort_reason
        assert outcome.released is None
        assert result.released is None
        assert result.accountant.total_epsilon == 0.0
        assert result.accountant.n_invocations == 0
        outcome.ledger.require_accounted()

    def test_crashed_client_rescued_by_retry(self, db):
        """One crash with one retry budget never costs the round a client."""
        result = run_campaign(
            db, CONFIG, SEED, fault_plan=crash_plan(1, max_faults=1)
        )
        (outcome,) = result.rounds
        assert outcome.ledger.accepted == CONFIG.n_clients
        assert outcome.ledger.dropped_out == 0

    def test_budget_refusal_aborts_without_spending(self, db):
        config = FederatedConfig(
            n_clients=100, n_rounds=3, chunk_clients=64,
            memory_budget_mb=64.0, clip_bound=32.0,
        )
        budget = PrivacyParams(config.epsilon * 2, config.delta * 2)
        result = run_campaign(db, config, SEED, budget=budget)
        assert [r.committed for r in result.rounds] == [True, True, False]
        assert "budget refused" in result.rounds[2].abort_reason
        assert result.accountant.total_epsilon == pytest.approx(2 * config.epsilon)
        # the final release is the last *committed* round's
        assert np.array_equal(result.released, result.rounds[1].released)


class TestDeterminismAndResume:
    def test_campaign_is_a_pure_function_of_its_inputs(self, db):
        a = run_campaign(db, CONFIG, SEED)
        b = run_campaign(db, CONFIG, SEED)
        assert np.array_equal(a.released, b.released)
        assert not np.array_equal(
            a.released, run_campaign(db, CONFIG, SEED + 1).released
        )

    def test_resume_restores_every_round_bit_identically(self, db, tmp_path):
        config = FederatedConfig(
            n_clients=100, n_rounds=3, chunk_clients=64,
            memory_budget_mb=64.0, clip_bound=32.0,
        )
        live = run_campaign(db, config, SEED, out=tmp_path)
        resumed = run_campaign(db, config, SEED, out=tmp_path, resume=True)
        assert resumed.resumed_rounds == config.n_rounds
        for a, b in zip(live.rounds, resumed.rounds):
            assert np.array_equal(a.released, b.released)
            assert a.ledger.as_dict() == b.ledger.as_dict()
        assert resumed.accountant.to_state() == live.accountant.to_state()
        assert resumed.grid.to_state() == live.grid.to_state()

    def test_resume_ignores_checkpoints_from_other_configs(self, db, tmp_path):
        run_campaign(db, CONFIG, SEED, out=tmp_path)
        other = FederatedConfig(
            n_clients=100, n_rounds=1, chunk_clients=64,
            memory_budget_mb=64.0, clip_bound=16.0,  # different fingerprint
        )
        resumed = run_campaign(db, other, SEED, out=tmp_path, resume=True)
        assert resumed.resumed_rounds == 0

    def test_resume_ignores_checkpoints_from_other_fault_plans(self, db, tmp_path):
        run_campaign(db, CONFIG, SEED, out=tmp_path)
        resumed = run_campaign(
            db, CONFIG, SEED, out=tmp_path, resume=True,
            fault_plan=crash_plan(1),
        )
        assert resumed.resumed_rounds == 0

    def test_resume_without_out_is_a_config_error(self, db):
        with pytest.raises(ConfigError):
            run_campaign(db, CONFIG, SEED, resume=True)

    def test_torn_checkpoint_is_rerun(self, db, tmp_path):
        run_campaign(db, CONFIG, SEED, out=tmp_path)
        round_checkpoint_path(tmp_path, 0).write_text('{"torn":')  # corrupt half-write
        with pytest.raises(json.JSONDecodeError):
            json.loads(round_checkpoint_path(tmp_path, 0).read_text())
        # a torn file would never exist under atomic replace; even so, guard:
        round_checkpoint_path(tmp_path, 0).write_text(json.dumps({"half": True}))
        resumed = run_campaign(db, CONFIG, SEED, out=tmp_path, resume=True)
        assert resumed.resumed_rounds == 0
        assert resumed.rounds[0].committed


class TestParentSigkill:
    def test_sigkilled_campaign_resumes_identically(self, db, tmp_path):
        """SIGKILL the aggregator mid-campaign; resume == uninterrupted.

        The subprocess runs a 60-round campaign; the parent waits for the
        first checkpoint and then kills it cold, exactly like a preempted
        node.  The resumed campaign must restore the checkpointed prefix,
        re-run the torn suffix, and land on the same releases with each
        round's budget spent exactly once.
        """
        config = FederatedConfig(
            n_clients=200, n_rounds=60, chunk_clients=128,
            memory_budget_mb=64.0, clip_bound=32.0, delta=0.01,
            grid_nx=4, grid_ny=4, max_split_depth=0,
        )
        out = tmp_path / "killed"
        script = f"""
import sys
sys.path.insert(0, {str(Path(__file__).resolve().parents[2] / "src")!r})
from repro.federated import FederatedConfig, run_campaign
from repro.poi.cities import small_city

config = FederatedConfig(
    n_clients=200, n_rounds=60, chunk_clients=128,
    memory_budget_mb=64.0, clip_bound=32.0, delta=0.01,
    grid_nx=4, grid_ny=4, max_split_depth=0,
)
run_campaign(small_city(seed=7).database, config, {SEED}, out={str(out)!r})
"""
        proc = subprocess.Popen([sys.executable, "-c", script])
        first = round_checkpoint_path(out, 0)
        deadline = time.monotonic() + 60
        try:
            while not first.exists():
                assert time.monotonic() < deadline, "round 0 never checkpointed"
                if proc.poll() is not None:
                    pytest.fail("campaign exited before it could be killed")
                time.sleep(0.005)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        resumed = run_campaign(db, config, SEED, out=out, resume=True)
        uninterrupted = run_campaign(db, config, SEED)

        assert resumed.resumed_rounds >= 1  # the kill landed after round 0
        assert resumed.n_committed == config.n_rounds
        for a, b in zip(resumed.rounds, uninterrupted.rounds):
            assert np.array_equal(a.released, b.released)
        # exactly one spend per committed round — a torn round re-ran from
        # the last finished round's accountant, never double-charging
        assert resumed.accountant.total_epsilon == pytest.approx(
            config.n_rounds * config.epsilon
        )
        assert resumed.accountant.n_invocations == config.n_rounds


class TestCheckpointRetention:
    RETAIN_CONFIG = FederatedConfig(
        n_clients=100, n_rounds=4, chunk_clients=64,
        memory_budget_mb=64.0, clip_bound=32.0,
    )

    def test_keep_last_bounds_the_checkpoint_history(self, db, tmp_path):
        run_campaign(
            db, self.RETAIN_CONFIG, SEED, out=tmp_path, checkpoint_keep_last=2
        )
        kept = sorted(round_checkpoint_path(tmp_path, 0).parent.glob("round-*.json"))
        assert [p.name for p in kept] == ["round-0002.json", "round-0003.json"]

    def test_resume_from_pruned_history_is_bit_identical(self, db, tmp_path):
        """Pruning trades recompute for disk, never correctness: each
        checkpoint carries cumulative accountant/grid state, so resume
        restores the newest and re-runs only what was pruned."""
        live = run_campaign(db, self.RETAIN_CONFIG, SEED)
        run_campaign(
            db, self.RETAIN_CONFIG, SEED, out=tmp_path, checkpoint_keep_last=1
        )
        resumed = run_campaign(
            db, self.RETAIN_CONFIG, SEED, out=tmp_path, resume=True
        )
        assert resumed.resumed_rounds >= 1
        assert np.array_equal(resumed.released, live.released)
        assert resumed.accountant.to_state() == live.accountant.to_state()
        assert resumed.grid.to_state() == live.grid.to_state()

    def test_keep_none_is_refused(self, db, tmp_path):
        with pytest.raises(ConfigError):
            run_campaign(
                db, self.RETAIN_CONFIG, SEED, out=tmp_path, checkpoint_keep_last=0
            )
