"""PL002 positive cases (linted as a non-defense library module)."""

import numpy as np

from repro.dp import PlanarLaplace
from repro.dp.mechanisms import gaussian_mechanism, laplace_mechanism


def sidestep_the_accountant(freq: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    noisy = gaussian_mechanism(freq, 1.0, 0.5, 0.2, rng)  # PL002
    return laplace_mechanism(noisy, 1.0, 0.5, rng)  # PL002


def raw_geo_mechanism() -> object:
    return PlanarLaplace(0.1)  # PL002
