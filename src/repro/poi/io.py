"""POI database persistence (CSV for POIs, JSON for metadata).

Lets a generated city be exported, inspected, and reloaded bit-exactly —
and lets users plug in their own real POI extracts in the same format:
a CSV with columns ``poi_id,x,y,type`` plus a JSON sidecar carrying the
vocabulary and bounds.

Both directions are hardened: :func:`save_database` writes atomically
(temp-file + rename, so a crash mid-write never leaves a half-written
city on disk), and :func:`load_database` is a thin wrapper over the
validating streaming loader in :mod:`repro.ingest.loaders` — malformed
rows surface as typed :class:`~repro.core.errors.IngestError` subtypes
carrying the file path and 1-based row number, never as a raw
``ValueError`` or ``csv.Error`` from deep in the stack.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.ingest.atomic import atomic_write_text, atomic_writer
from repro.ingest.loaders import POI_CSV_HEADER, ingest_poi_csv
from repro.ingest.report import IngestReport, record_ingest_report
from repro.poi.database import POIDatabase

__all__ = ["save_database", "load_database"]

_META_SUFFIX = ".meta.json"


def save_database(db: POIDatabase, csv_path: "str | Path") -> None:
    """Write *db* to ``csv_path`` and its metadata sidecar, atomically.

    Each file is written to a temp name and renamed into place, matching
    the checkpoint discipline in :mod:`repro.experiments.runner`: readers
    never observe a torn CSV or sidecar, whatever kills the writer.
    """
    csv_path = Path(csv_path)
    with atomic_writer(csv_path, "w") as fh:
        writer = csv.writer(fh)
        writer.writerow(POI_CSV_HEADER)
        vocab = db.vocabulary
        for i in range(len(db)):
            loc = db.location_of(i)
            writer.writerow([i, f"{loc.x:.3f}", f"{loc.y:.3f}", vocab.name_of(db.type_of(i))])
    meta = {
        "n_pois": len(db),
        "types": list(db.vocabulary.names),
        "bounds": [db.bounds.min_x, db.bounds.min_y, db.bounds.max_x, db.bounds.max_y],
    }
    atomic_write_text(
        csv_path.with_name(csv_path.name + _META_SUFFIX), json.dumps(meta, indent=2)
    )


def load_database(
    csv_path: "str | Path",
    *,
    policy: str = "strict",
    quarantine_path: "str | Path | None" = None,
    cache_dir: "str | Path | None" = None,
) -> POIDatabase:
    """Load a database written by :func:`save_database`.

    Every record is validated under *policy* (``strict`` / ``repair`` /
    ``quarantine``, see :mod:`repro.ingest`).  With *cache_dir* set, the
    parsed database is served from (and committed to) the checksummed
    atomic :class:`~repro.ingest.cache.DatasetCache` keyed on the CSV's
    content digest.  The per-run :class:`~repro.ingest.report.IngestReport`
    flows to the provenance collector either way.
    """
    csv_path = Path(csv_path)
    if cache_dir is None:
        db, _report = ingest_poi_csv(
            csv_path, policy=policy, quarantine_path=quarantine_path
        )
        return db

    # Imported here, not at module top: repro.ingest's package init pulls
    # in the cache, whose POIDatabase import runs this module — a cycle
    # whenever repro.ingest.* is the first thing a process imports.
    from repro.ingest.cache import DatasetCache

    cache = DatasetCache(cache_dir)
    parse_reports: list[IngestReport] = []

    def build() -> POIDatabase:
        db, report = ingest_poi_csv(
            csv_path, policy=policy, quarantine_path=quarantine_path
        )
        parse_reports.append(report)
        return db

    db, status = cache.load_or_build(csv_path, build)
    if parse_reports:
        # The report is already with the collector; stamping the cache
        # status mutates the same object it holds.
        parse_reports[0].cache = status
    else:
        # Cache hit: the parse (and its report) was skipped entirely;
        # account for the served records so provenance still covers
        # this load.
        report = IngestReport(
            path=str(csv_path),
            format="poi-csv",
            policy=policy,
            n_records=len(db),
            counts={"ok": len(db), "repaired": 0, "quarantined": 0},
            cache="hit",
        )
        record_ingest_report(report)
    return db
