"""Tests for the adversary map-degradation analysis."""

import numpy as np
import pytest

from repro.analysis.map_noise import attack_with_degraded_map, degrade_map
from repro.core.errors import ConfigError
from repro.core.rng import derive_rng


class TestDegradeMap:
    def test_no_degradation_is_equivalent(self, db):
        copy = degrade_map(db, rng=derive_rng(1, "mn"))
        assert len(copy) == len(db)
        np.testing.assert_array_equal(copy.positions, db.positions)
        np.testing.assert_array_equal(copy.type_ids, db.type_ids)

    def test_drop_fraction(self, db):
        copy = degrade_map(db, drop_fraction=0.5, rng=derive_rng(2, "mn"))
        assert 0.35 * len(db) < len(copy) < 0.65 * len(db)

    def test_move_sigma_displaces(self, db):
        copy = degrade_map(db, move_sigma_m=100.0, rng=derive_rng(3, "mn"))
        assert len(copy) == len(db)
        displacement = np.hypot(
            *(copy.positions - db.positions).T
        )
        assert displacement.mean() == pytest.approx(100.0 * np.sqrt(np.pi / 2), rel=0.1)

    def test_positions_stay_in_bounds(self, db):
        copy = degrade_map(db, move_sigma_m=5_000.0, rng=derive_rng(4, "mn"))
        b = db.bounds
        assert copy.positions[:, 0].min() >= b.min_x
        assert copy.positions[:, 0].max() <= b.max_x

    def test_vocabulary_shared(self, db):
        copy = degrade_map(db, drop_fraction=0.2, rng=derive_rng(5, "mn"))
        assert copy.vocabulary is db.vocabulary

    def test_validation(self, db):
        with pytest.raises(ConfigError):
            degrade_map(db, drop_fraction=1.0)
        with pytest.raises(ConfigError):
            degrade_map(db, move_sigma_m=-1.0)


class TestAttackWithDegradedMap:
    @pytest.fixture(scope="class")
    def targets(self, city):
        rng = derive_rng(6, "mn-targets")
        return [city.interior(900.0).sample_point(rng) for _ in range(80)]

    def test_perfect_map_matches_direct_attack(self, db, targets):
        from repro.attacks.metrics import evaluate_region_attack

        result = attack_with_degraded_map(db, targets, 900.0, rng=derive_rng(7, "mn"))
        direct = evaluate_region_attack(db, targets, 900.0)
        assert result.n_success == direct.n_success
        assert result.n_correct == direct.n_correct

    def test_degradation_reduces_correct_rate(self, db, targets):
        clean = attack_with_degraded_map(db, targets, 900.0, rng=derive_rng(8, "a"))
        noisy = attack_with_degraded_map(
            db, targets, 900.0, drop_fraction=0.4, rng=derive_rng(8, "b")
        )
        assert noisy.n_correct <= clean.n_correct

    def test_rates_well_formed(self, db, targets):
        result = attack_with_degraded_map(
            db, targets, 900.0, drop_fraction=0.2, move_sigma_m=50.0, rng=derive_rng(9, "mn")
        )
        assert 0.0 <= result.correct_rate <= result.success_rate <= 1.0
