"""A from-scratch 2-d kd-tree for nearest-neighbour queries.

The grid index answers range queries; the kd-tree complements it with
nearest-neighbour and k-NN queries, used e.g. to snap perturbed locations
back onto the road/POI fabric and by the trajectory synthesizer to find
hotspot waypoints.  Implemented array-based (no per-node objects) so that
construction of city-scale trees stays fast.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.errors import GeometryError
from repro.geo.point import Point

__all__ = ["KDTree"]

_LEAF_SIZE = 16


class KDTree:
    """Static 2-d kd-tree over an ``(n, 2)`` coordinate array."""

    def __init__(self, xy: np.ndarray) -> None:
        xy = np.asarray(xy, dtype=float)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise GeometryError(f"expected (n, 2) coordinates, got shape {xy.shape}")
        self._xy = xy
        n = len(xy)
        self._idx = np.arange(n, dtype=np.intp)
        # Flat node arrays: each node stores its index range [lo, hi), split
        # axis, split value, and children (-1 for leaves).
        self._nodes: list[tuple[int, int, int, float, int, int]] = []
        if n:
            self._build(0, n, 0)

    def _build(self, lo: int, hi: int, axis: int) -> int:
        node_id = len(self._nodes)
        self._nodes.append((lo, hi, -1, 0.0, -1, -1))
        if hi - lo <= _LEAF_SIZE:
            return node_id
        seg = self._idx[lo:hi]
        vals = self._xy[seg, axis]
        mid = (hi - lo) // 2
        part = np.argpartition(vals, mid)
        self._idx[lo:hi] = seg[part]
        split_val = float(self._xy[self._idx[lo + mid], axis])
        left = self._build(lo, lo + mid, 1 - axis)
        right = self._build(lo + mid, hi, 1 - axis)
        self._nodes[node_id] = (lo, hi, axis, split_val, left, right)
        return node_id

    @property
    def n_points(self) -> int:
        return len(self._xy)

    def nearest(self, query: Point) -> tuple[int, float]:
        """Return ``(index, distance)`` of the nearest point to *query*."""
        idx, dist = self.k_nearest(query, 1)
        return int(idx[0]), float(dist[0])

    def k_nearest(self, query: Point, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Return the *k* nearest points as ``(indices, distances)`` arrays.

        Results are sorted by increasing distance.  If fewer than *k* points
        exist, all points are returned.
        """
        if k <= 0:
            raise GeometryError(f"k must be positive, got {k}")
        if not len(self._xy):
            return np.empty(0, dtype=np.intp), np.empty(0)
        k = min(k, len(self._xy))
        qx, qy = query.x, query.y
        # Max-heap of the best k found so far, as (-dist2, index).
        best: list[tuple[float, int]] = []

        def visit(node_id: int) -> None:
            lo, hi, axis, split_val, left, right = self._nodes[node_id]
            if left == -1:  # leaf
                seg = self._idx[lo:hi]
                dx = self._xy[seg, 0] - qx
                dy = self._xy[seg, 1] - qy
                d2s = dx * dx + dy * dy
                for d2, i in zip(d2s, seg):
                    if len(best) < k:
                        heapq.heappush(best, (-float(d2), int(i)))
                    elif d2 < -best[0][0]:
                        heapq.heapreplace(best, (-float(d2), int(i)))
                return
            qv = qx if axis == 0 else qy
            near, far = (left, right) if qv <= split_val else (right, left)
            visit(near)
            gap = qv - split_val
            if len(best) < k or gap * gap < -best[0][0]:
                visit(far)

        visit(0)
        order = sorted(best, key=lambda t: -t[0])
        indices = np.array([i for _, i in order], dtype=np.intp)
        dists = np.sqrt(np.array([-d2 for d2, _ in order]))
        return indices, dists
