"""Per-figure terminal charts: render an ExperimentResult like its figure.

``poiagg run figN --chart`` appends these after the row table.  Each
renderer picks the series the paper plots; experiments without a natural
chart (the datasets table) simply have no entry.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable

from repro.experiments.charts import line_chart
from repro.experiments.results import ExperimentResult

__all__ = ["FIGURE_CHARTS", "render_chart"]


def _series(result: ExperimentResult, x: str, y: str, by: tuple[str, ...]) -> dict:
    """Group rows into named (x, y) series keyed by the *by* columns."""
    grouped: dict[str, list[tuple[float, float]]] = defaultdict(list)
    for row in result.rows:
        if row.get(x) is None or row.get(y) is None:
            continue
        name = ", ".join(f"{k}={row.get(k)}" for k in by)
        grouped[name].append((float(row[x]), float(row[y])))
    return {name: sorted(pts) for name, pts in grouped.items()}


def _chart_fig2(result: ExperimentResult) -> str:
    return line_chart(
        _series(result, "r_km", "mean_accuracy", ("city",)), y_label="model accuracy"
    )


def _chart_fig3(result: ExperimentResult) -> str:
    charts = []
    for city in sorted({row["city"] for row in result.rows}):
        sub = ExperimentResult(result.experiment_id, result.title, rows=result.filter(city=city))
        charts.append(
            f"--- {city} ---\n"
            + line_chart(_series(sub, "r_km", "success_rate", ("variant",)), y_label="success rate")
        )
    return "\n".join(charts)


def _chart_fig4(result: ExperimentResult) -> str:
    charts = []
    # The epsilon=None rows are the undefended baseline; label them.
    rows = [
        {**row, "epsilon": row["epsilon"] if row.get("epsilon") is not None else "off"}
        for row in result.rows
    ]
    for dataset in sorted({row["dataset"] for row in rows}):
        sub = ExperimentResult(
            result.experiment_id,
            result.title,
            rows=[r for r in rows if r["dataset"] == dataset],
        )
        charts.append(
            f"--- {dataset} ---\n"
            + line_chart(
                _series(sub, "r_km", "correct_rate", ("epsilon",)), y_label="correct rate"
            )
        )
    return "\n".join(charts)


def _chart_fig5(result: ExperimentResult) -> str:
    charts = []
    for dataset in sorted({row["dataset"] for row in result.rows}):
        sub = ExperimentResult(result.experiment_id, result.title, rows=result.filter(dataset=dataset))
        charts.append(
            f"--- {dataset} ---\n"
            + line_chart(_series(sub, "k", "correct_rate", ("r_km",)), y_label="correct rate")
        )
    return "\n".join(charts)


def _chart_fig6(result: ExperimentResult) -> str:
    rows = [row for row in result.rows if row.get("n_success")]
    sub = ExperimentResult(result.experiment_id, result.title, rows=rows)
    return line_chart(
        _series(sub, "r_km", "d50_km2", ("dataset",)), y_label="median area km^2"
    )


def _chart_fig7(result: ExperimentResult) -> str:
    return line_chart(
        _series(result, "n_aux", "mean_area_km2", ("dataset",)), y_label="mean area km^2"
    )


def _chart_fig8(result: ExperimentResult) -> str:
    rows = [row for row in result.rows if "single_success" in row]
    sub = ExperimentResult(result.experiment_id, result.title, rows=rows)
    single = _series(sub, "r_km", "single_success", ())
    enhanced = _series(sub, "r_km", "enhanced_success", ())
    return line_chart(
        {"single": single.get("", []), "two-release": enhanced.get("", [])},
        y_label="success rate",
    )


def _chart_fig9_10(result: ExperimentResult) -> str:
    charts = []
    for dataset in sorted({row["dataset"] for row in result.rows}):
        sub = ExperimentResult(result.experiment_id, result.title, rows=result.filter(dataset=dataset))
        charts.append(
            f"--- {dataset}: defense (Fig. 9) ---\n"
            + line_chart(_series(sub, "beta", "success_rate", ("r_km",)), y_label="success rate")
        )
        charts.append(
            f"--- {dataset}: utility (Fig. 10) ---\n"
            + line_chart(_series(sub, "beta", "jaccard", ("r_km",)), y_label="Top-10 Jaccard")
        )
    return "\n".join(charts)


def _chart_fig11_12(result: ExperimentResult) -> str:
    charts = []
    for dataset in sorted({row["dataset"] for row in result.rows}):
        sub = ExperimentResult(result.experiment_id, result.title, rows=result.filter(dataset=dataset))
        charts.append(
            f"--- {dataset}: defense (Fig. 11) ---\n"
            + line_chart(_series(sub, "epsilon", "success_rate", ("beta",)), y_label="success rate")
        )
        charts.append(
            f"--- {dataset}: utility (Fig. 12) ---\n"
            + line_chart(_series(sub, "epsilon", "jaccard", ("beta",)), y_label="Top-10 Jaccard")
        )
    return "\n".join(charts)


FIGURE_CHARTS: dict[str, Callable[[ExperimentResult], str]] = {
    "fig2": _chart_fig2,
    "fig3": _chart_fig3,
    "fig4": _chart_fig4,
    "fig5": _chart_fig5,
    "fig6": _chart_fig6,
    "fig7": _chart_fig7,
    "fig8": _chart_fig8,
    "fig9_10": _chart_fig9_10,
    "fig11_12": _chart_fig11_12,
}


def render_chart(result: ExperimentResult) -> "str | None":
    """Chart for a result, or ``None`` when the experiment has no chart."""
    renderer = FIGURE_CHARTS.get(result.experiment_id)
    if renderer is None:
        return None
    return renderer(result)
