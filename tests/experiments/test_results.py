"""Tests for experiment result records and rendering."""

import pytest

from repro.experiments.results import ExperimentResult, render_table


class TestExperimentResult:
    def test_add_and_column(self):
        result = ExperimentResult("x", "t")
        result.add_row(a=1, b=2.0)
        result.add_row(a=3)
        assert result.column("a") == [1, 3]
        assert result.column("b") == [2.0, None]

    def test_filter(self):
        result = ExperimentResult("x", "t")
        result.add_row(city="bj", r=1, v=0.5)
        result.add_row(city="nyc", r=1, v=0.6)
        result.add_row(city="bj", r=2, v=0.7)
        assert len(result.filter(city="bj")) == 2
        assert result.filter(city="bj", r=2)[0]["v"] == 0.7

    def test_json_roundtrip(self, tmp_path):
        result = ExperimentResult("fig9", "demo", config={"n": 3}, notes="hi")
        result.add_row(x=1, y=0.25)
        path = result.save(tmp_path / "out" / "fig9.json")
        loaded = ExperimentResult.load(path)
        assert loaded.experiment_id == "fig9"
        assert loaded.config == {"n": 3}
        assert loaded.rows == [{"x": 1, "y": 0.25}]
        assert loaded.notes == "hi"

    def test_render_contains_title_and_rows(self):
        result = ExperimentResult("fig1", "Demo title", config={"k": 2})
        result.add_row(metric=0.123456)
        text = result.render()
        assert "fig1" in text and "Demo title" in text
        assert "k=2" in text
        assert "0.1235" in text


class TestRenderTable:
    def test_empty(self):
        assert render_table([]) == "(no rows)"

    def test_union_of_columns(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_alignment(self):
        text = render_table([{"col": 1}, {"col": 100}])
        lines = text.splitlines()
        assert len({len(line) for line in lines if line}) == 1  # equal widths

    def test_float_formatting(self):
        text = render_table([{"v": 0.123456789}])
        assert "0.1235" in text
