"""Compliant PL012 patterns: a failed spend stops the release.

Lints as repro.defense.fixture.  Re-raising, returning the refusal,
and the no-try ``try_spend`` guard (BudgetedDefense's idiom) are all
sound: the exception edge cannot reach the mechanism call.
"""


class GuardedRelease:
    def __init__(self, accountant, defense, fallback):
        self._accountant = accountant
        self._defense = defense
        self._fallback = fallback

    def release(self, row, rng):
        try:
            self._accountant.spend(1.0, 1e-6)
        except Exception:
            raise  # the refusal propagates: no unmetered release
        return self._defense.apply(row, rng)

    def release_with_refusal(self, row, rng):
        try:
            self._accountant.spend(1.0, 1e-6)
        except Exception:
            return None  # the except path exits before the release
        return self._defense.apply(row, rng)

    def release_checked(self, row, rng):
        if not self._accountant.try_spend(1.0, 1e-6):
            return self._fallback.release(row, rng)
        return self._defense.apply(row, rng)
