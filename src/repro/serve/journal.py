"""Append-only JSONL heartbeat/audit journal for the serve layer.

Mirrors the PR 3 supervisor journal: one line per event, flushed on
write, so an operator tailing the file can watch admission decisions,
terminal fates, crashes, and periodic heartbeats in real time — and a
post-mortem can reconstruct the fate of every accepted request.

Append-only event logs are incremental by design and cannot be
committed by rename (the PL007 rationale explicitly scopes them out);
durability-critical state lives in the ledger, not here.  Two
robustness properties the journal does own:

* **bounded disk** — when the active file outgrows ``max_bytes`` it is
  rotated (atomic rename to ``<name>.1``, older generations shifted up,
  generations beyond ``keep_rotated`` unlinked), so sustained traffic
  cannot grow the journal without bound;
* **graceful degradation** — telemetry must never take the service
  down: a write refused by the disk (``ENOSPC``/``EIO``) disables the
  journal and records why, instead of propagating into the request
  path.  Durable accounting failures are the ledger's job to escalate.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any

from repro.core.clock import Clock
from repro.core.vfs import VFSFile, get_vfs

__all__ = ["ServeJournal"]


class ServeJournal:
    """Thread-safe JSONL event sink; a ``None`` path makes it a no-op."""

    def __init__(
        self,
        path: "str | Path | None",
        clock: Clock,
        *,
        max_bytes: "int | None" = None,
        keep_rotated: int = 3,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._handle: "VFSFile | None" = None
        self._path: "Path | None" = None
        self._max_bytes = max_bytes
        self._keep_rotated = max(1, keep_rotated)
        self._offset = 0
        self.disabled_reason: "str | None" = None
        if path is not None:
            self._path = Path(path)
            vfs = get_vfs()
            vfs.mkdir(self._path.parent, parents=True, exist_ok=True)
            self._handle = vfs.open(self._path, "a")
            try:
                self._offset = self._path.stat().st_size
            except OSError:
                self._offset = 0

    @property
    def enabled(self) -> bool:
        return self._handle is not None

    def event(self, kind: str, **fields: Any) -> None:
        if self._handle is None:
            return
        record = {"t": self._clock.now(), "event": kind, **fields}
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._handle is None:
                return
            try:
                self._handle.write(line + "\n")
            except OSError as exc:
                # Telemetry degrades, the service does not: disable the
                # journal rather than poison the request path.
                self._disable_locked(f"journal write refused: {exc}")
                return
            # Count on-disk bytes, not characters: non-ASCII fields
            # would otherwise make rotation trigger later than
            # ``max_bytes`` promises.
            self._offset += len((line + "\n").encode("utf-8"))
            self._maybe_rotate_locked()

    def _maybe_rotate_locked(self) -> None:
        if (
            self._max_bytes is None
            or self._path is None
            or self._handle is None
            or self._offset < self._max_bytes
        ):
            return
        vfs = get_vfs()
        try:
            self._handle.close()
            # Shift generations up: .(k-1) -> .k, ..., active -> .1;
            # then drop anything beyond the retention horizon.
            for gen in range(self._keep_rotated, 1, -1):
                older = self._generation(gen - 1)
                if older.exists():
                    vfs.replace(older, self._generation(gen))
            vfs.replace(self._path, self._generation(1))
            for extra in self._path.parent.glob(self._path.name + ".*"):
                suffix = extra.suffix[1:]
                if suffix.isdigit() and int(suffix) > self._keep_rotated:
                    vfs.unlink(extra, missing_ok=True)
            self._handle = vfs.open(self._path, "a")
            self._offset = 0
        except OSError as exc:
            self._disable_locked(f"journal rotation refused: {exc}")

    def _generation(self, k: int) -> Path:
        assert self._path is not None
        return self._path.with_name(f"{self._path.name}.{k}")

    def _disable_locked(self, reason: str) -> None:
        self.disabled_reason = reason
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
