"""PL005 negative/suppressed cases."""

from repro.core.clock import Clock, SimulatedClock


def clock_based_timing(clock: Clock) -> float:
    # The Clock abstraction is the sanctioned time source.
    start = clock.now()
    clock.sleep(1.0)
    return clock.now() - start


def simulated_default() -> float:
    return SimulatedClock(start=100.0).now()


def telemetry_with_justification(rows: list[dict]) -> None:
    import time

    # Provenance-only telemetry, never checkpointed with the payload.
    rows.append({"heartbeat": time.time()})  # poiagg: disable=PL005
