"""Bench: Fig. 4 — planar Laplace (geo-indistinguishability).

Paper shape: with eps = 0.1 per 100 m, mitigation is strong at r = 0.5 km
(~75-81%) and weak at r = 4 km (~9-12%); eps = 1.0 barely mitigates.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig4_geoind import run_fig4


def test_bench_fig4(benchmark, bench_scale):
    result = run_once(benchmark, lambda: run_fig4(bench_scale))
    print()
    print(result.render())

    for dataset in ("bj_tdrive", "bj_random", "nyc_foursquare", "nyc_random"):
        rows_strong = result.filter(dataset=dataset, epsilon=0.1)
        mit = {row["r_km"]: row["mitigation"] for row in rows_strong}
        # Location noise is outrun by large radii: mitigation shrinks with r.
        assert mit[0.5] > mit[4.0]
        assert mit[0.5] > 0.5  # strong protection at the smallest radius

        # eps = 1.0 mitigates (much) less than eps = 0.1 on average.
        weak = np.mean([r["mitigation"] for r in result.filter(dataset=dataset, epsilon=1.0)])
        strong = np.mean([r["mitigation"] for r in rows_strong])
        assert weak < strong
