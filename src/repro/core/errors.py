"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate normally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class GeometryError(ReproError):
    """A geometric operation received degenerate or out-of-domain input."""


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or validated."""


class AttackError(ReproError):
    """An attack was invoked with inputs it cannot process."""


class DefenseError(ReproError):
    """A defense mechanism was invoked with invalid parameters."""


class PrivacyError(ReproError):
    """A differential-privacy parameter or mechanism invariant is violated."""


class NotFittedError(ReproError):
    """A model was used before :meth:`fit` was called."""


class OptimizationError(ReproError):
    """The perturbation optimizer could not produce a feasible solution."""
