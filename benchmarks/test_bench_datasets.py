"""Bench: the dataset statistics table (paper §II-E)."""

from benchmarks.conftest import run_once
from repro.experiments.datasets_table import run_datasets_table


def test_bench_datasets(benchmark, bench_scale):
    result = run_once(benchmark, lambda: run_datasets_table(bench_scale))
    print()
    print(result.render())

    bj = result.filter(dataset="beijing POIs")[0]
    nyc = result.filter(dataset="nyc POIs")[0]
    # Exact POI/type counts from the paper.
    assert bj["n_items"] == 10_249 and bj["n_types"] == 177
    assert nyc["n_items"] == 30_056 and nyc["n_types"] == 272
    # Rare-type tails calibrated to the sanitization counts (90 / 138).
    assert abs(bj["rare_types_le10"] - 90) <= 3
    assert abs(nyc["rare_types_le10"] - 138) <= 3
