"""Federated vs. centralized release under the region attack (extension).

The paper's defense adds centralized Gaussian noise to each released
aggregate; the federated backend produces the same per-cell aggregates
with the noise assembled from per-client shares (quorum-calibrated so
the share sum is at least the centralized mechanism's noise at matched
``(epsilon, delta)``).  This runner releases one city heatmap both ways
from the *same* clipped client contributions and attacks every occupied
cell's row with the batched region attack:

* ``none`` — the un-noised cell aggregates (the attack's ceiling),
* ``centralized`` — aggregate + one ``N(0, sigma_central)`` draw,
* ``federated`` — the committed round of a dropout-tolerant campaign.

The headline comparison is the federated-minus-centralized success-rate
delta at matched parameters: the federated release carries at least as
much noise (every survivor above the quorum adds a share), so the delta
should be at most about zero, at equal or better robustness (the
campaign tolerated dropouts and clipped outliers while producing it).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Release
from repro.attacks.region import RegionAttack
from repro.core.rng import derive_rng
from repro.dp.mechanisms import gaussian_sigma
from repro.experiments.results import ExperimentResult
from repro.experiments.scale import SCALES, ExperimentScale
from repro.federated.clients import ClientPopulation
from repro.federated.config import FederatedConfig
from repro.federated.merger import AdaptiveGrid
from repro.federated.round import run_campaign
from repro.poi.cities import CITY_BUILDERS

__all__ = ["run_federated_comparison"]


def _true_cell_sums(
    population: ClientPopulation, grid: AdaptiveGrid
) -> np.ndarray:
    """The un-noised clipped per-cell aggregate, streamed chunk by chunk."""
    totals = np.zeros((grid.n_cells, population.n_types), dtype=np.float64)
    for chunk in range(population.n_chunks):
        cells = grid.locate_batch(population.locations(chunk))
        np.add.at(totals, cells, population.payloads(chunk))
    return totals


def run_federated_comparison(
    scale: ExperimentScale = SCALES["ci"],
    city: str = "small",
    epsilon: float = 1.0,
    delta: float = 0.2,
    clip_bound: float = 64.0,
) -> ExperimentResult:
    """Attack the same heatmap released federated vs. centralized.

    One committed federated round and one centralized Gaussian release
    are built from identical clipped contributions at matched
    ``(epsilon, delta)``; every occupied cell row is attacked and the
    per-variant success rate and mean L1 utility error are recorded.
    """
    built = CITY_BUILDERS[city](scale.seed)
    db = built.database
    config = FederatedConfig(
        n_clients=max(200, scale.n_users * 10),
        n_rounds=1,
        epsilon=epsilon,
        delta=delta,
        clip_bound=clip_bound,
    )
    campaign = run_campaign(db, config, scale.seed)
    outcome = campaign.rounds[0]
    if not outcome.committed or outcome.released is None:
        raise AssertionError(
            f"healthy campaign must commit its round: {outcome.abort_reason}"
        )
    assert campaign.grid is not None
    grid = campaign.grid

    population = ClientPopulation(db, config, scale.seed)
    true_sums = _true_cell_sums(population, grid)
    sigma_central = gaussian_sigma(clip_bound, epsilon, delta)
    rng = derive_rng(scale.seed, "federated-comparison", "central")
    central = np.maximum(
        true_sums + rng.normal(0.0, sigma_central, size=true_sums.shape), 0.0
    )

    occupied = np.flatnonzero(true_sums.sum(axis=1) > 0)
    attack = RegionAttack(db)
    result = ExperimentResult(
        experiment_id="federated",
        title="Federated vs. centralized release under the region attack",
        config={
            "scale": scale.name,
            "city": city,
            "n_clients": config.n_clients,
            "epsilon": epsilon,
            "delta": delta,
            "clip_bound": clip_bound,
            "quorum_count": config.quorum_count,
            "share_sigma": config.share_sigma(),
            "central_sigma": sigma_central,
            "n_cells": grid.n_cells,
            "n_occupied_cells": int(len(occupied)),
        },
        notes=(
            "Matched (epsilon, delta): the federated release carries at "
            "least the centralized mechanism's noise, so its attack "
            "success should not exceed the centralized variant's."
        ),
        provenance={"round_ledger": outcome.ledger.as_dict()},
    )
    variants = (
        ("none", true_sums),
        ("centralized", central),
        ("federated", outcome.released),
    )
    for variant, heatmap in variants:
        releases = [
            Release(heatmap[cell], config.radius_m) for cell in occupied
        ]
        outcomes = attack.run_batch(releases)
        n_success = sum(1 for o in outcomes if o.success)
        l1_err = float(
            np.abs(heatmap[occupied] - true_sums[occupied]).sum(axis=1).mean()
        )
        result.add_row(
            variant=variant,
            success_rate=n_success / max(1, len(occupied)),
            l1_error=l1_err,
            n_released=len(occupied),
        )
    return result
