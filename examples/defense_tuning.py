#!/usr/bin/env python
"""Scenario: tune the DP release mechanism for a Top-K recommender.

An operator wants to deploy the paper's differentially private POI
aggregate release (Sec. V-B) in front of a Top-10 recommendation service
and must pick (epsilon, beta).  This script sweeps the two knobs on
T-drive-style Beijing traffic and prints the privacy/utility frontier:
residual attack success (lower = safer) against Top-10 Jaccard
(higher = more useful), so the operator can pick the knee point.

Run with::

    python examples/defense_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import RegionAttack, Release
from repro.core.rng import derive_rng
from repro.datasets import sample_targets
from repro.defense import DPReleaseMechanism, UserPopulation, top_k_jaccard

RADIUS_M = 2_000.0
N_USERS = 120
EPSILONS = (0.2, 0.5, 1.0, 2.0)
BETAS = (0.0, 0.02, 0.05)


def main() -> None:
    city, users = sample_targets("bj_tdrive", N_USERS, RADIUS_M, seed=17)
    db = city.database
    attack = RegionAttack(db)
    population = UserPopulation.uniform(10_000, db.bounds, derive_rng(17, "pop"))
    originals = db.freq_batch(users, RADIUS_M)

    print(f"Sweeping the DP release on {N_USERS} Beijing taxi locations (r = 2 km, k = 20)\n")
    print(f"{'epsilon':>8}  {'beta':>5}  {'attack success':>14}  {'correct hits':>12}  {'Top-10 Jaccard':>14}")
    frontier: list[tuple[float, float, float]] = []
    for beta in BETAS:
        for epsilon in EPSILONS:
            defense = DPReleaseMechanism(
                population, k=20, epsilon=epsilon, delta=0.2, beta=beta
            )
            rng = derive_rng(17, "sweep", beta, epsilon)
            n_success = n_correct = 0
            jaccards = []
            released_all = [defense.release(db, user, RADIUS_M, rng) for user in users]
            outcomes = attack.run_batch([Release(v, RADIUS_M) for v in released_all])
            for user, original, released, outcome in zip(
                users, originals, released_all, outcomes
            ):
                if outcome.success:
                    n_success += 1
                    n_correct += outcome.locates(user)
                jaccards.append(top_k_jaccard(original, released))
            utility = float(np.mean(jaccards))
            print(
                f"{epsilon:>8.1f}  {beta:>5.2f}  {n_success / N_USERS:>14.1%}  "
                f"{n_correct / N_USERS:>12.1%}  {utility:>14.2f}"
            )
            frontier.append((n_correct / N_USERS, utility, epsilon))
        print()

    # A simple knee heuristic: highest utility among settings with <10% risk.
    safe = [(u, e, r) for r, u, e in frontier if r < 0.10]
    if safe:
        best_utility, best_eps, best_risk = max(safe)
        print(
            f"Suggested operating point: epsilon ~ {best_eps:.1f} keeps correct "
            f"re-identification at {best_risk:.0%} with Top-10 Jaccard {best_utility:.2f}."
        )


if __name__ == "__main__":
    main()
