"""Ingest accounting: record fates, policies, and provenance reports.

Every ingestion run must account for every input record — the chaos
suite's core invariant is ``ok + repaired + quarantined == n_records``
for any corruption the injector can produce.  An :class:`IngestReport`
carries that ledger plus the source checksum and policy, and is folded
into ``ExperimentResult.provenance["ingest"]`` through the collector in
this module, exactly the way shard supervision folds its
``ShardReport`` list in.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field

from repro.core.fates import fates_accounted

__all__ = [
    "POLICIES",
    "FATES",
    "IngestReport",
    "RecordIssue",
    "collecting_ingest_reports",
    "record_ingest_report",
]

#: The three ingestion policies.  ``strict`` raises a typed
#: :class:`~repro.core.errors.IngestError` at the first fault; ``repair``
#: applies deterministic fixes (clamp out-of-bounds coordinates, restore
#: ID order, drop exact duplicates, strip whitespace damage) and raises
#: on anything it cannot fix; ``quarantine`` diverts every bad record to
#: a sidecar file and continues.  File-scoped damage (truncation,
#: undecodable bytes in strict/repair, a torn sidecar) always raises:
#: records that never made it to disk cannot be repaired or quarantined.
POLICIES = ("strict", "repair", "quarantine")

#: Per-record fates an ingestion can assign.
FATES = ("ok", "repaired", "quarantined")

#: Issue lists are capped so a pathological file cannot balloon the
#: report (and the provenance JSON it lands in); counts stay exact.
_MAX_ISSUES = 50


@dataclass(frozen=True, slots=True)
class RecordIssue:
    """One damaged record: where it was, what was wrong, what happened."""

    record: int  # 1-based data record number in the source file
    error: str  # IngestError subtype name (the taxonomy class)
    detail: str  # human-readable description of the damage
    fate: str  # "repaired" | "quarantined"


@dataclass
class IngestReport:
    """The ledger of one ingestion run.

    ``n_records`` counts every data record the source presented;
    ``counts`` splits them by fate and must sum back to ``n_records``
    (:attr:`accounted`).  ``error_counts`` tallies damaged records by
    taxonomy class — a record that is repaired or quarantined appears in
    both its fate count and its error-class count.
    """

    path: str
    format: str  # "poi-csv" | "osm-xml" | "trajectory-log"
    policy: str
    source_sha256: str = ""
    n_records: int = 0
    counts: dict[str, int] = field(default_factory=lambda: dict.fromkeys(FATES, 0))
    error_counts: dict[str, int] = field(default_factory=dict)
    issues: list[RecordIssue] = field(default_factory=list)
    quarantine_path: "str | None" = None
    cache: "str | None" = None  # "hit" | "miss" | None (no cache in play)

    def tally(self, fate: str, issue: "RecordIssue | None" = None) -> None:
        """Count one record under *fate* (and its issue, when damaged)."""
        self.n_records += 1
        self.counts[fate] += 1
        if issue is not None:
            self.error_counts[issue.error] = self.error_counts.get(issue.error, 0) + 1
            if len(self.issues) < _MAX_ISSUES:
                self.issues.append(issue)

    def refate(self, old: str, issue: RecordIssue) -> None:
        """Move one already-tallied record from *old* to the issue's fate.

        Used by post-stream fixes (ID-order restoration) that discover a
        record was damaged after it was provisionally counted ``ok``.
        """
        self.counts[old] -= 1
        self.counts[issue.fate] += 1
        self.error_counts[issue.error] = self.error_counts.get(issue.error, 0) + 1
        if len(self.issues) < _MAX_ISSUES:
            self.issues.append(issue)

    def note(self, issue: RecordIssue) -> None:
        """Record an additional issue on an already-fated record.

        A record can carry several damages (a whitespace-mangled id *and*
        an out-of-bounds coordinate); it still lands in exactly one fate,
        but every issue is listed and counted by taxonomy class.
        """
        self.error_counts[issue.error] = self.error_counts.get(issue.error, 0) + 1
        if len(self.issues) < _MAX_ISSUES:
            self.issues.append(issue)

    @property
    def accounted(self) -> bool:
        """Whether every input record landed in exactly one fate."""
        return fates_accounted(self.n_records, self.counts)

    @property
    def clean(self) -> bool:
        """Whether every record was ok (no repairs, no quarantines)."""
        return self.counts.get("ok", 0) == self.n_records and self.accounted

    def as_dict(self) -> dict:
        """JSON-ready form (what lands in provenance and ``--report``)."""
        return asdict(self)

    def render(self) -> str:
        """One-paragraph human summary for the CLI."""
        parts = [
            f"{self.format} {self.path} [{self.policy}]:",
            f"{self.n_records} records —",
            ", ".join(f"{self.counts[f]} {f}" for f in FATES),
        ]
        if self.error_counts:
            errors = ", ".join(f"{k}×{v}" for k, v in sorted(self.error_counts.items()))
            parts.append(f"({errors})")
        if self.quarantine_path is not None:
            parts.append(f"quarantine → {self.quarantine_path}")
        if self.cache is not None:
            parts.append(f"cache {self.cache}")
        return " ".join(parts)


# --- provenance collection -------------------------------------------------
#
# Loaders call record_ingest_report() on every completed ingestion; the
# experiment runner wraps each run in collecting_ingest_reports() and
# folds whatever was collected into ExperimentResult.provenance.  When no
# collector is active, reports are simply dropped — ad-hoc library use
# pays nothing.  The stack nests so a runner inside a runner (tests)
# collects into the innermost scope only.

_COLLECTOR_STACK: list[list[IngestReport]] = []


def record_ingest_report(report: IngestReport) -> None:
    """Hand a completed report to the innermost active collector (if any)."""
    if _COLLECTOR_STACK:
        _COLLECTOR_STACK[-1].append(report)


@contextmanager
def collecting_ingest_reports() -> Iterator[list[IngestReport]]:
    """Collect every report recorded inside the ``with`` body."""
    collected: list[IngestReport] = []
    _COLLECTOR_STACK.append(collected)
    try:
        yield collected
    finally:
        _COLLECTOR_STACK.pop()
