"""PL007 positive cases (linted as library code under repro.experiments)."""

import json


def write_checkpoint(path, payload) -> None:
    path.write_text(json.dumps(payload))  # PL007: torn checkpoint on crash


def save_cache_entry(path, blob: bytes) -> None:
    path.write_bytes(blob)  # PL007: torn cache entry on crash


def divert_records(quarantine_path, rows) -> None:
    with open(quarantine_path, "w") as fh:  # PL007: torn quarantine sidecar
        fh.writelines(rows)


def persist(entry, manifest: str) -> None:
    cache_manifest = entry / "manifest.json"
    with cache_manifest.open(mode="w") as fh:  # PL007: role spelled in target
        fh.write(manifest)
