"""Command-line interface: run experiments, list them, inspect datasets.

Examples::

    poiagg list
    poiagg run fig6 --scale quick --out results/
    poiagg run all --scale ci
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.scale import SCALES, get_scale

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="poiagg",
        description=(
            "Reproduction of 'Practical Location Privacy Attacks and Defense "
            "on Point-of-interest Aggregates' (ICDCS 2021)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments and scales")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'poiagg list', or 'all'")
    run.add_argument(
        "--scale", default="ci", choices=sorted(SCALES), help="sample-size preset"
    )
    run.add_argument("--seed", type=int, default=None, help="override the preset seed")
    run.add_argument(
        "--out", type=Path, default=None, help="directory to write JSON results into"
    )
    run.add_argument(
        "--chart",
        action="store_true",
        help="also render the experiment's figure as an ASCII chart",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="shard the experiment across N processes (where it has a shard axis)",
    )
    run.add_argument(
        "--svg",
        type=Path,
        default=None,
        help="directory to write an SVG rendering of the figure into",
    )

    report = sub.add_parser(
        "report", help="render saved JSON results into one Markdown report"
    )
    report.add_argument("results_dir", type=Path, help="directory of poiagg JSON results")
    report.add_argument(
        "--output", type=Path, default=None, help="report path (default: <dir>/REPORT.md)"
    )

    attack = sub.add_parser(
        "attack", help="re-identify one location's aggregate in a synthetic city"
    )
    attack.add_argument("--city", default="beijing", choices=["beijing", "nyc", "small"])
    attack.add_argument("--x", type=float, required=True, help="planar x in meters")
    attack.add_argument("--y", type=float, required=True, help="planar y in meters")
    attack.add_argument("--radius", type=float, default=2_000.0, help="query range in meters")
    attack.add_argument(
        "--fine", action="store_true", help="also run the fine-grained attack"
    )
    attack.add_argument("--seed", type=int, default=None)

    uniq = sub.add_parser(
        "uniqueness", help="print a city's uniqueness map and anchor profile"
    )
    uniq.add_argument("--city", default="beijing", choices=["beijing", "nyc", "small"])
    uniq.add_argument("--radius", type=float, default=2_000.0)
    uniq.add_argument("--cell", type=float, default=2_000.0, help="map cell size in meters")
    uniq.add_argument("--seed", type=int, default=None)
    return parser


def _run_one(
    experiment_id: str,
    scale_name: str,
    seed: "int | None",
    out: "Path | None",
    chart: bool = False,
    jobs: int = 1,
    svg: "Path | None" = None,
) -> None:
    from repro.experiments.parallel import SHARD_AXES, run_sharded

    scale = get_scale(scale_name)
    if seed is not None:
        scale = scale.with_seed(seed)
    start = time.time()
    if jobs > 1 and experiment_id in SHARD_AXES:
        result = run_sharded(experiment_id, scale, max_workers=jobs)
    else:
        result = run_experiment(experiment_id, scale)
    elapsed = time.time() - start
    print(result.render())
    if chart:
        from repro.experiments.figure_charts import render_chart

        rendered = render_chart(result)
        if rendered is not None:
            print(rendered)
    print(f"[{experiment_id} finished in {elapsed:.1f}s]")
    if out is not None:
        path = result.save(out / f"{experiment_id}_{scale.name}.json")
        print(f"[saved {path}]")
    if svg is not None:
        from repro.experiments.svg import save_figure_svg

        svg_path = save_figure_svg(result, svg)
        if svg_path is not None:
            print(f"[figure written to {svg_path}]")


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("scales:")
        for name, scale in SCALES.items():
            print(f"  {name}: n_targets={scale.n_targets}, n_train={scale.n_train}")
        return 0
    if args.command == "run":
        ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        for experiment_id in ids:
            _run_one(
                experiment_id,
                args.scale,
                args.seed,
                args.out,
                chart=args.chart,
                jobs=args.jobs,
                svg=args.svg,
            )
        return 0
    if args.command == "report":
        from repro.experiments.report import write_report

        path = write_report(args.results_dir, args.output)
        print(f"[report written to {path}]")
        return 0
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "uniqueness":
        return _cmd_uniqueness(args)
    return 2


def _city_for(args):
    from repro.experiments.scale import DEFAULT_SEED
    from repro.poi.cities import CITY_BUILDERS

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    return CITY_BUILDERS[args.city](seed)


def _cmd_attack(args) -> int:
    from repro.attacks.fine_grained import FineGrainedAttack
    from repro.attacks.region import RegionAttack
    from repro.core.rng import derive_rng
    from repro.geo.point import Point

    city = _city_for(args)
    db = city.database
    target = db.bounds.clamp(Point(args.x, args.y))
    released = db.freq(target, args.radius)
    print(
        f"{city.name}: target ({target.x:.0f}, {target.y:.0f}) m, r={args.radius:.0f} m, "
        f"{int(released.sum())} POIs over {int((released > 0).sum())} types"
    )
    outcome = RegionAttack(db).run(released, args.radius)
    if not outcome.success:
        print(f"attack failed: {len(outcome.candidates)} candidate regions")
        return 0
    region = outcome.region
    print(
        f"re-identified: anchor POI #{region.anchor_poi} "
        f"({db.vocabulary.name_of(outcome.anchor_type)}), "
        f"area {region.area / 1e6:.2f} km^2"
    )
    if args.fine:
        fine = FineGrainedAttack(db, max_aux=20).run(released, args.radius)
        area = fine.search_area_m2(rng=derive_rng(0, "cli-attack"))
        print(
            f"fine-grained: {len(fine.anchors)} auxiliary anchors, "
            f"area {area / 1e6:.3f} km^2"
        )
    return 0


def _cmd_uniqueness(args) -> int:
    from repro.analysis import anchor_statistics, uniqueness_map
    from repro.core.rng import derive_rng

    city = _city_for(args)
    db = city.database
    m = uniqueness_map(db, args.radius, cell_m=args.cell)
    print(f"{city.name} uniqueness map at r = {args.radius / 1000:.1f} km ('#' = unique):")
    print(m.to_ascii())
    print(f"map-level uniqueness: {m.rate:.1%}")
    stats = anchor_statistics(
        db, args.radius, n_samples=300, rng=derive_rng(0, "cli-uniq")
    )
    print(
        f"median anchor: {stats.median_anchor_city_count:.0f} POIs city-wide, "
        f"rank {stats.median_anchor_rank:.0f}/{db.n_types}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
