"""Bench: Fig. 7 — search area vs the number of auxiliary anchors.

Paper shape: at r = 2 km the mean search area falls from ~1.7-2.6 km2 at
5 anchors to ~0.3-1.4 km2 at 40, with diminishing returns, against a
constant baseline of 4 pi ~= 12.57 km2.
"""

import math

from benchmarks.conftest import run_once
from repro.experiments.fig7_aux_anchors import run_fig7


def test_bench_fig7(benchmark, bench_scale):
    result = run_once(benchmark, lambda: run_fig7(bench_scale))
    print()
    print(result.render())

    baseline = math.pi * 4.0
    for dataset in ("bj_tdrive", "bj_random", "nyc_foursquare", "nyc_random"):
        rows = result.filter(dataset=dataset)
        if not rows or rows[0]["n_success"] < 10:
            continue
        by_aux = {row["n_aux"]: row["mean_area_km2"] for row in rows}
        # More anchors, smaller area — monotone along the sweep.
        areas = [by_aux[k] for k in sorted(by_aux)]
        assert all(a >= b - 1e-9 for a, b in zip(areas, areas[1:]))
        # Already at 5 anchors the attack beats the baseline by a wide margin.
        assert by_aux[5] < baseline / 2
        # At 40 anchors it is far below the paper's quarter mark.
        assert by_aux[40] < baseline / 4
