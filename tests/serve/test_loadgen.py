"""Load-generator tests: determinism, reporting, and profile shapes."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ConfigError
from repro.dp.mechanisms import PrivacyParams
from repro.serve import LOAD_PROFILES, LoadProfile, ReleaseService, ServeConfig
from repro.serve.loadgen import generate_requests, latency_percentiles, run_loadgen


def test_request_stream_is_deterministic():
    profile = LOAD_PROFILES["smoke"]
    first = generate_requests(profile, seed=9)
    second = generate_requests(profile, seed=9)
    assert first == second
    assert len(first) == profile.n_requests
    assert generate_requests(profile, seed=10) != first


def test_requests_respect_profile_shape():
    profile = LOAD_PROFILES["smoke"]
    requests = generate_requests(profile, seed=0)
    kinds = {kind for kind, _ in profile.defense_mix}
    x0, y0, x1, y1 = profile.bounds
    for request in requests:
        assert request.defense in kinds
        assert x0 <= request.x <= x1 and y0 <= request.y <= y1
        assert int(request.user_id[1:]) < profile.n_users


def test_bench_profile_has_paper_scale_users():
    assert LOAD_PROFILES["bench"].n_users >= 10_000


def test_latency_percentiles():
    stats = latency_percentiles([float(i) for i in range(1, 101)])
    assert stats["p50"] == pytest.approx(50.5)
    assert stats["p95"] == pytest.approx(95.05)
    assert stats["p99"] == pytest.approx(99.01)
    empty = latency_percentiles([])
    assert all(math.isnan(v) for v in empty.values())


def test_profile_validation():
    with pytest.raises(ConfigError):
        LoadProfile(name="bad", n_users=0, n_requests=10)
    with pytest.raises(ConfigError):
        LoadProfile(name="bad", n_users=1, n_requests=1, defense_mix=())


def test_run_loadgen_reduces_a_real_run(db, tmp_path):
    service = ReleaseService(
        db,
        PrivacyParams(50.0, 0.0),
        config=ServeConfig(
            queue_capacity=128,
            n_workers=2,
            batch_max=32,
            batch_wait_s=0.002,
            poll_interval_s=0.01,
        ),
        ledger_dir=str(tmp_path),
        seed=3,
    )
    with service:
        report = run_loadgen(service, LOAD_PROFILES["smoke"], seed=3)
    assert report.n_submitted == 100
    assert report.drained
    assert report.fates_accounted
    assert sum(report.outcomes.values()) == report.n_submitted
    assert report.fates["completed"] > 0
    assert report.throughput_rps > 0
    assert report.latency_s["p50"] <= report.latency_s["p95"] <= report.latency_s["p99"]
    payload = report.as_dict()
    assert payload["fates_accounted"] is True
    assert payload["profile"] == "smoke"
