"""Figure 4 — planar Laplace (geo-indistinguishability) versus the attack.

Four datasets x four radii x epsilon in {0.1, 1.0} (per 100 m), compared
with the unprotected baseline.  The paper's headline: at epsilon = 0.1 the
mechanism mitigates ~75-81% of attacks at r = 0.5 km but only ~9-12% at
r = 4 km — location noise of a fixed scale is outrun by large query radii.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.attacks.metrics import evaluate_region_attack
from repro.attacks.region import RegionAttack
from repro.core.rng import derive_rng
from repro.datasets.targets import DATASET_NAMES
from repro.defense.geo_ind import GeoIndDefense
from repro.experiments.common import RADII_M, targets_for
from repro.experiments.results import ExperimentResult
from repro.experiments.scale import SCALES, ExperimentScale

__all__ = ["run_fig4"]


def run_fig4(
    scale: ExperimentScale = SCALES["ci"],
    radii: Sequence[float] = RADII_M,
    datasets: Sequence[str] = DATASET_NAMES,
    epsilons: Sequence[float] = (0.1, 1.0),
) -> ExperimentResult:
    """Evaluate planar Laplace mitigation across datasets and radii."""
    result = ExperimentResult(
        experiment_id="fig4",
        title="Performance of planar Laplacian (geo-indistinguishability)",
        config={"scale": scale.name, "n_targets": scale.n_targets, "unit_m": 100.0},
        notes=(
            "Paper reference (eps=0.1): mitigation ~75-81% at r=0.5km shrinking "
            "to ~9-12% at r=4km; eps=1.0 barely mitigates anything."
        ),
    )
    for dataset in datasets:
        for radius in radii:
            city, targets = targets_for(dataset, radius, scale)
            attack = RegionAttack(city.database)
            baseline = evaluate_region_attack(
                city.database, targets, radius, attack=attack
            )
            result.add_row(
                dataset=dataset,
                r_km=radius / 1000.0,
                epsilon=None,
                success_rate=baseline.success_rate,
                correct_rate=baseline.correct_rate,
                mitigation=0.0,
            )
            for eps in epsilons:
                defended = evaluate_region_attack(
                    city.database,
                    targets,
                    radius,
                    defense=GeoIndDefense(eps),
                    rng=derive_rng(scale.seed, "fig4", dataset, radius, eps),
                    attack=attack,
                )
                result.add_row(
                    dataset=dataset,
                    r_km=radius / 1000.0,
                    epsilon=eps,
                    success_rate=defended.success_rate,
                    correct_rate=defended.correct_rate,
                    mitigation=defended.mitigation_vs(baseline),
                )
    return result
