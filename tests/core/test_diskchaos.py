"""Seeded disk-fault chaos: real durable writers driven against a
misbehaving disk, asserting the typed-failure and consistency contracts.

Unlike the crash sweeps (exhaustive, deterministic schedules), this
suite injects *probabilistic* fault mixes — ENOSPC, EIO, torn writes,
lying fsyncs — so adaptive code paths (repair loops, rotation fallback,
parked-WAL recovery) get exercised under fault sequences no enumeration
would produce.  The contract under any mix:

* failures surface as typed errors (``DiskPressureError``/``OSError``/
  a ``ReproError`` subclass), never a raw ``ValueError`` off a closed
  handle or a half-written artifact silently served;
* acknowledged work survives: a spend that returned normally is in the
  reopened ledger, a cache entry that ``put`` returned for round-trips.

Seeds come from ``POIAGG_DISKFAULT_SEEDS`` (space-separated; default
``"0 1"``) so CI can widen the sweep without code changes, mirroring
the other chaos suites' ``POIAGG_*_CHAOS_SEEDS``.
"""

import os

import pytest

from repro.core.errors import DiskPressureError, ReproError
from repro.core.vfs import DiskFaultPlan, FaultyVFS, install_vfs
from repro.dp.mechanisms import PrivacyParams
from repro.serve.ledger import BudgetLedger

SEEDS = [int(s) for s in os.environ.get("POIAGG_DISKFAULT_SEEDS", "0 1").split()]

USERS = ("alice", "bob", "carol")

#: Fault mixes, from gentle to hostile.
MIXES = [
    DiskFaultPlan(enospc_rate=0.1),
    DiskFaultPlan(eio_rate=0.15, torn_write_rate=0.1),
    DiskFaultPlan(enospc_rate=0.1, eio_rate=0.1, torn_write_rate=0.15),
]


def chaos_plan(mix: DiskFaultPlan, seed: int) -> DiskFaultPlan:
    from dataclasses import replace

    return replace(mix, seed=seed)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mix", range(len(MIXES)))
def test_ledger_spends_are_typed_and_acked_spends_survive(tmp_path, seed, mix):
    plan = chaos_plan(MIXES[mix], seed)
    budget = PrivacyParams(1000.0, 0.0)
    acked = dict.fromkeys(USERS, 0.0)
    vfs = FaultyVFS(plan)
    with install_vfs(vfs):
        try:
            ledger = BudgetLedger(
                budget, tmp_path, compact_every=5, segment_max_bytes=256
            )
        except OSError:
            return  # the disk refused startup itself: typed, clean
        for i in range(40):
            user = USERS[i % len(USERS)]
            try:
                ledger.spend(user, 1.0)
            except (DiskPressureError, OSError):
                continue  # typed refusal; nothing committed
            except ReproError as exc:  # pragma: no cover - unexpected kind
                pytest.fail(f"unexpected typed error: {exc}")
            acked[user] += 1.0
        try:
            ledger.close()
        except OSError:
            pass
    # Reopen on a healthy disk: every acknowledged spend must be there.
    reopened = BudgetLedger(budget, tmp_path)
    for user in USERS:
        spent = reopened.user_state(user)["spent_epsilon"] if acked[user] else 0.0
        assert spent == pytest.approx(acked[user]), (user, spent, acked[user])
    reopened.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_ledger_survives_chaos_plus_power_cut(tmp_path, seed):
    """The hostile mix *and* a power cut at the end: the reopened ledger
    may hold at most one in-flight spend beyond the acknowledged ones."""
    plan = chaos_plan(
        DiskFaultPlan(eio_rate=0.1, torn_write_rate=0.1, fsync_lie_rate=0.05),
        seed,
    )
    budget = PrivacyParams(1000.0, 0.0)
    acked = dict.fromkeys(USERS, 0.0)
    in_flight = dict.fromkeys(USERS, 0.0)
    vfs = FaultyVFS(plan)
    with install_vfs(vfs):
        try:
            ledger = BudgetLedger(budget, tmp_path, compact_every=7)
        except OSError:
            return
        for i in range(30):
            user = USERS[i % len(USERS)]
            try:
                ledger.spend(user, 1.0)
            except (DiskPressureError, OSError):
                in_flight[user] += 1.0
                continue
            acked[user] += 1.0
        vfs.simulate_crash()  # no close(): the power just went out
    try:
        reopened = BudgetLedger(budget, tmp_path)
    except ReproError:
        # A lying fsync can leave a detectably-torn store; refusing to
        # start is the documented detection outcome.
        assert plan.fsync_lie_rate > 0
        return
    for user in USERS:
        spent = reopened.user_state(user)["spent_epsilon"] if acked[user] else 0.0
        # Over-counting (a charged-but-unserved release) is acceptable;
        # under-counting an acknowledged spend never is — except under a
        # lying fsync, where durability was stolen after the ack.
        upper = acked[user] + in_flight[user]
        assert spent <= upper + 1e-9
        if plan.fsync_lie_rate == 0:
            assert spent >= acked[user] - 1e-9
    reopened.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_cache_round_trip_or_typed_failure_under_chaos(tmp_path, seed):
    import numpy as np

    from repro.experiments.durability import _tiny_db
    from repro.ingest.cache import DatasetCache
    from repro.poi.io import save_database

    db = _tiny_db()
    sources = []
    for i in range(8):
        source = tmp_path / f"pois-{i}.csv"
        save_database(db, source)
        sources.append(source)

    plan = chaos_plan(DiskFaultPlan(eio_rate=0.15, torn_write_rate=0.1), seed)
    cache = DatasetCache(tmp_path / "cache")
    stored = []
    with install_vfs(FaultyVFS(plan)):
        for source in sources:
            try:
                cache.put(source, db, cell_size=100.0)
            except (OSError, ReproError):
                continue  # typed refusal; the entry stays invisible
            stored.append(source)
    # Healthy disk again: every acknowledged put round-trips bit-exactly
    # (get raising CacheIntegrityError here would fail the test).
    for source in stored:
        served = cache.get(source)
        assert served is not None, f"acked cache entry for {source} vanished"
        assert np.array_equal(served.positions, db.positions)
        assert np.array_equal(served.type_ids, db.type_ids)
