"""Client population: determinism, clipping, faults, and noise shares."""

import numpy as np
import pytest

from repro.federated import ClientFaultPlan, ClientPopulation, FederatedConfig, clip_l1
from repro.federated.merger import AdaptiveGrid


@pytest.fixture()
def config():
    return FederatedConfig(
        n_clients=150, chunk_clients=64, memory_budget_mb=64.0, clip_bound=32.0
    )


@pytest.fixture()
def population(db, config):
    return ClientPopulation(db, config, seed=11)


@pytest.fixture()
def grid(db, config):
    return AdaptiveGrid(db.bounds, config.grid_nx, config.grid_ny)


class TestClipL1:
    def test_rows_inside_bound_untouched(self):
        rows = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        assert np.array_equal(clip_l1(rows, 10.0), rows)

    def test_rows_over_bound_scaled_to_bound(self):
        rows = np.array([[30.0, 40.0], [-60.0, 60.0]])
        clipped = clip_l1(rows, 10.0)
        norms = np.abs(clipped).sum(axis=1)
        assert norms == pytest.approx([10.0, 10.0])
        # direction preserved
        assert clipped[0, 1] / clipped[0, 0] == pytest.approx(4.0 / 3.0)


class TestDeterminism:
    def test_chunking_covers_every_client_once(self, population):
        ids = np.concatenate(
            [population.chunk_client_ids(c) for c in range(population.n_chunks)]
        )
        assert np.array_equal(ids, np.arange(population.config.n_clients))

    def test_locations_and_payloads_deterministic(self, db, config, population):
        again = ClientPopulation(db, config, seed=11)
        assert np.array_equal(population.locations(1), again.locations(1))
        assert np.array_equal(population.payloads(1), again.payloads(1))
        other = ClientPopulation(db, config, seed=12)
        assert not np.array_equal(population.locations(1), other.locations(1))

    def test_payloads_respect_clip_bound(self, population, config):
        for chunk in range(population.n_chunks):
            norms = np.abs(population.payloads(chunk)).sum(axis=1)
            assert (norms <= config.clip_bound + 1e-9).all()

    def test_locations_inside_city_bounds(self, db, population):
        xy = population.locations(0)
        assert (xy[:, 0] >= db.bounds.min_x).all()
        assert (xy[:, 0] <= db.bounds.max_x).all()


class TestNoiseShareSum:
    def test_payload_independent_and_deterministic(self, db, config, population):
        contributors = population.chunk_client_ids(0)
        a = population.noise_share_sum(0, 0, contributors, n_cells=64)
        b = ClientPopulation(db, config, seed=11).noise_share_sum(
            0, 0, contributors, n_cells=64
        )
        assert np.array_equal(a, b)
        assert a.shape == (64, db.n_types)

    def test_subset_sums_are_position_keyed(self, population):
        """Dropping one contributor removes exactly that client's share."""
        all_ids = population.chunk_client_ids(0)
        full = population.noise_share_sum(0, 0, all_ids, n_cells=16)
        without = population.noise_share_sum(0, 0, all_ids[1:], n_cells=16)
        first_only = population.noise_share_sum(0, 0, all_ids[:1], n_cells=16)
        assert np.allclose(full - without, first_only)

    def test_round_keyed(self, population):
        ids = population.chunk_client_ids(0)
        assert not np.array_equal(
            population.noise_share_sum(0, 0, ids, n_cells=16),
            population.noise_share_sum(1, 0, ids, n_cells=16),
        )


class TestContributionBatch:
    def test_healthy_batch_has_every_client(self, population, grid):
        batch, silent = population.contribution_batch(0, 0, grid)
        assert len(batch) == 64
        assert len(silent) == 0
        assert batch.cells.min() >= 0 and batch.cells.max() < grid.n_cells
        assert np.isfinite(batch.payloads).all()

    def test_crash_and_hang_are_silent(self, population, grid):
        plan = ClientFaultPlan(
            seed=5, overrides=((0, 3, "crash"), (0, 7, "hang"))
        )
        batch, silent = population.contribution_batch(0, 0, grid, fault_plan=plan)
        assert sorted(silent.tolist()) == [3, 7]
        assert 3 not in batch.client_ids and 7 not in batch.client_ids
        assert len(batch) == 62

    def test_crashed_client_succeeds_on_retry(self, population, grid):
        plan = ClientFaultPlan(seed=5, overrides=((0, 3, "crash"),))
        _, silent = population.contribution_batch(0, 0, grid, fault_plan=plan)
        retry, still_silent = population.contribution_batch(
            0, 0, grid, attempt=2, only_clients=silent, fault_plan=plan
        )
        assert len(still_silent) == 0
        assert retry.client_ids.tolist() == [3]

    def test_malformed_rows_are_structurally_damaged(self, population, grid):
        plan = ClientFaultPlan(seed=5, overrides=((0, 10, "malformed"),))
        batch, _ = population.contribution_batch(0, 0, grid, fault_plan=plan)
        row = batch.client_ids.tolist().index(10)
        assert batch.damage[row] == "malformed"
        assert np.isnan(batch.payloads[row]).all()
        assert batch.cells[row] == -1
        # the damage stayed in its own row
        healthy = np.delete(batch.payloads, row, axis=0)
        assert np.isfinite(healthy).all()

    def test_poisoned_rows_inflated(self, population, grid, config):
        plan = ClientFaultPlan(seed=5, overrides=((0, 10, "poisoned"),))
        batch, _ = population.contribution_batch(0, 0, grid, fault_plan=plan)
        row = batch.client_ids.tolist().index(10)
        assert batch.damage[row] == "poisoned"
        assert np.abs(batch.payloads[row]).sum() > config.clip_bound

    def test_zero_payload_probe(self, population, grid):
        batch, _ = population.contribution_batch(
            0, 0, grid, zero_payload_clients=frozenset({4})
        )
        row = batch.client_ids.tolist().index(4)
        assert (batch.payloads[row] == 0).all()
        assert batch.payloads.sum() > 0  # others untouched


class TestFaultPlan:
    def test_rates_must_sum_to_at_most_one(self):
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError):
            ClientFaultPlan(crash_rate=0.6, hang_rate=0.6)

    def test_decide_is_deterministic(self):
        plan = ClientFaultPlan(crash_rate=0.3, malformed_rate=0.3, seed=9)
        fates = [plan.decide(0, c, 1) for c in range(50)]
        assert fates == [plan.decide(0, c, 1) for c in range(50)]
        assert any(f == "crash" for f in fates)
        assert any(f == "malformed" for f in fates)

    def test_attempts_beyond_budget_are_healthy(self):
        plan = ClientFaultPlan(crash_rate=1.0, seed=9, max_faults_per_client=1)
        assert plan.decide(0, 1, 1) == "crash"
        assert plan.decide(0, 1, 2) is None

    def test_ok_override_forces_health(self):
        plan = ClientFaultPlan(crash_rate=1.0, seed=9, overrides=((0, 1, "ok"),))
        assert plan.decide(0, 1, 1) is None
        assert plan.decide(0, 2, 1) == "crash"
