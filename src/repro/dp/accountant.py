"""A minimal privacy accountant.

Tracks the cumulative ``(epsilon, delta)`` budget consumed by a sequence of
mechanism invocations under basic (sequential) composition, and exposes the
post-processing rule (Lemma 3 of the paper): applying any data-independent
transformation to a mechanism's output consumes no additional budget —
which is exactly why the optimization step of the paper's defense is free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import PrivacyError
from repro.dp.mechanisms import PrivacyParams

__all__ = ["PrivacyAccountant"]


@dataclass
class PrivacyAccountant:
    """Sequential-composition ledger of privacy expenditures."""

    budget: "PrivacyParams | None" = None
    _spent: list[PrivacyParams] = field(default_factory=list)

    def spend(self, epsilon: float, delta: float = 0.0, label: str = "") -> PrivacyParams:
        """Record one mechanism invocation; raises if it exceeds the budget."""
        params = PrivacyParams(epsilon, delta)
        eps_after = self.total_epsilon + epsilon
        delta_after = self.total_delta + delta
        if self.budget is not None and (
            eps_after > self.budget.epsilon + 1e-12 or delta_after > self.budget.delta + 1e-12
        ):
            raise PrivacyError(
                f"budget exceeded by {label or 'mechanism'}: "
                f"({eps_after:.4g}, {delta_after:.4g}) > "
                f"({self.budget.epsilon:.4g}, {self.budget.delta:.4g})"
            )
        self._spent.append(params)
        return params

    def post_process(self) -> None:
        """Record a post-processing step (free by Lemma 3); a no-op ledger entry."""

    @property
    def total_epsilon(self) -> float:
        """Total epsilon under basic sequential composition."""
        return sum(p.epsilon for p in self._spent)

    @property
    def total_delta(self) -> float:
        """Total delta under basic sequential composition."""
        return sum(p.delta for p in self._spent)

    @property
    def n_invocations(self) -> int:
        return len(self._spent)

    def remaining_epsilon(self) -> float:
        """Budget left, or ``inf`` when no budget was set."""
        if self.budget is None:
            return float("inf")
        return max(0.0, self.budget.epsilon - self.total_epsilon)
