"""Attack evaluation harness and summary statistics.

Implements the paper's two metrics (§II-B): the *success rate* (fraction of
attempts with ``|Phi| = 1``) and, for successful attempts, the *area* of the
re-identified region.  For defended releases we additionally track the
*correct rate* — successful attacks whose unique region really contains the
target — since a defense that misdirects the attacker has worked even when
``|Phi| = 1``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.attacks.base import Release
from repro.attacks.region import RegionAttack
from repro.core.rng import RngLike, as_generator
from repro.defense.base import Defense, NoDefense
from repro.geo.point import Point
from repro.poi.database import POIDatabase

__all__ = ["AttackEvaluation", "evaluate_region_attack"]


@dataclass(frozen=True)
class AttackEvaluation:
    """Aggregate results of running an attack over a set of targets."""

    n_targets: int
    n_success: int
    n_correct: int
    areas_km2: tuple[float, ...]

    @property
    def success_rate(self) -> float:
        """Fraction of attempts with a unique candidate (``|Phi| = 1``)."""
        return self.n_success / self.n_targets if self.n_targets else 0.0

    @property
    def correct_rate(self) -> float:
        """Fraction of attempts that uniquely *and correctly* located the target."""
        return self.n_correct / self.n_targets if self.n_targets else 0.0

    @property
    def mean_area_km2(self) -> float:
        """Mean search area over successful attempts, in km^2."""
        return float(np.mean(self.areas_km2)) if self.areas_km2 else float("nan")

    def mitigation_vs(self, baseline: "AttackEvaluation") -> float:
        """Fraction of the baseline's successes this run prevented.

        Matches the paper's "mitigates X% of attacks" phrasing for the
        geo-indistinguishability experiments (§III-B).
        """
        if baseline.n_correct == 0:
            return 0.0
        prevented = max(0, baseline.n_correct - self.n_correct)
        return prevented / baseline.n_correct


def evaluate_region_attack(
    database: POIDatabase,
    targets: Sequence[Point],
    radius: float,
    defense: "Defense | None" = None,
    rng: RngLike = None,
    attack: "RegionAttack | None" = None,
) -> AttackEvaluation:
    """Run the region attack on each target's (defended) release.

    For every target location ``l``, the defense produces the released
    frequency vector, the attack runs on it, and success/correctness are
    recorded.  With the default :class:`NoDefense`, success and correctness
    coincide (the pruning rule has no false negatives).
    """
    defense = defense if defense is not None else NoDefense()
    attack = attack if attack is not None else RegionAttack(database)
    gen = as_generator(rng)
    n_success = 0
    n_correct = 0
    areas: list[float] = []
    releases = [
        Release(defense.release(database, target, radius, gen), radius)
        for target in targets
    ]
    for target, outcome in zip(targets, attack.run_batch(releases)):
        if outcome.success:
            n_success += 1
            region = outcome.region
            assert region is not None
            areas.append(region.area / 1e6)
            if region.disk.contains(target):
                n_correct += 1
    return AttackEvaluation(
        n_targets=len(targets),
        n_success=n_success,
        n_correct=n_correct,
        areas_km2=tuple(areas),
    )
