"""Defense interface.

Every protection mechanism in the paper — whether it perturbs the location
(geo-indistinguishability, k-cloaking) or the aggregate (sanitization, the
optimization-based releases) — can be modelled as one function: given the
user's true location and query range, produce the POI type frequency vector
that is actually released to the LBS application.  :class:`Defense`
captures that contract so attacks and experiment runners can treat all
mechanisms uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.geo.point import Point
from repro.poi.database import POIDatabase

__all__ = ["Defense", "NoDefense"]


class Defense(ABC):
    """A release mechanism mapping (location, radius) to a frequency vector."""

    @abstractmethod
    def release(
        self,
        database: POIDatabase,
        location: Point,
        radius: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Produce the released ``(M,)`` frequency vector for a query.

        Implementations must not mutate the database and must draw all
        randomness from *rng* so experiments stay reproducible.
        """

    @property
    def name(self) -> str:
        """Human-readable mechanism name for reports."""
        return type(self).__name__


class NoDefense(Defense):
    """The undefended baseline: release ``Freq(l, r)`` verbatim."""

    def release(
        self,
        database: POIDatabase,
        location: Point,
        radius: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return database.freq(location, radius)
