"""Property-based tests for the Eq. (7) optimizer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.defense.optimization import optimize_release

freq_vectors = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(2, 12),
    elements=st.integers(0, 30),
)
betas = st.floats(0.0, 2.0, allow_nan=False)


def ranks_of(length: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.permutation(np.arange(1, length + 1)).astype(np.int64)


class TestOptimizerInvariants:
    @given(freq_vectors, betas, st.integers(0, 1_000))
    @settings(max_examples=150)
    def test_constraint_always_satisfied(self, freq, beta, seed):
        ranks = ranks_of(len(freq), seed)
        plan = optimize_release(freq, ranks, beta)
        m = len(freq)
        distortion = (np.abs(plan.released - freq) / (freq + 1.0)).sum() / m
        assert distortion <= beta + 1e-9

    @given(freq_vectors, betas, st.integers(0, 1_000))
    @settings(max_examples=150)
    def test_release_is_valid_vector(self, freq, beta, seed):
        ranks = ranks_of(len(freq), seed)
        plan = optimize_release(freq, ranks, beta)
        assert plan.released.dtype == np.int64
        assert (plan.released >= 0).all()
        assert (plan.released <= freq).all()  # erasure only

    @given(freq_vectors, st.integers(0, 1_000))
    @settings(max_examples=100)
    def test_beta_zero_is_identity(self, freq, seed):
        ranks = ranks_of(len(freq), seed)
        plan = optimize_release(freq, ranks, 0.0)
        np.testing.assert_array_equal(plan.released, freq)

    @given(freq_vectors, st.integers(0, 1_000))
    @settings(max_examples=100)
    def test_objective_monotone_in_beta(self, freq, seed):
        ranks = ranks_of(len(freq), seed)
        objectives = [
            optimize_release(freq, ranks, beta).objective
            for beta in (0.01, 0.1, 0.5, 2.0)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(objectives, objectives[1:]))

    @given(freq_vectors, betas, st.integers(0, 1_000))
    @settings(max_examples=100)
    def test_objective_matches_units(self, freq, beta, seed):
        ranks = ranks_of(len(freq), seed)
        plan = optimize_release(freq, ranks, beta)
        weights = 1.0 / (ranks * (freq + 1.0))
        assert plan.objective == float((weights * plan.units).sum())

    @given(freq_vectors, betas, st.integers(0, 1_000))
    @settings(max_examples=100)
    def test_greedy_at_least_single_type_optimum(self, freq, beta, seed):
        """The greedy solution dominates every all-in-one-type strategy."""
        ranks = ranks_of(len(freq), seed)
        plan = optimize_release(freq, ranks, beta)
        m = len(freq)
        weights = 1.0 / (ranks * (freq + 1.0))
        costs = 1.0 / (m * (freq + 1.0))
        for t in range(m):
            if costs[t] <= 0:
                continue
            affordable = min(int(freq[t]), int(beta // costs[t]))
            assert plan.objective >= weights[t] * affordable - 1e-9
